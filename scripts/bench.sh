#!/usr/bin/env bash
# Performance sweep: the three load-bearing benches plus the batch-transport
# report that feeds BENCH_topology.json (and the CI regression gate).
#
# Usage:
#   scripts/bench.sh            # full-size topology report + criterion runs
#   scripts/bench.sh --smoke    # small sizes only (what CI runs)
#
# BENCH_topology.json is committed as the regression baseline; re-commit it
# after an intentional perf change (see the gate stage in scripts/ci.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=""
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE="--smoke"
fi

echo "==> topology batch-transport report (writes BENCH_topology.json)"
cargo run --release -p bench --bin topology_bench -- $SMOKE

echo "==> time-to-recover report (writes the recovery section)"
cargo run --release -p bench --bin recovery_bench -- $SMOKE

echo "==> criterion: topology_throughput"
cargo bench -p bench --bench topology_throughput

echo "==> criterion: cf_micro"
cargo bench -p bench --bench cf_micro

echo "==> serving latency percentiles"
cargo run --release -p bench --bin serving_latency

echo "bench sweep done; report in BENCH_topology.json"
