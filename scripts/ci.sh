#!/usr/bin/env bash
# Local CI: everything that must be green before a change lands.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Chaos stage: the convergence test must hold for every seed in the fixed
# matrix. Seeds run one at a time so a failure names the guilty seed
# (reproduce with: CHAOS_SEEDS=<seed> cargo test -p tchaos --test convergence).
CHAOS_SEEDS=(3 7 11 23 42)
echo "==> chaos convergence, seeds: ${CHAOS_SEEDS[*]}"
for seed in "${CHAOS_SEEDS[@]}"; do
    if ! CHAOS_SEEDS="$seed" cargo test -p tchaos --test convergence --quiet; then
        echo "CHAOS FAILURE at seed $seed" >&2
        exit 1
    fi
done

# Observability stage: the full-stack example must expose every metric
# family the dashboards are built on, in one scrape body, with real
# samples in the whole-pipeline latency histogram.
echo "==> observability smoke (streaming_pipeline exposition)"
expo="$(cargo run --release -p tencentrec --example streaming_pipeline 2>/dev/null)"
for family in \
    tstorm_exec_latency_seconds tstorm_queue_depth \
    tstorm_backpressure_stalls_total tstorm_pipeline_latency_seconds \
    tstorm_batch_size tencentrec_cache_hit_ratio \
    tencentrec_combiner_reduction_ratio tencentrec_pruning_tracked_pairs \
    tdaccess_produced_total tdaccess_consumed_total tdaccess_consumer_lag \
    tdstore_ops_total tdstore_replication_queue_depth tdstore_failovers_total; do
    if ! grep -q "^$family" <<<"$expo"; then
        echo "OBSERVABILITY FAILURE: family $family missing from exposition" >&2
        exit 1
    fi
done
count="$(grep '^tstorm_pipeline_latency_seconds_count' <<<"$expo" | awk '{print $2}')"
if [[ -z "$count" || "$count" == "0" ]]; then
    echo "OBSERVABILITY FAILURE: pipeline latency histogram is empty" >&2
    exit 1
fi
echo "    exposition OK (pipeline latency samples: $count)"

# Multi-process stage: supervisor + 2 worker OS processes run the CF
# pipeline with tuples crossing process boundaries over batched TCP;
# worker 0 is killed mid-run and must be respawned, resume from its
# committed offsets, and drain counts byte-identical to a fault-free
# single-process run. The example asserts all of that internally and
# prints the markers checked here.
echo "==> multi-process cluster smoke (cluster_pipeline)"
cluster_out="$(cargo run --release -p tcluster --example cluster_pipeline 2>/dev/null)"
for marker in \
    "cluster: supervisor at" \
    "cluster: killing worker 0" \
    "cluster: worker respawned" \
    "cluster: drained counts byte-identical to fault-free baseline" \
    "CLUSTER PIPELINE OK"; do
    if ! grep -q "$marker" <<<"$cluster_out"; then
        echo "CLUSTER FAILURE: marker \"$marker\" missing from output:" >&2
        echo "$cluster_out" >&2
        exit 1
    fi
done
echo "    cluster smoke OK ($(grep -c '^cluster:' <<<"$cluster_out") markers)"

# Gray-failure stage: the spout worker is SIGSTOPped (alive but silent)
# mid-run. Process reaping can never see that; the heartbeat lease must
# expire it (asserted via the tcluster_lease_expired scrape line), the
# generation fence must shut out the zombie, and the respawned worker
# must converge byte-identical to the fault-free baseline.
echo "==> gray-failure smoke (SIGSTOP + lease expiry, gray_failure)"
gray_out="$(cargo run --release -p tcluster --example gray_failure 2>/dev/null)"
for marker in \
    "tguard: stalling worker 0 (SIGSTOP)" \
    "tguard: lease expired (scrape: tcluster_lease_expired" \
    "tguard: worker 0 respawned (generation" \
    "tguard: converged after gray failure (drain verified" \
    "GRAY FAILURE OK"; do
    if ! grep -qF "$marker" <<<"$gray_out"; then
        echo "GRAY FAILURE STAGE FAILED: marker \"$marker\" missing from output:" >&2
        echo "$gray_out" >&2
        exit 1
    fi
done
echo "    gray failure OK ($(grep -c '^tguard:' <<<"$gray_out") markers)"

# Cold-restart stage: the checkpoint/restore example runs the CF pipeline
# in a child process, SIGKILLs it mid-run after the manifest has advanced,
# restores a fresh store from the newest durable snapshot, replays only
# the access-log tail, and asserts the similarity tables are
# byte-identical to a fault-free baseline. The markers prove each phase
# actually happened (checkpointing child, real kill, snapshot restore).
echo "==> cold-restart smoke (SIGKILL + snapshot restore, cold_restart)"
restart_out="$(cargo run --release -p ckpt --example cold_restart 2>/dev/null)"
for marker in \
    "checkpointing at" \
    "(SIGKILL)" \
    "tsnap: restored epoch" \
    "tsnap: tables byte-identical to fault-free baseline" \
    "COLD RESTART OK"; do
    if ! grep -q "$marker" <<<"$restart_out"; then
        echo "COLD RESTART FAILURE: marker \"$marker\" missing from output:" >&2
        echo "$restart_out" >&2
        exit 1
    fi
done
echo "    cold restart OK ($(grep -c '^tsnap' <<<"$restart_out") markers)"

# Incremental-checkpoint stage: the child publishes a full base plus a
# chain of delta checkpoints and is SIGKILLed mid-chain; the parent must
# restore through base + deltas (asserted via the tsnap_restored_epoch
# scrape), compact the access log below the restored consumer floor
# (asserted via the tdaccess_truncated_segments scrape), and replay the
# tail of the *compacted* log byte-identical to a fault-free baseline.
echo "==> incremental-checkpoint smoke (SIGKILL mid-chain, incremental_restart)"
inc_out="$(cargo run --release -p ckpt --example incremental_restart 2>/dev/null)"
for marker in \
    "killed child mid-chain" \
    "restored epoch" \
    "via base+delta chain" \
    "scrape tsnap_restored_epoch" \
    "tdaccess: compaction truncated" \
    "tsnap: tables byte-identical to fault-free baseline after compaction" \
    "INCREMENTAL RESTART OK"; do
    if ! grep -q "$marker" <<<"$inc_out"; then
        echo "INCREMENTAL RESTART FAILURE: marker \"$marker\" missing from output:" >&2
        echo "$inc_out" >&2
        exit 1
    fi
done
echo "    incremental restart OK ($(grep -c '^tsnap\|^tdaccess' <<<"$inc_out") markers)"

# Recovery gate: snapshot restore + tail replay must beat a full-log
# replay by at least 5x on a disk-spilled log (smoke size), and the
# steady-state delta checkpoint must stay under 0.3x of the full blob it
# patches. Rewrites the recovery section of BENCH_topology.json; the
# committed baseline is restored below unless re-baselining.
echo "==> time-to-recover + delta-ratio gate (smoke)"
cargo run --release -p bench --bin recovery_bench -- --smoke --check

# Throughput gate: a smoke-size batch-transport run must stay within 20%
# of the committed BENCH_topology.json baseline, allocate at most 3.1
# allocations per tuple on the batched shuffle edge, and keep the
# user_history execute p99 under 500us (the in-place history update).
# After an intentional perf change, re-baseline with:
# BENCH_REBASELINE=1 scripts/ci.sh (or re-run scripts/bench.sh and commit
# the refreshed report; the allocation and latency ceilings are absolute
# and still apply). One retry: the smoke run is ~25 ms of work, so a noisy
# neighbor alone can push a single run past the 20% floor; a real
# regression fails both runs.
echo "==> topology throughput gate (smoke)"
if ! cargo run --release -p bench --bin topology_bench -- --smoke --check; then
    echo "    gate failed once; retrying to rule out machine noise"
    cargo run --release -p bench --bin topology_bench -- --smoke --check
fi
if [[ "${BENCH_REBASELINE:-0}" != "1" ]]; then
    # The check pass rewrites the smoke section with this run's (noisy)
    # numbers; restore the committed baseline unless re-baselining.
    git checkout -- BENCH_topology.json 2>/dev/null || true
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "CI green."
