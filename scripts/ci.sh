#!/usr/bin/env bash
# Local CI: everything that must be green before a change lands.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Chaos stage: the convergence test must hold for every seed in the fixed
# matrix. Seeds run one at a time so a failure names the guilty seed
# (reproduce with: CHAOS_SEEDS=<seed> cargo test -p tchaos --test convergence).
CHAOS_SEEDS=(3 7 11 23 42)
echo "==> chaos convergence, seeds: ${CHAOS_SEEDS[*]}"
for seed in "${CHAOS_SEEDS[@]}"; do
    if ! CHAOS_SEEDS="$seed" cargo test -p tchaos --test convergence --quiet; then
        echo "CHAOS FAILURE at seed $seed" >&2
        exit 1
    fi
done

# Throughput gate: a smoke-size batch-transport run must stay within 20%
# of the committed BENCH_topology.json baseline. After an intentional perf
# change, re-baseline with: BENCH_REBASELINE=1 scripts/ci.sh (or re-run
# scripts/bench.sh and commit the refreshed report).
echo "==> topology throughput gate (smoke)"
cargo run --release -p bench --bin topology_bench -- --smoke --check
if [[ "${BENCH_REBASELINE:-0}" != "1" ]]; then
    # The check pass rewrites the smoke section with this run's (noisy)
    # numbers; restore the committed baseline unless re-baselining.
    git checkout -- BENCH_topology.json 2>/dev/null || true
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "CI green."
