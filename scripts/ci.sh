#!/usr/bin/env bash
# Local CI: everything that must be green before a change lands.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "CI green."
