//! Offline stub for the `rand` crate: the subset this workspace uses.
//!
//! Provides [`rngs::SmallRng`] (a xoshiro256++ generator, matching the
//! real crate's choice of a small fast non-cryptographic PRNG), the
//! [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`, and
//! [`SeedableRng`] with `seed_from_u64` / `from_entropy`.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, as in the real crate.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construction from ambient entropy (system time + a per-process
    /// counter in this stub; not cryptographic).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let n = COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ n.rotate_left(17) ^ (std::process::id() as u64) << 32)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the full domain (unit interval for floats).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full domain; `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for char {
    /// Uniform over the printable ASCII range (sufficient for tests).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (0x20u8 + (rng.next_u64() % 95) as u8) as char
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                // Modulo sampling: bias is < span/2^64, irrelevant for the
                // simulation/test workloads this stub serves.
                let offset = if span == 0 { 0 } else { u128::sample(rng) % span };
                ((self.start as $wide as u128).wrapping_add(offset)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let offset = u128::sample(rng) % span;
                ((lo as $wide as u128).wrapping_add(offset)) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Small fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's `SmallRng`
    /// on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference implementation
            // recommends for seeding xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
