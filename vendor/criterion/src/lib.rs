//! Offline stub for the `criterion` crate.
//!
//! Provides the macro + builder API the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, `Throughput`, `BenchmarkId`,
//! `BatchSize`). Instead of criterion's statistical machinery it runs
//! each benchmark for a fixed number of samples and prints mean/min/max
//! wall time plus derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.durations.push(start.elapsed());
            std::hint::black_box(out);
        }
    }

    /// Times `routine` on inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.durations.push(start.elapsed());
            std::hint::black_box(out);
        }
    }
}

fn report(label: &str, durations: &[Duration], throughput: Option<Throughput>) {
    if durations.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().copied().unwrap_or_default();
    let max = durations.iter().max().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}{rate}  ({} samples)",
        durations.len()
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; the stub accepts anything >= 1 and
        // trims large defaults to keep offline runs quick.
        self.samples = n.clamp(1, 20);
        self
    }

    /// Declares per-iteration throughput for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.name),
            &b.durations,
            self.throughput,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            &b.durations,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op beyond parity with the real API).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// CLI-argument parsing parity; the stub ignores arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = if self.samples == 0 { 10 } else { self.samples };
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&id.name, &b.durations, None);
        self
    }
}

/// Prevents the optimiser from discarding `value` (re-export parity;
/// delegates to `std::hint`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &v| {
            b.iter_batched(|| v, |x| x * 2, BatchSize::PerIteration)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
