//! Offline stub for the `bytes` crate: cheap-to-clone immutable byte
//! slices ([`Bytes`], an `Arc<[u8]>` plus a window), a growable builder
//! ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-/big-endian integer codecs this workspace uses.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty slice.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice without copying.
    pub fn from_static(slice: &'static [u8]) -> Self {
        // The stub unifies static and owned storage; one copy at
        // construction keeps the representation simple.
        Bytes::copy_from_slice(slice)
    }

    /// Copies `slice` into a new `Bytes`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
            start: 0,
            end: slice.len(),
        }
    }

    /// Bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, freezable into [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor (consumed prefix) for the `Buf` impl.
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unconsumed bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// True when every written byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Converts the unconsumed bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        let mut v = self.data;
        if self.read > 0 {
            v.drain(..self.read);
        }
        Bytes::from(v)
    }

    /// Appends a slice (alias of [`BufMut::put_slice`]).
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
        self.read = 0;
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.read..self.read + at].to_vec();
        self.read += at;
        self.compact();
        BytesMut {
            data: head,
            read: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.read..]
    }

    /// Reclaims the consumed prefix once it is at least as large as the
    /// unconsumed tail. The threshold makes compaction amortized O(1)
    /// per consumed byte while keeping `data` bounded by twice the
    /// unconsumed length — without it, a long-lived network inbox that
    /// is appended to and drained frame-by-frame would retain every
    /// byte ever received.
    fn compact(&mut self) {
        if self.read > 0 && self.read >= self.data.len() - self.read {
            self.data.drain(..self.read);
            self.read = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

macro_rules! buf_get_impl {
    ($($name:ident -> $t:ty, $conv:path);* $(;)?) => {$(
        /// Reads one integer, advancing the cursor. Panics when short.
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            raw.copy_from_slice(&self.chunk()[..N]);
            self.advance(N);
            $conv(raw)
        }
    )*};
}

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    buf_get_impl! {
        get_u16 -> u16, u16::from_be_bytes;
        get_u16_le -> u16, u16::from_le_bytes;
        get_u32 -> u32, u32::from_be_bytes;
        get_u32_le -> u32, u32::from_le_bytes;
        get_u64 -> u64, u64::from_be_bytes;
        get_u64_le -> u64, u64::from_le_bytes;
        get_i32 -> i32, i32::from_be_bytes;
        get_i32_le -> i32, i32::from_le_bytes;
        get_i64 -> i64, i64::from_be_bytes;
        get_i64_le -> i64, i64::from_le_bytes;
        get_f64 -> f64, f64::from_be_bytes;
        get_f64_le -> f64, f64::from_le_bytes;
    }

    /// Copies `len` bytes out into an owned [`Bytes`], advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Copies exactly `dst.len()` bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.read += cnt;
        self.compact();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

macro_rules! buf_put_impl {
    ($($name:ident($t:ty), $conv:ident);* $(;)?) => {$(
        /// Appends one integer.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.$conv());
        }
    )*};
}

/// Append-only byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put_impl! {
        put_u16(u16), to_be_bytes;
        put_u16_le(u16), to_le_bytes;
        put_u32(u32), to_be_bytes;
        put_u32_le(u32), to_le_bytes;
        put_u64(u64), to_be_bytes;
        put_u64_le(u64), to_le_bytes;
        put_i32(i32), to_be_bytes;
        put_i32_le(i32), to_le_bytes;
        put_i64(i64), to_be_bytes;
        put_i64_le(i64), to_le_bytes;
        put_f64(f64), to_be_bytes;
        put_f64_le(f64), to_le_bytes;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u64_le(7);
        b.put_i32_le(-1);
        b.put_u32(0xdead_beef);
        b.put_u8(9);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 8 + 4 + 4 + 1);
        assert_eq!(bytes.get_u64_le(), 7);
        assert_eq!(bytes.get_i32_le(), -1);
        assert_eq!(bytes.get_u32(), 0xdead_beef);
        assert_eq!(bytes.get_u8(), 9);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let e = b.slice(..0);
        assert!(e.is_empty());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }

    #[test]
    fn bytesmut_read_cursor() {
        let mut b = BytesMut::new();
        b.put_u32_le(1);
        b.put_u32_le(2);
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(b.len(), 4);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 4);
    }

    #[test]
    fn copy_to_bytes_and_slice() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[1, 2]);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(rest, [3, 4, 5]);
    }

    #[test]
    fn bytesmut_reclaims_consumed_bytes() {
        // A long-lived connection inbox: bytes arrive, frames are split
        // off, repeat. The backing storage must stay proportional to the
        // unconsumed tail, not to the total bytes ever received.
        let mut b = BytesMut::new();
        for _ in 0..10_000 {
            b.extend_from_slice(&[0u8; 64]);
            let frame = b.split_to(64);
            assert_eq!(frame.len(), 64);
        }
        assert!(b.is_empty());
        assert!(
            b.data.len() <= 128,
            "consumed prefix retained: {} bytes",
            b.data.len()
        );

        // Same property when consuming through the Buf cursor.
        let mut b = BytesMut::new();
        for _ in 0..10_000 {
            b.put_u64_le(7);
            assert_eq!(b.get_u64_le(), 7);
        }
        assert!(b.data.len() <= 16, "advance retained: {}", b.data.len());
    }

    #[test]
    fn slice_buf_impl() {
        let mut s: &[u8] = &[1, 0, 0, 0];
        assert_eq!(s.get_u32_le(), 1);
        assert!(s.is_empty());
    }
}
