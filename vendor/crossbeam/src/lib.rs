//! Offline stub for the `crossbeam` crate: the `channel` module only.

pub mod channel;
