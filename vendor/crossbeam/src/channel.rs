//! Multi-producer multi-consumer channels with the `crossbeam::channel`
//! API surface this workspace uses: `bounded`/`unbounded` constructors,
//! cloneable `Sender`/`Receiver`, blocking/timeout/non-blocking receive,
//! and disconnect semantics (a send fails once every receiver is gone,
//! a receive fails once every sender is gone and the queue is drained).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are dropped;
/// carries the unsent value.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is bounded and currently full.
    Full(T),
    /// All receivers are dropped.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders are dropped.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and all senders dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// Deadline elapsed with nothing queued.
    Timeout,
    /// Empty and all senders dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// Sending half of a channel; cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of a channel; cloneable (MPMC: each message is
/// delivered to exactly one receiver).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel; sends block while `cap` messages queue.
/// A `cap` of 0 is treated as capacity 1 (this stub has no rendezvous
/// channels; nothing in the workspace uses `bounded(0)`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake blocked receivers so they observe the
            // disconnect. The notify must be serialized with a
            // receiver's check-then-wait by taking the queue lock first
            // — otherwise a receiver that has already seen senders > 0
            // but not yet parked in `not_empty.wait()` misses this
            // notify and blocks forever.
            let queue = self.inner.queue.lock().unwrap();
            self.inner.not_empty.notify_all();
            drop(queue);
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Lock-then-notify for the same lost-wakeup race as
            // `Sender::drop`, here against a blocked `send()`.
            let queue = self.inner.queue.lock().unwrap();
            self.inner.not_full.notify_all();
            drop(queue);
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is queued (or fails if every receiver is
    /// gone).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if self.inner.disconnected_rx() {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self.inner.not_full.wait(queue).unwrap();
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Queues the message only if there is room right now.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.inner.queue.lock().unwrap();
        if self.inner.disconnected_rx() {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.inner.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        queue.push_back(value);
        drop(queue);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives (or fails once the channel is empty
    /// and every sender is gone).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.inner.disconnected_tx() {
                return Err(RecvError);
            }
            queue = self.inner.not_empty.wait(queue).unwrap();
        }
    }

    /// Pops a message only if one is queued right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.inner.queue.lock().unwrap();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            self.inner.not_full.notify_one();
            return Ok(v);
        }
        if self.inner.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.inner.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _res) = self
                .inner
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = q;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterator draining queued messages without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Blocking iterator; ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// See [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// See [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let t = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn disconnect_wakes_blocked_receiver() {
        // Race a receiver entering recv() against the last sender
        // dropping. Without lock-then-notify in Sender::drop, the
        // receiver can check `senders`, lose the CPU before parking,
        // miss the notify, and hang forever; iterate to give the race a
        // real chance to fire.
        for _ in 0..500 {
            let (tx, rx) = unbounded::<i32>();
            let r = thread::spawn(move || rx.recv());
            let s = thread::spawn(move || drop(tx));
            assert_eq!(r.join().unwrap(), Err(RecvError));
            s.join().unwrap();
        }
        // Mirror image: a sender blocked on a full bounded channel must
        // observe the last receiver dropping.
        for _ in 0..500 {
            let (tx, rx) = bounded::<i32>(1);
            tx.send(0).unwrap();
            let s = thread::spawn(move || tx.send(1));
            let r = thread::spawn(move || drop(rx));
            assert_eq!(s.join().unwrap(), Err(SendError(1)));
            r.join().unwrap();
        }
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_each_message_once() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = thread::spawn(move || rx2.iter().count());
        let a = rx.iter().count();
        let b = h.join().unwrap();
        assert_eq!(a + b, 100);
    }
}
