//! The [`Strategy`] trait and combinators.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `pred`; panics after 1000 consecutive
    /// rejections (mirrors the real crate giving up on a too-strict
    /// filter).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Recursive structures: `f` receives a strategy for the current
    /// level and returns one that may embed it. The result draws from
    /// every level up to `depth` applications of `f`, so generated
    /// structures have bounded depth.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("at least the base level").clone();
            levels.push(f(prev).boxed());
        }
        Union::new(levels).boxed()
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut SmallRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Uniform choice over same-valued strategies (`prop_oneof!`, recursion
/// levels).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over `options`; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "empty Union");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn map_and_union() {
        let mut rng = rng_for("map_and_union");
        let s = crate::prop_oneof![(0u8..4).prop_map(|v| v * 10), Just(99u8)];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 99 || v % 10 == 0 && v < 40, "v = {v}");
        }
    }

    #[test]
    fn recursive_bounded_depth() {
        #[derive(Debug)]
        struct Tree(Vec<Tree>);
        fn depth(t: &Tree) -> usize {
            1 + t.0.iter().map(depth).max().unwrap_or(0)
        }
        let leaf = Just(()).prop_map(|_| Tree(Vec::new()));
        let tree = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree)
        });
        let mut rng = rng_for("recursive_bounded_depth");
        for _ in 0..200 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 4, "depth {} too deep", depth(&t));
        }
    }

    #[test]
    fn filter_applies() {
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = rng_for("filter_applies");
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }
}
