//! Regex-lite string strategies: `"[a-z][a-z0-9]{0,8}"` as a
//! `Strategy<Value = String>`, as the real crate provides for `&str`.
//!
//! Supported syntax: literal characters, `\`-escapes, character classes
//! `[...]` with ranges (a trailing or leading `-` is literal), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded repetition is
//! capped at 8). Anything fancier panics at strategy construction.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Flattened set of candidate characters.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut members: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => {
                if let Some(p) = pending {
                    members.push(p);
                }
                return members;
            }
            '-' => {
                // Range when flanked; literal when first or last.
                match (pending, chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        chars.next();
                        assert!(lo <= hi, "descending class range {lo}-{hi}");
                        members.extend(lo..=hi);
                        pending = None;
                    }
                    _ => {
                        if let Some(p) = pending {
                            members.push(p);
                        }
                        pending = Some('-');
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending {
                    members.push(p);
                }
                pending = Some(chars.next().expect("dangling escape in class"));
            }
            other => {
                if let Some(p) = pending {
                    members.push(p);
                }
                pending = Some(other);
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => {
                    let m: usize = m.trim().parse().expect("bad {m,n} quantifier");
                    let n: usize = n.trim().parse().expect("bad {m,n} quantifier");
                    assert!(m <= n, "descending quantifier {{{m},{n}}}");
                    (m, n)
                }
                None => {
                    let n: usize = spec.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let members = parse_class(&mut chars);
                assert!(!members.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(members)
            }
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("regex feature {c:?} not supported by the proptest stub: {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Compiled form of a pattern; `&'static str` delegates to this.
pub struct RegexStrategy {
    pieces: Vec<Piece>,
}

impl RegexStrategy {
    /// Compiles `pattern`; panics on unsupported syntax.
    pub fn new(pattern: &str) -> Self {
        RegexStrategy {
            pieces: parse(pattern),
        }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(members) => {
                        out.push(members[rng.gen_range(0..members.len())]);
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        // Compiling per call keeps the impl allocation-free at rest;
        // patterns in this workspace are tiny.
        RegexStrategy::new(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn identifier_pattern() {
        let mut rng = rng_for("identifier_pattern");
        let s = "[a-zA-Z][a-zA-Z0-9_-]{0,8}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..=9).contains(&v.len()), "{v:?}");
            assert!(v.chars().next().unwrap().is_ascii_alphabetic());
            assert!(v
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn class_with_specials() {
        let mut rng = rng_for("class_with_specials");
        let s = "[a-zA-Z0-9<>&\"' .,:_-]{0,16}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.len() <= 16);
            assert!(v
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "<>&\"' .,:_-".contains(c)));
        }
    }

    #[test]
    fn quantifiers() {
        let mut rng = rng_for("quantifiers");
        assert_eq!(Strategy::generate(&"abc", &mut rng), "abc");
        let v = Strategy::generate(&"x{3}", &mut rng);
        assert_eq!(v, "xxx");
        for _ in 0..50 {
            let v = Strategy::generate(&"a?b+", &mut rng);
            assert!(v.ends_with('b') && v.len() <= 9, "{v:?}");
        }
    }
}
