//! Test-run configuration and seeding.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (the real crate defaults to 256; this stub trades cases
    /// for wall time since it cannot shrink anyway).
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG per test: seeded from an FNV-1a hash of the test
/// name, so failures reproduce across runs while distinct tests see
/// distinct streams.
pub fn rng_for(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}
