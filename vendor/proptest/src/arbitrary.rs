//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char, f32, f64
);

impl Arbitrary for String {
    /// Printable ASCII, 0..32 chars (the real crate generates arbitrary
    /// Unicode; the workspace only round-trips ASCII-safe content).
    fn arbitrary(rng: &mut SmallRng) -> Self {
        let len = rng.gen_range(0usize..32);
        (0..len).map(|_| rng.gen::<char>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn full_domain_bools_and_ints() {
        let mut rng = rng_for("full_domain");
        let bools: Vec<bool> = (0..100).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
        let small: Vec<u8> = (0..200).map(|_| u8::arbitrary(&mut rng)).collect();
        assert!(small.iter().any(|&v| v > 200) && small.iter().any(|&v| v < 50));
    }
}
