//! Offline stub for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses —
//! the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, tuple and range strategies,
//! regex-lite string strategies, `prop::collection::vec`,
//! [`prop_oneof!`], [`arbitrary::any`] and the `prop_assert*` macros —
//! backed by plain random generation. **There is no shrinking**: a
//! failing case reports the panic from the offending input directly.
//! Case seeds are derived deterministically from the test name so runs
//! are reproducible.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property; panics with the formatted
/// message on failure (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    { $body }
                }
            }
        )*
    };
}
