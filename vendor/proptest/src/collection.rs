//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn lengths_respect_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = rng_for("lengths_respect_range");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn fixed_size() {
        let s = vec(0u8..=255, 3usize);
        let mut rng = rng_for("fixed_size");
        assert_eq!(s.generate(&mut rng).len(), 3);
    }
}
