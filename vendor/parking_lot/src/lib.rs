//! Offline stub for the `parking_lot` crate: `Mutex` and `RwLock` with the
//! parking_lot API (no `Result`, no poisoning) implemented over `std::sync`.
//! A panicking lock holder simply does not poison the lock here.

use std::fmt;
use std::sync::{self, TryLockError};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires read access if no writer holds the lock right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires write access if the lock is free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1, *r2);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
