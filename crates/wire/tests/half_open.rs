//! Half-open connection behavior: a peer that hangs up mid-frame or
//! that stops reading must surface as a clean, bounded error at the
//! codec/socket layer — never as an indefinite block.

use bytes::{BufMut, BytesMut};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use wire::{check_clean_eof, split_frame, with_frame, ProtocolError};

fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    (client, server)
}

/// Reads until EOF, feeding the splitter; returns the frames decoded and
/// the residue check result at EOF.
fn drain_frames(stream: &mut TcpStream) -> (usize, Result<(), ProtocolError>) {
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 4096];
    let mut frames = 0;
    loop {
        loop {
            match split_frame(&mut buf) {
                Ok(Some(_)) => frames += 1,
                Ok(None) => break,
                Err(e) => return (frames, Err(e)),
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return (frames, check_clean_eof(&buf)),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read error before EOF: {e}"),
        }
    }
}

#[test]
fn close_after_partial_length_prefix_is_a_truncated_eof() {
    let (mut writer, mut reader) = pair();
    // One whole frame, then two bytes of the next frame's length prefix.
    let mut wire_bytes = BytesMut::new();
    with_frame(&mut wire_bytes, 1, 0x10, |b| b.put_slice(b"complete"));
    writer.write_all(&wire_bytes).expect("whole frame");
    writer.write_all(&[0x40, 0x00]).expect("partial prefix");
    drop(writer); // hang up mid-prefix
    let (frames, eof) = drain_frames(&mut reader);
    assert_eq!(frames, 1, "the complete frame still decodes");
    assert!(
        matches!(eof, Err(ProtocolError::TruncatedEof(2))),
        "partial prefix at EOF must be an error, got {eof:?}"
    );
}

#[test]
fn close_mid_body_is_a_truncated_eof() {
    let (mut writer, mut reader) = pair();
    let mut wire_bytes = BytesMut::new();
    with_frame(&mut wire_bytes, 2, 0x11, |b| b.put_slice(&[7u8; 64]));
    // Send the length prefix, the header, and half the body.
    let cut = 4 + 9 + 32;
    writer.write_all(&wire_bytes[..cut]).expect("partial frame");
    drop(writer);
    let (frames, eof) = drain_frames(&mut reader);
    assert_eq!(frames, 0, "a truncated frame must not decode");
    match eof {
        Err(ProtocolError::TruncatedEof(n)) => assert_eq!(n, cut, "all residue accounted for"),
        other => panic!("expected TruncatedEof, got {other:?}"),
    }
}

#[test]
fn clean_close_between_frames_is_not_an_error() {
    let (mut writer, mut reader) = pair();
    let mut wire_bytes = BytesMut::new();
    for i in 0..3 {
        with_frame(&mut wire_bytes, i, 0x12, |b| b.put_slice(b"x"));
    }
    writer.write_all(&wire_bytes).expect("frames");
    drop(writer);
    let (frames, eof) = drain_frames(&mut reader);
    assert_eq!(frames, 3);
    assert!(eof.is_ok(), "between-frames EOF is clean, got {eof:?}");
}

/// A peer that stops *reading* (SIGSTOP, livelock) eventually fills the
/// kernel buffers; a writer with a write timeout must surface a bounded
/// error instead of blocking forever mid-frame.
#[test]
fn peer_that_stops_reading_times_out_the_writer() {
    let (mut writer, _reader) = pair(); // reader never reads
    writer
        .set_write_timeout(Some(Duration::from_millis(200)))
        .expect("set write timeout");
    let mut frame = BytesMut::new();
    with_frame(&mut frame, 3, 0x13, |b| b.put_slice(&[0u8; 64 * 1024]));
    let started = Instant::now();
    let mut result = Ok(());
    for _ in 0..1024 {
        result = writer.write_all(&frame);
        if result.is_err() {
            break;
        }
    }
    let err = result.expect_err("writes into a full socket must fail, not hang");
    assert!(
        matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
        "expected a timeout-class error, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "writer blocked far beyond its timeout"
    );
}
