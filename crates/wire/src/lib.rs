#![warn(missing_docs)]
//! Shared length-prefixed frame codec over TCP.
//!
//! Every frame is `len:u32le` followed by `len` payload bytes; the
//! payload is `id:u64le tag:u8 body`. All integers are little-endian.
//! The `id` is a correlation id chosen by the sender of a request and
//! echoed in the matching response, which is what makes pipelining
//! possible; point-to-point transports that don't pipeline (the cluster
//! tuple transport) simply carry 0.
//!
//! Id 0 ([`CONNECTION_ERROR_ID`]) is reserved for connection-level
//! errors: when a peer cannot decode a frame it has no trustworthy id to
//! echo, so it reports under id 0 and hangs up.
//!
//! The decoder is fed from a raw TCP byte stream, so it must treat the
//! buffer as hostile: a truncated buffer is "wait for more bytes"
//! (`Ok(None)`), a length prefix beyond [`MAX_FRAME_LEN`] or a body that
//! contradicts its own counts is a [`ProtocolError`] — never a panic.
//!
//! This crate owns only the framing layer — frame splitting, the
//! bounds-checked [`Reader`], and the [`with_frame`] writer. Message
//! vocabularies (tags and body layouts) live with their protocols:
//! `tserve::protocol` for the serving API, `tcluster::protocol` for the
//! cluster control and tuple transport. Both share this one proptested
//! implementation instead of carrying copies.

mod backoff;

pub use backoff::Backoff;

use bytes::{BufMut, BytesMut};
use std::fmt;

/// Upper bound on one frame's payload; length prefixes above this are
/// corrupt by definition (stats and tuple-batch frames, the largest we
/// send, stay far below it).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Frame header: id (8) + tag (1).
pub const HEADER_LEN: usize = 9;

/// Reserved correlation id for connection-level errors (a frame the
/// receiver could not decode has no id worth echoing). Never use it for
/// a request: a response carrying it refers to the connection, not to
/// any in-flight request.
pub const CONNECTION_ERROR_ID: u64 = 0;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Length prefix exceeds [`MAX_FRAME_LEN`] — corrupt or hostile.
    FrameTooLarge(usize),
    /// Frame shorter than the fixed header.
    FrameTooShort(usize),
    /// Unrecognised frame tag.
    UnknownTag(u8),
    /// Body contradicts its own length or counts.
    BadPayload(&'static str),
    /// The peer closed the connection mid-frame, leaving this many bytes
    /// of a partial frame behind (a half-open hang-up, not a clean
    /// between-frames EOF).
    TruncatedEof(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds {MAX_FRAME_LEN}")
            }
            ProtocolError::FrameTooShort(len) => write!(f, "frame length {len} below header"),
            ProtocolError::UnknownTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            ProtocolError::BadPayload(why) => write!(f, "bad payload: {why}"),
            ProtocolError::TruncatedEof(len) => {
                write!(f, "connection closed mid-frame with {len} buffered bytes")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A decoded frame: correlation id plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<T> {
    /// Correlation id (echoed by responses; 0 on one-way transports).
    pub id: u64,
    /// The message.
    pub msg: T,
}

/// Appends one frame to `buf`: writes the header, lets `body` append the
/// message payload, then stamps the length prefix.
pub fn with_frame(buf: &mut BytesMut, id: u64, tag: u8, body: impl FnOnce(&mut Vec<u8>)) {
    let mut payload = Vec::with_capacity(64);
    payload.put_u64_le(id);
    payload.put_u8(tag);
    body(&mut payload);
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "oversized frame");
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
}

/// Bounds-checked reader over one frame body: every accessor verifies
/// remaining length so corrupt frames surface as errors, not panics.
pub struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader positioned at the start of `body`.
    pub fn new(body: &'a [u8]) -> Self {
        Reader { body, pos: 0 }
    }

    /// Takes the next `n` bytes, or errors if fewer remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.body.len() - self.pos < n {
            return Err(ProtocolError::BadPayload("body shorter than declared"));
        }
        let slice = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Asserts the body was consumed exactly; trailing bytes are corrupt.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(ProtocolError::BadPayload("trailing bytes after body"))
        }
    }
}

/// Splits one complete frame off `buf`, returning `(id, tag, body)`.
/// `Ok(None)` means the buffer holds only a partial frame.
pub fn split_frame(buf: &mut BytesMut) -> Result<Option<(u64, u8, BytesMut)>, ProtocolError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    if len < HEADER_LEN {
        return Err(ProtocolError::FrameTooShort(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let _ = buf.split_to(4);
    let mut payload = buf.split_to(len);
    let header = payload.split_to(HEADER_LEN);
    let id = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
    let tag = header[8];
    Ok(Some((id, tag, payload)))
}

/// Classifies an EOF observed after [`split_frame`] returned `Ok(None)`:
/// a peer that hangs up *between* frames leaves an empty buffer (clean
/// end-of-stream); one that hangs up mid-frame — after a partial length
/// prefix or a truncated body — leaves residue, which is a half-open
/// failure the caller must surface instead of waiting for bytes that
/// will never arrive.
pub fn check_clean_eof(buf: &BytesMut) -> Result<(), ProtocolError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(ProtocolError::TruncatedEof(buf.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_roundtrips() {
        let mut buf = BytesMut::new();
        with_frame(&mut buf, 7, 0x42, |b| b.put_slice(b"hello"));
        let (id, tag, body) = split_frame(&mut buf).unwrap().unwrap();
        assert_eq!(id, 7);
        assert_eq!(tag, 0x42);
        assert_eq!(&body[..], b"hello");
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_LEN + 1) as u32);
        buf.put_slice(&[0u8; 32]);
        assert!(matches!(
            split_frame(&mut buf),
            Err(ProtocolError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn undersized_length_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_slice(&[0u8; 3]);
        assert!(matches!(
            split_frame(&mut buf),
            Err(ProtocolError::FrameTooShort(3))
        ));
    }

    #[test]
    fn reader_rejects_overrun_and_trailing() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u32().is_err(), "only 3 bytes available");
        let mut r = Reader::new(&[1, 2, 3, 4, 5]);
        assert_eq!(r.u32().unwrap(), u32::from_le_bytes([1, 2, 3, 4]));
        assert!(r.finish().is_err(), "one byte left over");
    }

    proptest! {
        /// Every strict prefix of a valid frame is "wait for more bytes",
        /// and the frame decodes intact once the rest arrives.
        #[test]
        fn truncation_waits(id in any::<u64>(), tag in any::<u8>(),
                            body in prop::collection::vec(any::<u8>(), 0..200)) {
            let mut full = BytesMut::new();
            with_frame(&mut full, id, tag, |b| b.extend_from_slice(&body));
            let wire = full[..].to_vec();
            for cut in 0..wire.len() {
                let mut partial = BytesMut::new();
                partial.put_slice(&wire[..cut]);
                prop_assert_eq!(split_frame(&mut partial).unwrap(), None);
                partial.put_slice(&wire[cut..]);
                let (got_id, got_tag, got_body) =
                    split_frame(&mut partial).unwrap().expect("complete");
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got_tag, tag);
                prop_assert_eq!(&got_body[..], &body[..]);
            }
        }

        /// Back-to-back frames split in order with ids intact.
        #[test]
        fn pipelined_frames_split_in_order(
            bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..12),
        ) {
            let mut buf = BytesMut::new();
            for (i, body) in bodies.iter().enumerate() {
                with_frame(&mut buf, i as u64, 0x10, |b| b.extend_from_slice(body));
            }
            for (i, body) in bodies.iter().enumerate() {
                let (id, _, got) = split_frame(&mut buf).unwrap().expect("complete");
                prop_assert_eq!(id, i as u64);
                prop_assert_eq!(&got[..], &body[..]);
            }
            prop_assert_eq!(split_frame(&mut buf).unwrap(), None);
        }

        /// Raw garbage never panics the splitter and always terminates.
        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
            let mut buf = BytesMut::new();
            buf.put_slice(&bytes);
            for _ in 0..bytes.len() + 1 {
                match split_frame(&mut buf) {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
