//! Bounded exponential backoff with deterministic jitter.
//!
//! Every TCP path in the stack that retries — worker→supervisor dial,
//! worker reconnection after a dropped or desynced stream, the serve
//! client's idempotent-request retry — shares this one policy instead of
//! carrying its own ad-hoc sleep loop. The delay for attempt *k* is
//! `base · 2^(k-1)` plus up to 50% jitter, capped at `cap`.
//!
//! Jitter is derived from a SplitMix64 finalizer over `(seed, attempt)`,
//! not from a random source: the same seed reproduces the same delay
//! sequence, which keeps chaos runs replayable while still spreading
//! concurrent retriers (each picks a distinct seed) off the same instant.

use std::time::Duration;

/// SplitMix64 finalizer: a high-quality 64→64 bit mixer (the same one
/// `tchaos` uses for its fault schedules).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded exponential backoff with deterministic, seedable jitter.
///
/// Two usage styles:
/// * **Stateful**: [`Backoff::next_delay`] / [`Backoff::sleep_next`] advance an
///   internal attempt counter and observe `max_attempts`.
/// * **Pure**: [`Backoff::delay`] computes the delay for an explicit
///   attempt number without touching any state (the serve client keeps
///   its own attempt loop).
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    max_attempts: u32,
    attempt: u32,
}

impl Backoff {
    /// A policy starting at `base` and never sleeping longer than `cap`
    /// per attempt. Unlimited attempts and seed 0 until overridden.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Backoff {
            base,
            cap,
            seed: 0,
            max_attempts: u32::MAX,
            attempt: 0,
        }
    }

    /// Seeds the jitter stream (concurrent retriers should pick distinct
    /// seeds; chaos harnesses pass their plan seed for replayability).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of attempts [`Backoff::next_delay`] will grant.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Attempts granted so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Rewinds the attempt counter (e.g. after a successful reconnect,
    /// so the *next* outage starts from the base delay again).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The delay before retry `attempt` (1-based): `base · 2^(attempt-1)`
    /// plus up to 50% deterministic jitter, capped at `cap`. Attempt 0 is
    /// treated as 1. A zero base yields zero delays.
    pub fn delay(&self, attempt: u32) -> Duration {
        let base = self.base.as_micros() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u64 << (attempt.max(1) - 1).min(20));
        let jitter = mix(self.seed ^ u64::from(attempt)) % (exp / 2).max(1);
        Duration::from_micros(exp.saturating_add(jitter)).min(self.cap)
    }

    /// Grants the next attempt: `Some(delay)` to wait before retrying, or
    /// `None` when `max_attempts` have been used up.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        self.attempt += 1;
        Some(self.delay(self.attempt))
    }

    /// Sleeps for the next attempt's delay. Returns `false` (without
    /// sleeping) once attempts are exhausted — the caller's cue to give
    /// up.
    pub fn sleep_next(&mut self) -> bool {
        match self.next_delay() {
            Some(delay) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> Backoff {
        Backoff::new(Duration::from_millis(10), Duration::from_millis(500)).with_seed(7)
    }

    #[test]
    fn delays_grow_exponentially_until_the_cap() {
        let b = policy();
        for attempt in 1..12 {
            let d = b.delay(attempt);
            let floor = Duration::from_millis(10 * (1 << (attempt - 1) as u64));
            assert!(
                d >= floor.min(Duration::from_millis(500)),
                "attempt {attempt}: {d:?} below exponential floor"
            );
            assert!(
                d <= Duration::from_millis(500),
                "attempt {attempt}: {d:?} above cap"
            );
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_differs_across_seeds() {
        let a: Vec<_> = (1..8).map(|i| policy().delay(i)).collect();
        let b: Vec<_> = (1..8).map(|i| policy().delay(i)).collect();
        assert_eq!(a, b, "same seed must replay the same delays");
        let c: Vec<_> = (1..8).map(|i| policy().with_seed(8).delay(i)).collect();
        assert_ne!(a, c, "different seeds must jitter differently");
    }

    #[test]
    fn attempts_are_bounded() {
        let mut b = policy().with_max_attempts(3);
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert_eq!(b.next_delay(), None, "fourth attempt must be refused");
        assert!(!b.sleep_next());
        b.reset();
        assert!(b.next_delay().is_some(), "reset re-arms the budget");
    }

    #[test]
    fn zero_base_never_sleeps() {
        let b = Backoff::new(Duration::ZERO, Duration::from_secs(1));
        for attempt in 1..5 {
            assert_eq!(b.delay(attempt), Duration::ZERO);
        }
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let b = policy();
        assert!(b.delay(u32::MAX) <= Duration::from_millis(500));
    }
}
