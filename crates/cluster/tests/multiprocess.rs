//! Multi-process cluster tests: the supervisor re-executes THIS test
//! binary (`spawn_args = ["--exact", "<test_fn>", "--nocapture"]`) so
//! each worker process re-enters the same test fn, where
//! `maybe_run_worker` diverts it into the worker runtime before any test
//! assertions run.
//!
//! Covers the PR's acceptance criteria end to end:
//! - a topology split across ≥ 2 OS processes with tuples crossing
//!   worker boundaries over batched TCP frames;
//! - killing a worker mid-run triggers respawn + offset-resumed replay;
//! - the chaos matrix (WorkerKill + LinkPartition + WorkerStall +
//!   HeartbeatDrop over seeds) drains the CF pipeline to bytes identical
//!   to a fault-free single-process run;
//! - rebalance edge cases: zero spare slots, reassignment mid-batch
//!   (kill with tuples in flight), duplicate join of a restarted worker.

use bytes::BytesMut;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tchaos::{FaultPlan, FaultSite};
use tcluster::protocol::{self, Msg};
use tcluster::{
    maybe_run_worker, Cluster, ClusterApp, SupervisorConfig, WorkerContext, WorkerSpec,
};
use tdaccess::{AccessCluster, ClusterConfig};
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{
    build_cf_topology_with_spout, CfParallelism, CfPipelineConfig, OffsetTable, ReplayProgress,
    ReplayableSpout,
};
use tstorm::prelude::*;

fn spawn_args(test_fn: &str) -> Vec<String> {
    vec!["--exact".into(), test_fn.into(), "--nocapture".into()]
}

// ---------------------------------------------------------------------
// Smoke app: number spout on worker 0, set-dedup sum bolt on worker 1.
// Replay-safe by construction (the bolt collects *distinct* values), so
// worker kills and duplicate deliveries cannot change the drained bytes.
// ---------------------------------------------------------------------

struct NumberSpout {
    next: u64,
    limit: u64,
    replay: VecDeque<u64>,
    acked: Arc<AtomicU64>,
}

impl Spout for NumberSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        let value = self.replay.pop_front().or_else(|| {
            (self.next <= self.limit).then(|| {
                let v = self.next;
                self.next += 1;
                v
            })
        });
        match value {
            Some(v) => {
                collector.emit(vec![Value::U64(v)], Some(v));
                true
            }
            None => false,
        }
    }

    fn ack(&mut self, _msg_id: u64) {
        self.acked.fetch_add(1, Ordering::SeqCst);
    }

    fn fail(&mut self, msg_id: u64) {
        self.replay.push_back(msg_id);
    }

    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["n"])]
    }
}

struct DistinctSumBolt {
    seen: Arc<Mutex<HashSet<u64>>>,
}

impl Bolt for DistinctSumBolt {
    fn execute(&mut self, tuple: &Tuple, _collector: &mut BoltCollector) -> Result<(), String> {
        let Value::U64(n) = tuple.values()[0] else {
            return Err("non-u64 value".into());
        };
        self.seen.lock().unwrap().insert(n);
        Ok(())
    }
}

const SMOKE_LIMIT: u64 = 100;

fn smoke_app(_ctx: &WorkerContext) -> ClusterApp {
    let acked = Arc::new(AtomicU64::new(0));
    let seen = Arc::new(Mutex::new(HashSet::new()));
    let mut builder = TopologyBuilder::new();
    builder.set_spout(
        "numbers",
        {
            let acked = Arc::clone(&acked);
            move || NumberSpout {
                next: 1,
                limit: SMOKE_LIMIT,
                replay: VecDeque::new(),
                acked: Arc::clone(&acked),
            }
        },
        1,
    );
    builder
        .set_bolt(
            "sum",
            {
                let seen = Arc::clone(&seen);
                move || DistinctSumBolt {
                    seen: Arc::clone(&seen),
                }
            },
            2,
        )
        .shuffle_grouping("numbers");
    let mut app = ClusterApp::new(builder.build().expect("smoke topology"));
    app.progress = Some(Arc::new(move || acked.load(Ordering::SeqCst)));
    app.drain = Some(Arc::new(move || {
        let seen = seen.lock().unwrap();
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&(seen.len() as u64).to_le_bytes());
        out.extend_from_slice(&seen.iter().sum::<u64>().to_le_bytes());
        out
    }));
    app
}

fn smoke_config(test_fn: &str) -> SupervisorConfig {
    let mut config = SupervisorConfig::new(vec![
        WorkerSpec::new(["numbers"]),
        WorkerSpec::protected(["sum"]),
    ]);
    config.message_timeout = Duration::from_millis(1500);
    config.spawn_args = spawn_args(test_fn);
    config
}

/// Asserts worker 1's drained state is exactly {1..=SMOKE_LIMIT}.
fn assert_smoke_drain(cluster: &Cluster) {
    let bytes = cluster
        .drain(1, Duration::from_secs(10))
        .expect("drain from worker 1");
    let count = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let sum = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    assert_eq!(count, SMOKE_LIMIT, "distinct values");
    assert_eq!(sum, SMOKE_LIMIT * (SMOKE_LIMIT + 1) / 2, "sum of 1..=limit");
}

#[test]
fn tuples_cross_process_boundaries_and_drain() {
    assert!(!maybe_run_worker(smoke_app));
    let cluster = Cluster::launch(
        smoke_config("tuples_cross_process_boundaries_and_drain"),
        smoke_app,
    )
    .expect("launch");
    assert!(
        cluster.wait_progress(0, SMOKE_LIMIT, Duration::from_secs(60)),
        "spout never saw {SMOKE_LIMIT} acks (progress {})",
        cluster.progress(0)
    );
    assert!(cluster.wait_idle(Duration::from_secs(30)), "never idle");
    assert!(
        cluster.relayed_batches() > 0,
        "no tuple batch crossed the process boundary"
    );
    assert_smoke_drain(&cluster);

    // The merged scrape carries per-worker labelled series from both
    // worker processes plus aggregates.
    let metrics = cluster.render_metrics();
    assert!(metrics.contains("worker=\"w0\""), "missing w0:\n{metrics}");
    assert!(metrics.contains("worker=\"w1\""), "missing w1:\n{metrics}");
    assert!(
        metrics.contains("tstorm_emitted_total"),
        "missing runtime families:\n{metrics}"
    );
    assert_eq!(cluster.restarts(), 0, "no worker should have died");
    cluster.shutdown(Duration::from_secs(10));
}

/// Reassignment mid-batch: the spout worker dies with tuples in flight;
/// the monitor respawns it with the same (sticky) assignment, timed-out
/// trees replay, and the drained state is unchanged.
#[test]
fn killed_worker_respawns_and_cluster_converges() {
    assert!(!maybe_run_worker(smoke_app));
    let cluster = Cluster::launch(
        smoke_config("killed_worker_respawns_and_cluster_converges"),
        smoke_app,
    )
    .expect("launch");
    // Let some (not all) trees complete so the kill lands mid-stream.
    assert!(
        cluster.wait_progress(0, SMOKE_LIMIT / 4, Duration::from_secs(60)),
        "no progress before kill"
    );
    cluster.kill_worker(0);
    // The respawned spout re-emits from scratch; set-dedup absorbs the
    // overlap and the acked counter reaches the limit again.
    assert!(
        cluster.wait_progress(0, SMOKE_LIMIT, Duration::from_secs(60)),
        "respawned worker never converged (progress {}, restarts {})",
        cluster.progress(0),
        cluster.restarts()
    );
    assert!(cluster.wait_idle(Duration::from_secs(30)), "never idle");
    assert!(
        cluster.restarts() >= 1,
        "monitor never respawned the worker"
    );
    assert_smoke_drain(&cluster);
    cluster.shutdown(Duration::from_secs(10));
}

/// Duplicate join: a stray connection registers as worker 0 (stealing
/// its mailbox — exactly what a half-dead incarnation would do), then
/// the real worker is killed. The respawned worker's re-registration
/// displaces the impostor and the cluster still converges.
#[test]
fn duplicate_join_of_restarted_worker_is_absorbed() {
    assert!(!maybe_run_worker(smoke_app));
    let cluster = Cluster::launch(
        smoke_config("duplicate_join_of_restarted_worker_is_absorbed"),
        smoke_app,
    )
    .expect("launch");
    assert!(
        cluster.wait_progress(0, 1, Duration::from_secs(60)),
        "no progress before the duplicate join"
    );
    let mut impostor = TcpStream::connect(cluster.addr()).expect("connect impostor");
    let mut frame = BytesMut::new();
    // Current generation (1): the fence admits it as a legal reconnect —
    // the respawn path below must still win the mailbox back. Stale
    // generations are rejected outright; see the tguard tests.
    protocol::encode(
        &mut frame,
        0,
        &Msg::Register {
            worker_id: 0,
            generation: 1,
        },
    );
    impostor.write_all(&frame).expect("impostor register");
    // Give the supervisor a beat to process the duplicate registration,
    // then kill the real worker: its respawn must win the mailbox back.
    std::thread::sleep(Duration::from_millis(100));
    cluster.kill_worker(0);
    assert!(
        cluster.wait_progress(0, SMOKE_LIMIT, Duration::from_secs(60)),
        "cluster never recovered from the duplicate join (progress {}, restarts {})",
        cluster.progress(0),
        cluster.restarts()
    );
    assert!(cluster.wait_idle(Duration::from_secs(30)), "never idle");
    assert_smoke_drain(&cluster);
    drop(impostor);
    cluster.shutdown(Duration::from_secs(10));
}

#[test]
fn placement_validation_rejects_bad_specs() {
    assert!(!maybe_run_worker(smoke_app));
    // Same component on two workers.
    let double = SupervisorConfig::new(vec![
        WorkerSpec::new(["numbers", "sum"]),
        WorkerSpec::new(["sum"]),
    ]);
    assert!(Cluster::launch(double, smoke_app).is_err());
    // A component nobody runs.
    let missing = SupervisorConfig::new(vec![WorkerSpec::new(["numbers"])]);
    assert!(Cluster::launch(missing, smoke_app).is_err());
    // A component the topology doesn't have.
    let unknown = SupervisorConfig::new(vec![
        WorkerSpec::new(["numbers", "sum"]),
        WorkerSpec::new(["ghost"]),
    ]);
    assert!(Cluster::launch(unknown, smoke_app).is_err());
    // And no workers at all.
    assert!(Cluster::launch(SupervisorConfig::new(vec![]), smoke_app).is_err());
}

/// Zero spare slots: on an exact-fit cluster, losing any supervisor
/// leaves orphan tasks with nowhere to go — Nimbus must report
/// insufficient capacity, and reviving the node must heal the plan.
#[test]
fn rebalance_with_zero_spare_slots_reports_insufficient_capacity() {
    use tstorm::cluster::{ClusterError, Nimbus};
    let mut nimbus = Nimbus::new();
    nimbus.add_supervisor(0, 2);
    nimbus.add_supervisor(1, 3);
    nimbus
        .submit_topology([("spout".to_string(), 2usize), ("bolt".to_string(), 3)])
        .expect("exact fit schedules");
    nimbus.check_invariants().expect("valid plan");
    let err = nimbus.fail_supervisor(1).err().or_else(|| {
        // fail_supervisor may return the orphans and defer the error to
        // rebalance — accept either surface.
        nimbus.rebalance().err()
    });
    assert!(
        matches!(err, Some(ClusterError::InsufficientCapacity { .. })),
        "expected InsufficientCapacity, got {err:?}"
    );
    nimbus.revive_supervisor(1).expect("revive");
    nimbus.rebalance().expect("revived cluster reschedules");
    nimbus.check_invariants().expect("healed plan");
}

// ---------------------------------------------------------------------
// CF convergence under chaos: spout + pretreatment on worker 0
// (kill-eligible), the stateful bolts + store on worker 1 (protected —
// the store lives in worker memory, so a kill there is data loss by
// design, not a recoverable fault). Every process rebuilds the same
// topic deterministically; a respawned worker 0 resumes its spout from
// the offsets the dead incarnation committed through the supervisor.
// ---------------------------------------------------------------------

fn workload() -> Vec<UserAction> {
    let mut actions = Vec::new();
    let mut ts = 0u64;
    for u in 1..=40u64 {
        for item in [1u64, 2, (u % 5) + 3] {
            ts += 1;
            actions.push(UserAction::new(u, item, ActionType::Click, ts));
        }
        if u % 3 == 0 {
            ts += 1;
            actions.push(UserAction::new(u, 1, ActionType::Click, ts));
        }
    }
    actions
}

fn cf_config() -> CfPipelineConfig {
    CfPipelineConfig {
        // Must cover the spout's replay horizon (max_pending 64 + one
        // poll batch) — and the respawn path holds the same bound because
        // recovered offsets cap the re-read tail at the same horizon.
        dedup_window: 256,
        ..Default::default()
    }
}

/// `ic:`/`pc:` keys with their count prefix (the value's first 8 bytes),
/// serialized in sorted order — the byte string two equivalent runs must
/// agree on.
fn encode_counts(store: &TdStore) -> Vec<u8> {
    let mut out = Vec::new();
    for prefix in [b"ic:".as_slice(), b"pc:".as_slice()] {
        let sorted: BTreeMap<Vec<u8>, Vec<u8>> =
            store.scan_prefix(prefix).unwrap().into_iter().collect();
        for (k, v) in sorted {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(&k);
            out.extend_from_slice(&v[0..8]);
        }
    }
    out
}

/// Builds the topic (deterministic: same workload, same FNV key
/// partitioning in every process) and the full CF topology over it.
fn cf_cluster_app(ctx: &WorkerContext) -> ClusterApp {
    let access = AccessCluster::new(ClusterConfig::default());
    access.create_topic("actions", 4).unwrap();
    let producer = access.producer("actions").unwrap();
    for a in workload() {
        producer
            .send(Some(&a.user.to_le_bytes()[..]), &a.to_bytes())
            .unwrap();
    }
    let store = TdStore::new(StoreConfig::default());
    let progress = Arc::new(ReplayProgress::default());
    let table = Arc::new(OffsetTable::new());
    let start = ctx
        .recovered
        .as_deref()
        .and_then(OffsetTable::decode)
        .unwrap_or_default();
    let topology = build_cf_topology_with_spout(
        {
            let access = access.clone();
            let progress = Arc::clone(&progress);
            let table = Arc::clone(&table);
            move || {
                ReplayableSpout::new(access.clone(), "actions", "cf", Arc::clone(&progress))
                    // A SIGKILLed worker never leaves its consumer group;
                    // the pinned slice sidesteps the ghost membership.
                    .with_pinned_partitions(0, 1)
                    .with_start_offsets(start.clone())
                    .with_offset_table(Arc::clone(&table))
            }
        },
        store.clone(),
        cf_config(),
        CfParallelism::default(),
        TopologyConfig::default(),
    )
    .expect("cf topology");
    let mut app = ClusterApp::new(topology);
    // Progress = total committed source records, computed from the
    // offset table so it survives restarts (the table is seeded from the
    // recovered watermarks on respawn).
    app.progress = Some(Arc::new({
        let table = Arc::clone(&table);
        move || table.snapshot().iter().map(|&(_, off)| off).sum()
    }));
    app.commit = Some(Arc::new(move || table.encode()));
    app.drain = Some(Arc::new(move || encode_counts(&store)));
    app
}

/// Fault-free single-process baseline over the identical workload and
/// config, drained to the same byte encoding the cluster drain uses.
fn baseline_counts() -> Vec<u8> {
    let app = cf_cluster_app(&WorkerContext {
        worker_id: u32::MAX,
        recovered: None,
    });
    let drain = app.drain.clone().unwrap();
    let progress = app.progress.clone().unwrap();
    let n = workload().len() as u64;
    let handle = app.topology.launch();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while progress() < n {
        assert!(
            std::time::Instant::now() < deadline,
            "baseline stalled at {}/{n}",
            progress()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.wait_idle(Duration::from_secs(30)));
    handle.shutdown(Duration::from_secs(5));
    let bytes = drain();
    assert!(!bytes.is_empty(), "baseline produced no counts");
    bytes
}

fn seed_matrix() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![3, 7, 11, 23, 42],
    }
}

/// The cluster acceptance test: for every seed, run the CF pipeline
/// split across two worker processes while chaos kills the spout worker,
/// SIGSTOPs it (a gray failure only the lease detector can see), drops
/// its heartbeats, and partitions the inter-worker link — then require
/// the drained counts to be byte-identical to the fault-free
/// single-process baseline.
#[test]
fn cf_cluster_converges_under_worker_kill_and_link_partition() {
    assert!(!maybe_run_worker(cf_cluster_app));
    let baseline = baseline_counts();
    let n = workload().len() as u64;
    let mut kills = 0u64;
    let mut drops = 0u64;
    let mut stalls = 0u64;
    let mut heartbeat_drops = 0u64;
    for seed in seed_matrix() {
        let mut config = SupervisorConfig::new(vec![
            WorkerSpec::new(["spout", "pretreatment"]),
            WorkerSpec::protected(["user_history", "item_count", "cf_pair"]),
        ]);
        // WorkerKill and WorkerStall draw once per status frame (~20/s)
        // from worker 0; LinkPartition draws once per relayed tuple
        // batch; HeartbeatDrop draws once per status frame from any
        // worker. max_faults 2 on kills exercises the double-kill
        // (duplicate replayed tail) path. HeartbeatDrop at 0.5 cannot
        // expire an 800 ms lease (that takes 16 consecutive losses) —
        // it proves lossy heartbeats alone don't cause spurious
        // respawns, while WorkerStall proves a real stall does.
        config.fault_plan = FaultPlan::builder(seed)
            .site(FaultSite::WorkerKill, 0.03, 2)
            .site(FaultSite::LinkPartition, 0.02, 5)
            .site(FaultSite::WorkerStall, 0.02, 1)
            .site(FaultSite::HeartbeatDrop, 0.5, 40)
            .build();
        config.message_timeout = Duration::from_millis(1500);
        config.lease_timeout = Duration::from_millis(800);
        config.spawn_args = spawn_args("cf_cluster_converges_under_worker_kill_and_link_partition");
        let cluster = Cluster::launch(config, cf_cluster_app).expect("launch");
        assert!(
            cluster.wait_progress(0, n, Duration::from_secs(180)),
            "seed {seed}: committed stalled at {}/{n} (restarts {}, dropped {})",
            cluster.progress(0),
            cluster.restarts(),
            cluster.dropped_batches()
        );
        assert!(
            cluster.wait_idle(Duration::from_secs(60)),
            "seed {seed}: cluster never went idle"
        );
        let drained = cluster
            .drain(1, Duration::from_secs(10))
            .expect("drain worker 1");
        assert_eq!(
            drained,
            baseline,
            "seed {seed}: cluster counts diverged from the fault-free baseline \
             (restarts {}, dropped batches {})",
            cluster.restarts(),
            cluster.dropped_batches()
        );
        kills += cluster.fault_plan().fired(FaultSite::WorkerKill);
        drops += cluster.dropped_batches();
        stalls += cluster.fault_plan().fired(FaultSite::WorkerStall);
        heartbeat_drops += cluster.fault_plan().fired(FaultSite::HeartbeatDrop);
        cluster.shutdown(Duration::from_secs(10));
    }
    // A chaos matrix that injects nothing proves nothing. (Only enforced
    // on the full default matrix; a CHAOS_SEEDS override narrows it.)
    if std::env::var("CHAOS_SEEDS").is_err() {
        assert!(kills > 0, "no worker kill fired across the seed matrix");
        assert!(drops > 0, "no link partition fired across the seed matrix");
        assert!(stalls > 0, "no worker stall fired across the seed matrix");
        assert!(
            heartbeat_drops > 0,
            "no heartbeat drop fired across the seed matrix"
        );
    }
    println!(
        "cluster chaos matrix: {kills} kills, {drops} dropped batches, \
         {stalls} stalls, {heartbeat_drops} dropped heartbeats"
    );
}
