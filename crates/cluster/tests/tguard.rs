//! tguard integration tests: gray-failure detection (lease expiry over
//! heartbeats), generation fencing of zombie incarnations, and fail-fast
//! degradation while a worker's lease is down.
//!
//! Like `multiprocess.rs`, the supervisor re-executes THIS test binary
//! with `--exact <test_fn>`, so every test calls `maybe_run_worker` with
//! its own app builder before any assertion runs.

use bytes::BytesMut;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ckpt::{CheckpointConfig, Coordinator};
use tcluster::protocol::{self, Msg};
use tcluster::{
    maybe_run_worker, Cluster, ClusterApp, SupervisorConfig, WorkerContext, WorkerSpec,
};
use tdaccess::{AccessCluster, ClusterConfig};
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{
    build_cf_topology_with_spout, CfParallelism, CfPipelineConfig, OffsetTable, ReplayProgress,
    ReplayableSpout,
};
use tstorm::prelude::*;
use wire::split_frame;

/// Checkpoint path for the stalled-state-worker test, inherited by
/// respawned worker processes.
const ENV_SNAP: &str = "TGUARD_SNAP_PATH";

fn spawn_args(test_fn: &str) -> Vec<String> {
    vec!["--exact".into(), test_fn.into(), "--nocapture".into()]
}

/// Polls `probe` until it returns true or `timeout` elapses.
fn poll_until(timeout: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

// ---------------------------------------------------------------------
// Paced smoke app: number spout on worker 0, set-dedup sum bolt on
// worker 1. The spout paces emission (~1 tuple/ms) so a mid-run SIGSTOP
// of the bolt worker lands while tuples are still flowing — the window
// in which fail-fast degradation is observable.
// ---------------------------------------------------------------------

const FLOW_LIMIT: u64 = 1500;

struct PacedSpout {
    next: u64,
    limit: u64,
    replay: VecDeque<u64>,
    acked: Arc<AtomicU64>,
}

impl Spout for PacedSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        let value = self.replay.pop_front().or_else(|| {
            (self.next <= self.limit).then(|| {
                let v = self.next;
                self.next += 1;
                v
            })
        });
        match value {
            Some(v) => {
                // Pacing keeps emission (and the fail→replay churn while
                // the destination is down) alive across the lease window.
                std::thread::sleep(Duration::from_millis(1));
                collector.emit(vec![Value::U64(v)], Some(v));
                true
            }
            None => false,
        }
    }

    fn ack(&mut self, _msg_id: u64) {
        self.acked.fetch_add(1, Ordering::SeqCst);
    }

    fn fail(&mut self, msg_id: u64) {
        self.replay.push_back(msg_id);
    }

    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["n"])]
    }
}

struct DistinctSumBolt {
    seen: Arc<Mutex<HashSet<u64>>>,
}

impl Bolt for DistinctSumBolt {
    fn execute(&mut self, tuple: &Tuple, _collector: &mut BoltCollector) -> Result<(), String> {
        let Value::U64(n) = tuple.values()[0] else {
            return Err("non-u64 value".into());
        };
        self.seen.lock().unwrap().insert(n);
        Ok(())
    }
}

fn paced_app(limit: u64) -> impl Fn(&WorkerContext) -> ClusterApp {
    move |_ctx| {
        let acked = Arc::new(AtomicU64::new(0));
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let mut builder = TopologyBuilder::new();
        builder.set_spout(
            "numbers",
            {
                let acked = Arc::clone(&acked);
                move || PacedSpout {
                    next: 1,
                    limit,
                    replay: VecDeque::new(),
                    acked: Arc::clone(&acked),
                }
            },
            1,
        );
        builder
            .set_bolt(
                "sum",
                {
                    let seen = Arc::clone(&seen);
                    move || DistinctSumBolt {
                        seen: Arc::clone(&seen),
                    }
                },
                2,
            )
            .shuffle_grouping("numbers");
        let mut app = ClusterApp::new(builder.build().expect("paced topology"));
        app.progress = Some(Arc::new(move || acked.load(Ordering::SeqCst)));
        app.drain = Some(Arc::new(move || {
            let seen = seen.lock().unwrap();
            (seen.len() as u64).to_le_bytes().to_vec()
        }));
        app
    }
}

/// Graceful degradation under a gray failure of a *downstream* worker:
/// SIGSTOP the bolt worker mid-stream. The lease detector (not process
/// reaping — the process is alive) must declare it failed; while the
/// lease is down, batches routed to it are failed fast at the acker
/// (bounded buffering, immediate replay) rather than buffered toward the
/// frozen socket; and after the respawn the run drains to idle. The
/// bolt's in-memory set is intentionally lost — this test proves
/// liveness and degradation accounting, not state recovery (that is
/// `stalled_state_owning_worker_recovers_via_lease_and_snapshot`).
#[test]
fn stalled_downstream_worker_fails_fast_and_unwedges() {
    let app = paced_app(FLOW_LIMIT);
    assert!(!maybe_run_worker(&app));
    let mut config = SupervisorConfig::new(vec![
        WorkerSpec::protected(["numbers"]),
        WorkerSpec::new(["sum"]),
    ]);
    // Tree timeout below the lease: trees stuck toward the stalled
    // worker fail (and replay) while the lease clock is still running,
    // so the spout is actively emitting when the lease expires and the
    // fail-fast path deterministically sees traffic.
    config.message_timeout = Duration::from_millis(600);
    config.lease_timeout = Duration::from_millis(800);
    config.spawn_args = spawn_args("stalled_downstream_worker_fails_fast_and_unwedges");
    let cluster = Cluster::launch(config, &app).expect("launch");

    assert!(
        cluster.wait_progress(0, 10, Duration::from_secs(60)),
        "no progress before the stall"
    );
    cluster.stall_worker(1);
    assert!(
        poll_until(Duration::from_secs(30), || cluster.lease_expiries() >= 1),
        "lease never expired for the stalled worker (restarts {})",
        cluster.restarts()
    );
    assert!(
        poll_until(Duration::from_secs(30), || cluster.failed_fast_batches()
            >= 1),
        "no batch was failed fast while the lease was down"
    );
    assert!(
        poll_until(Duration::from_secs(30), || cluster.restarts() >= 1),
        "stalled worker was never respawned"
    );
    assert!(
        cluster.generation(1) >= 2,
        "respawn must bump the generation"
    );
    assert!(
        cluster.wait_progress(0, FLOW_LIMIT, Duration::from_secs(120)),
        "cluster wedged after the gray failure (progress {}, lease expiries {}, \
         failed fast {}, restarts {})",
        cluster.progress(0),
        cluster.lease_expiries(),
        cluster.failed_fast_batches(),
        cluster.restarts()
    );
    assert!(cluster.wait_idle(Duration::from_secs(60)), "never idle");
    let metrics = cluster.render_metrics();
    assert!(
        metrics.contains("tcluster_lease_expired"),
        "missing lease metric:\n{metrics}"
    );
    assert!(
        metrics.contains("tcluster_relay_failed_fast"),
        "missing fail-fast metric:\n{metrics}"
    );
    cluster.shutdown(Duration::from_secs(10));
}

/// Generation fencing, both surfaces. A zombie (stale-generation)
/// registration is rejected with a Shutdown frame; a connection that
/// registered legitimately but stamps frames with a stale generation has
/// those frames dropped and counted.
#[test]
fn stale_generation_frames_are_fenced() {
    let app = paced_app(100);
    assert!(!maybe_run_worker(&app));
    let mut config = SupervisorConfig::new(vec![
        WorkerSpec::protected(["numbers"]),
        WorkerSpec::new(["sum"]),
    ]);
    config.message_timeout = Duration::from_millis(1500);
    config.spawn_args = spawn_args("stale_generation_frames_are_fenced");
    let cluster = Cluster::launch(config, &app).expect("launch");
    assert!(
        cluster.wait_progress(0, 100, Duration::from_secs(60)),
        "cluster never converged"
    );
    assert!(cluster.wait_idle(Duration::from_secs(30)), "never idle");
    assert_eq!(cluster.fenced_frames(), 0, "no fencing before the zombies");

    // Surface 1: a zombie registers with a generation the supervisor has
    // never issued for the slot. It must be rejected, counted, and told
    // to exit — the reply is a Shutdown frame followed by a close.
    let mut zombie = TcpStream::connect(cluster.addr()).expect("connect zombie");
    let mut frame = BytesMut::new();
    protocol::encode(
        &mut frame,
        999,
        &Msg::Register {
            worker_id: 0,
            generation: 999,
        },
    );
    zombie.write_all(&frame).expect("zombie register");
    zombie
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 4096];
    let mut got_shutdown = false;
    'reply: loop {
        while let Ok(Some((_, tag, body))) = split_frame(&mut buf) {
            if matches!(protocol::decode(tag, &body), Ok(Msg::Shutdown)) {
                got_shutdown = true;
                break 'reply;
            }
        }
        match zombie.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    assert!(
        got_shutdown,
        "fenced registration must be answered with Shutdown"
    );
    assert!(
        poll_until(Duration::from_secs(10), || cluster.fenced_frames() >= 1),
        "stale registration was not counted as fenced"
    );

    // Surface 2: register with the *current* generation (a legal
    // reconnect — it steals the mailbox, exactly like multiprocess.rs's
    // duplicate-join test), then send a data-plane frame stamped with a
    // stale generation. The frame must be dropped and counted, not
    // processed.
    let mut half_zombie = TcpStream::connect(cluster.addr()).expect("connect half-zombie");
    let mut frame = BytesMut::new();
    protocol::encode(
        &mut frame,
        1,
        &Msg::Register {
            worker_id: 0,
            generation: 1,
        },
    );
    protocol::encode(
        &mut frame,
        999, // stale stamp on an otherwise well-formed frame
        &Msg::Status {
            progress: u64::MAX,
            inflight: 0,
            spouts_idle: true,
        },
    );
    half_zombie.write_all(&frame).expect("half-zombie frames");
    assert!(
        poll_until(Duration::from_secs(10), || cluster.fenced_frames() >= 2),
        "stale data frame was not counted as fenced (fenced {})",
        cluster.fenced_frames()
    );
    assert_ne!(
        cluster.progress(0),
        u64::MAX,
        "a fenced Status frame must never reach the health record"
    );

    drop(zombie);
    drop(half_zombie);
    // Worker 0's real mailbox was stolen by the half-zombie, so its
    // Shutdown frame can't be delivered; the short timeout kills it.
    cluster.shutdown(Duration::from_millis(800));
}

// ---------------------------------------------------------------------
// Stalled state-owning worker: the full tguard recovery story. One
// worker owns the whole CF pipeline and its store, checkpointing to a
// durable snapshot file (the `snapshot_restore.rs` pattern). A SIGSTOP
// freezes it mid-run; only the lease can detect that. Recovery must
// fence the zombie, respawn, restore the snapshot, replay the tail, and
// drain byte-identical to a fault-free baseline.
// ---------------------------------------------------------------------

fn workload() -> Vec<UserAction> {
    let mut actions = Vec::new();
    let mut ts = 0u64;
    for u in 1..=160u64 {
        for item in [1u64, 2, (u % 5) + 3] {
            ts += 1;
            actions.push(UserAction::new(u, item, ActionType::Click, ts));
        }
        if u % 3 == 0 {
            ts += 1;
            actions.push(UserAction::new(u, 1, ActionType::Click, ts));
        }
    }
    actions
}

fn cf_config() -> CfPipelineConfig {
    CfPipelineConfig {
        // Covers the replay horizon of a barrier sealed with acks still
        // in flight through the supervisor's global acker.
        dedup_window: 256,
        ..Default::default()
    }
}

fn encode_counts(store: &TdStore) -> Vec<u8> {
    let mut out = Vec::new();
    for prefix in [b"ic:".as_slice(), b"pc:".as_slice()] {
        let sorted: BTreeMap<Vec<u8>, Vec<u8>> =
            store.scan_prefix(prefix).unwrap().into_iter().collect();
        for (k, v) in sorted {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(&k);
            out.extend_from_slice(&v[0..8]);
        }
    }
    out
}

fn build_topic() -> AccessCluster {
    let access = AccessCluster::new(ClusterConfig::default());
    access.create_topic("actions", 4).unwrap();
    let producer = access.producer("actions").unwrap();
    for a in workload() {
        producer
            .send(Some(&a.user.to_le_bytes()[..]), &a.to_bytes())
            .unwrap();
    }
    access
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

/// Checkpointing single-worker CF app (see `snapshot_restore.rs` for the
/// full rationale of the sealed-offsets commit discipline).
fn cf_guard_app(ctx: &WorkerContext) -> ClusterApp {
    let access = build_topic();
    let store = TdStore::new(StoreConfig::default());
    let progress = Arc::new(ReplayProgress::default());
    let table = Arc::new(OffsetTable::new());
    let coordinator = Arc::new(
        Coordinator::open(
            PathBuf::from(std::env::var(ENV_SNAP).expect("TGUARD_SNAP_PATH not set")),
            CheckpointConfig {
                drain_timeout: Duration::from_secs(30),
                retain: 2,
                ..Default::default()
            },
        )
        .expect("open checkpoint log"),
    );

    let restored = coordinator.restore_into(&store).expect("restore snapshot");
    let start_table = OffsetTable::new();
    if let Some(r) = &restored {
        start_table.merge(&r.start_offsets);
    }
    if let Some(rec) = ctx.recovered.as_deref().and_then(OffsetTable::decode) {
        start_table.merge(&rec);
    }
    let start = start_table.snapshot();
    let sealed = Arc::new(Mutex::new(start_table.encode()));

    let topology = build_cf_topology_with_spout(
        {
            let access = access.clone();
            let progress = Arc::clone(&progress);
            let table = Arc::clone(&table);
            let start = start.clone();
            move || {
                ReplayableSpout::new(access.clone(), "actions", "cf", Arc::clone(&progress))
                    .with_pinned_partitions(0, 1)
                    .with_start_offsets(start.clone())
                    .with_offset_table(Arc::clone(&table))
            }
        },
        store.clone(),
        cf_config(),
        CfParallelism::default(),
        TopologyConfig::default(),
    )
    .expect("cf topology");

    let mut app = ClusterApp::new(topology);
    app.progress = Some(Arc::new({
        let table = Arc::clone(&table);
        move || table.snapshot().iter().map(|&(_, off)| off).sum()
    }));
    app.commit = Some(Arc::new({
        let sealed = Arc::clone(&sealed);
        move || sealed.lock().unwrap().clone()
    }));
    app.drain = Some(Arc::new({
        let store = store.clone();
        move || encode_counts(&store)
    }));
    app.checkpoint = Some(Arc::new({
        let coordinator = Arc::clone(&coordinator);
        let store = store.clone();
        let table = Arc::clone(&table);
        move |handle| {
            if coordinator
                .checkpoint(handle, &store, &table, now_ms())
                .is_ok()
            {
                if let Some(snap) = coordinator.snapshots().load_latest() {
                    *sealed.lock().unwrap() = snap.offsets;
                }
            }
        }
    }));
    app.checkpoint_every = Duration::from_millis(100);
    app
}

fn baseline_counts() -> Vec<u8> {
    let access = build_topic();
    let store = TdStore::new(StoreConfig::default());
    let progress = Arc::new(ReplayProgress::default());
    let topology = build_cf_topology_with_spout(
        {
            let access = access.clone();
            let progress = Arc::clone(&progress);
            move || ReplayableSpout::new(access.clone(), "actions", "cf", Arc::clone(&progress))
        },
        store.clone(),
        cf_config(),
        CfParallelism::default(),
        TopologyConfig::default(),
    )
    .expect("baseline topology");
    let n = workload().len() as u64;
    let handle = topology.launch();
    let deadline = Instant::now() + Duration::from_secs(60);
    while progress.committed() < n {
        assert!(
            Instant::now() < deadline,
            "baseline stalled at {}/{n}",
            progress.committed()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.wait_idle(Duration::from_secs(30)));
    handle.shutdown(Duration::from_secs(5));
    let bytes = encode_counts(&store);
    assert!(!bytes.is_empty(), "baseline produced no counts");
    bytes
}

/// The tentpole acceptance test: SIGSTOP the worker that owns *all*
/// state mid-run. Process reaping can never see it (the process is
/// alive); the lease must expire, the zombie must be fenced by
/// generation, the respawn must restore from the durable snapshot and
/// replay the tail — and the drained counts must match the fault-free
/// baseline byte for byte.
#[test]
fn stalled_state_owning_worker_recovers_via_lease_and_snapshot() {
    assert!(!maybe_run_worker(cf_guard_app));
    let dir = std::env::temp_dir().join(format!("tguard-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var(ENV_SNAP, dir.join("ckpt.fdb"));

    let baseline = baseline_counts();
    let n = workload().len() as u64;
    let mut config = SupervisorConfig::new(vec![WorkerSpec::new([
        "spout",
        "pretreatment",
        "user_history",
        "item_count",
        "cf_pair",
    ])]);
    config.message_timeout = Duration::from_millis(1500);
    config.lease_timeout = Duration::from_millis(800);
    config.spawn_args = spawn_args("stalled_state_owning_worker_recovers_via_lease_and_snapshot");
    let cluster = Cluster::launch(config, cf_guard_app).expect("launch");

    // Let real progress (and at least a checkpoint or two) land, then
    // freeze the worker mid-flight.
    assert!(
        cluster.wait_progress(0, n / 3, Duration::from_secs(60)),
        "no progress before the stall"
    );
    cluster.stall_worker(0);
    assert!(
        poll_until(Duration::from_secs(30), || cluster.lease_expiries() >= 1),
        "lease never expired: a stalled-but-alive worker went undetected"
    );
    assert!(
        poll_until(Duration::from_secs(30), || cluster.restarts() >= 1),
        "lease expiry never produced a respawn"
    );
    assert!(
        cluster.generation(0) >= 2,
        "respawn must bump the slot generation (got {})",
        cluster.generation(0)
    );

    // Converge-and-drain with the snapshot_restore retry discipline: a
    // drain polled mid-recovery can be incomplete, so only a baseline
    // match (or the deadline) ends the loop.
    let mut drained = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if Instant::now() >= deadline {
            break;
        }
        if !cluster.wait_progress(0, n, Duration::from_secs(60))
            || !cluster.wait_idle(Duration::from_secs(30))
        {
            continue;
        }
        if let Some(bytes) = cluster.drain(0, Duration::from_secs(10)) {
            drained = bytes;
            if drained == baseline {
                break;
            }
        }
    }
    assert_eq!(
        drained,
        baseline,
        "recovered counts diverged from the fault-free baseline \
         (lease expiries {}, restarts {}, fenced {})",
        cluster.lease_expiries(),
        cluster.restarts(),
        cluster.fenced_frames()
    );
    let metrics = cluster.render_metrics();
    assert!(
        metrics.contains("tcluster_lease_expired"),
        "missing lease metric:\n{metrics}"
    );
    assert!(
        metrics.contains("tcluster_worker_generation"),
        "missing generation metric:\n{metrics}"
    );
    cluster.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&dir);
}
