//! Worker respawn with durable checkpoints: a single kill-eligible
//! worker owns the whole CF pipeline *and* its store, so a SIGKILL loses
//! every byte of in-memory state. A `ckpt::Coordinator` snapshots the
//! store + offset vector to a file the respawned incarnation restores
//! from, so recovery replays only the tail after the last snapshot
//! instead of the whole topic — and still drains byte-identical to a
//! fault-free baseline.
//!
//! The offset vector a worker-local barrier seals can lag the landed
//! state by up to the spout's replay horizon (acks round-trip through
//! the supervisor's global acker), so the replayed tail overlaps events
//! already folded into the snapshot; the dedup rings restored *with* the
//! state absorb exactly that overlap (`dedup_window` ≥ replay horizon).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ckpt::{CheckpointConfig, Coordinator};
use tchaos::{FaultPlan, FaultSite};
use tcluster::{
    maybe_run_worker, Cluster, ClusterApp, SupervisorConfig, WorkerContext, WorkerSpec,
};
use tdaccess::{AccessCluster, ClusterConfig};
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{
    build_cf_topology_with_spout, CfParallelism, CfPipelineConfig, OffsetTable, ReplayProgress,
    ReplayableSpout,
};
use tstorm::prelude::*;

/// Carries the per-seed checkpoint path into respawned worker processes
/// (they inherit the supervisor's environment).
const ENV_SNAP: &str = "TSNAP_CLUSTER_PATH";

fn spawn_args(test_fn: &str) -> Vec<String> {
    vec!["--exact".into(), test_fn.into(), "--nocapture".into()]
}

// Larger than the multiprocess chaos workload on purpose: the run must
// outlive a few checkpoint intervals so a kill can land *after* a
// snapshot published — otherwise every respawn takes the offset-zero
// fall-back; the deterministic kill-after-publish scenario at the end
// of the test is what *guarantees* a real restore gets exercised.
fn workload() -> Vec<UserAction> {
    let mut actions = Vec::new();
    let mut ts = 0u64;
    for u in 1..=160u64 {
        for item in [1u64, 2, (u % 5) + 3] {
            ts += 1;
            actions.push(UserAction::new(u, item, ActionType::Click, ts));
        }
        if u % 3 == 0 {
            ts += 1;
            actions.push(UserAction::new(u, 1, ActionType::Click, ts));
        }
    }
    actions
}

fn cf_config() -> CfPipelineConfig {
    CfPipelineConfig {
        // Must cover the replay horizon of a barrier sealed with acks
        // still in flight through the supervisor (max_pending + one poll
        // batch), or restored-state-plus-tail-replay double-counts.
        dedup_window: 256,
        ..Default::default()
    }
}

/// `ic:`/`pc:` keys with their count prefix, serialized in sorted order —
/// the byte string every convergent run must agree on.
fn encode_counts(store: &TdStore) -> Vec<u8> {
    let mut out = Vec::new();
    for prefix in [b"ic:".as_slice(), b"pc:".as_slice()] {
        let sorted: BTreeMap<Vec<u8>, Vec<u8>> =
            store.scan_prefix(prefix).unwrap().into_iter().collect();
        for (k, v) in sorted {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(&k);
            out.extend_from_slice(&v[0..8]);
        }
    }
    out
}

/// Deterministic topic: same workload, same FNV key partitioning in
/// every process and incarnation.
fn build_topic() -> AccessCluster {
    let access = AccessCluster::new(ClusterConfig {
        // Small segments so the checkpoint hook's log compaction has
        // sealed head segments to shed within one run (the default 4096
        // per segment would keep this whole workload in one hot segment
        // per partition and truncation would be a permanent no-op).
        segment: tdaccess::SegmentConfig {
            max_messages: 64,
            ..Default::default()
        },
        ..Default::default()
    });
    access.create_topic("actions", 4).unwrap();
    let producer = access.producer("actions").unwrap();
    for a in workload() {
        producer
            .send(Some(&a.user.to_le_bytes()[..]), &a.to_bytes())
            .unwrap();
    }
    access
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

/// The checkpointing cluster app. Every incarnation (probe, first life,
/// respawns) restores the newest snapshot from `TSNAP_CLUSTER_PATH` into
/// a fresh store and seeks the spout to the sealed offset vector; a
/// periodic checkpoint hook publishes new snapshots while running.
///
/// The commit hook deliberately ships only the *sealed* offsets (the
/// last published snapshot's vector), never the live table: the live
/// watermark can run ahead of the snapshot, and the state behind it dies
/// with the process — advertising it would skip events on respawn.
fn cf_snapshot_app(ctx: &WorkerContext) -> ClusterApp {
    let access = build_topic();
    let store = TdStore::new(StoreConfig::default());
    let progress = Arc::new(ReplayProgress::default());
    let table = Arc::new(OffsetTable::new());
    let coordinator = Arc::new(
        Coordinator::open(
            PathBuf::from(std::env::var(ENV_SNAP).expect("TSNAP_CLUSTER_PATH not set")),
            CheckpointConfig {
                drain_timeout: Duration::from_secs(30),
                retain: 2,
                ..Default::default()
            },
        )
        .expect("open checkpoint log"),
    );

    let restored = coordinator.restore_into(&store).expect("restore snapshot");
    // Resume point: snapshot offsets, topped up by the recovered commit
    // blob. The commit hook only ever ships sealed offsets, so recovered
    // ≤ snapshot and the max-merge can never skip unsnapshotted events.
    let start_table = OffsetTable::new();
    if let Some(r) = &restored {
        start_table.merge(&r.start_offsets);
    }
    if let Some(rec) = ctx.recovered.as_deref().and_then(OffsetTable::decode) {
        start_table.merge(&rec);
    }
    let start = start_table.snapshot();
    let sealed = Arc::new(Mutex::new(start_table.encode()));

    let topology = build_cf_topology_with_spout(
        {
            let access = access.clone();
            let progress = Arc::clone(&progress);
            let table = Arc::clone(&table);
            let start = start.clone();
            move || {
                ReplayableSpout::new(access.clone(), "actions", "cf", Arc::clone(&progress))
                    // A SIGKILLed worker never leaves its consumer group;
                    // the pinned slice sidesteps the ghost membership.
                    .with_pinned_partitions(0, 1)
                    .with_start_offsets(start.clone())
                    .with_offset_table(Arc::clone(&table))
            }
        },
        store.clone(),
        cf_config(),
        CfParallelism::default(),
        TopologyConfig::default(),
    )
    .expect("cf topology");

    let mut app = ClusterApp::new(topology);
    app.progress = Some(Arc::new({
        let table = Arc::clone(&table);
        move || table.snapshot().iter().map(|&(_, off)| off).sum()
    }));
    app.commit = Some(Arc::new({
        let sealed = Arc::clone(&sealed);
        move || sealed.lock().unwrap().clone()
    }));
    app.drain = Some(Arc::new({
        let store = store.clone();
        move || encode_counts(&store)
    }));
    app.checkpoint = Some(Arc::new({
        let coordinator = Arc::clone(&coordinator);
        let store = store.clone();
        let table = Arc::clone(&table);
        let access = access.clone();
        move |handle| {
            if coordinator
                .checkpoint(handle, &store, &table, now_ms())
                .is_ok()
            {
                if let Some(snap) = coordinator.snapshots().load_latest() {
                    // The sealed offset vector is the proven replay
                    // floor: everything below it is re-creatable from
                    // the published snapshot, so commit it for the
                    // spout's group and let the log shed head segments
                    // that no group still needs.
                    if let Some(pairs) = OffsetTable::decode(&snap.offsets) {
                        let _ = access.commit_group_offsets("actions", "cf", &pairs);
                        let _ = access.truncate_topic_before("actions", &pairs);
                    }
                    *sealed.lock().unwrap() = snap.offsets;
                }
            }
        }
    }));
    app.checkpoint_every = Duration::from_millis(100);

    // Exported so the supervisor can see whether the *final* incarnation
    // resumed from a real snapshot (`tsnap_restored_epoch` > 0, set by
    // `restore_into` above) and how many log segments compaction shed
    // (`tdaccess_truncated_segments`, in the access registry).
    let registry = obs::Registry::new();
    coordinator.register_metrics(&registry);
    app.registries = vec![registry, access.registry().clone()];
    app
}

/// Fault-free single-process baseline over the identical workload and
/// config, with no checkpointing in the loop.
fn baseline_counts() -> Vec<u8> {
    let access = build_topic();
    let store = TdStore::new(StoreConfig::default());
    let progress = Arc::new(ReplayProgress::default());
    let topology = build_cf_topology_with_spout(
        {
            let access = access.clone();
            let progress = Arc::clone(&progress);
            move || ReplayableSpout::new(access.clone(), "actions", "cf", Arc::clone(&progress))
        },
        store.clone(),
        cf_config(),
        CfParallelism::default(),
        TopologyConfig::default(),
    )
    .expect("baseline topology");
    let n = workload().len() as u64;
    let handle = topology.launch();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while progress.committed() < n {
        assert!(
            std::time::Instant::now() < deadline,
            "baseline stalled at {}/{n}",
            progress.committed()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.wait_idle(Duration::from_secs(30)));
    handle.shutdown(Duration::from_secs(5));
    let bytes = encode_counts(&store);
    assert!(!bytes.is_empty(), "baseline produced no counts");
    bytes
}

fn seed_matrix() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![3, 7, 11, 23, 42],
    }
}

/// How often the last-reported incarnation restored from a real snapshot
/// (rendered gauge `tsnap_restored_epoch` > 0 for any worker series).
fn restored_from_snapshot(rendered: &str) -> bool {
    rendered
        .lines()
        .filter(|l| l.starts_with("tsnap_restored_epoch"))
        .any(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v > 0.0)
        })
}

/// Total log segments shed by the checkpoint hook's compaction, summed
/// over every `tdaccess_truncated_segments` series in the scrape.
fn truncated_segments(rendered: &str) -> u64 {
    rendered
        .lines()
        .filter(|l| l.starts_with("tdaccess_truncated_segments"))
        .filter_map(|l| l.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()))
        .sum::<f64>() as u64
}

/// The tentpole cluster acceptance test: kill the worker that owns *all*
/// state, respawn it, restore from the newest durable snapshot, replay
/// only the tail — and drain byte-identical to the fault-free baseline.
#[test]
fn killed_state_worker_restores_from_snapshot_and_converges() {
    assert!(!maybe_run_worker(cf_snapshot_app));
    let baseline = baseline_counts();
    let n = workload().len() as u64;
    let mut kills = 0u64;
    let mut snapshot_restores = 0u64;
    for seed in seed_matrix() {
        let dir = std::env::temp_dir().join(format!("tsnap-cluster-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.fdb");
        std::env::set_var(ENV_SNAP, &path);

        // One worker holds everything: spout, every bolt, and the store.
        // Nothing is protected — the kill wipes all in-memory state and
        // only the checkpoint file survives.
        let mut config = SupervisorConfig::new(vec![WorkerSpec::new([
            "spout",
            "pretreatment",
            "user_history",
            "item_count",
            "cf_pair",
        ])]);
        // Drawn once per status frame (~20/s); the single-worker run is
        // short, so the per-draw probability is high to make kills (and
        // a second kill of the restored incarnation) actually land.
        config.fault_plan = FaultPlan::builder(seed)
            .site(FaultSite::WorkerKill, 0.15, 2)
            .build();
        config.message_timeout = Duration::from_millis(1500);
        config.spawn_args = spawn_args("killed_state_worker_restores_from_snapshot_and_converges");
        let cluster = Cluster::launch(config, cf_snapshot_app).expect("launch");
        // Converge-and-drain must tolerate a kill landing between the
        // idle check and the drain request (the drain frame dies with
        // the socket): retry until the kill budget is exhausted and a
        // fully converged incarnation reports.
        let mut drained = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(180);
        loop {
            if std::time::Instant::now() >= deadline {
                // Fall through to the assert below with whatever the last
                // drain produced — the mismatch is the useful diagnostic.
                break;
            }
            if !cluster.wait_progress(0, n, Duration::from_secs(60))
                || !cluster.wait_idle(Duration::from_secs(30))
            {
                continue;
            }
            if let Some(bytes) = cluster.drain(0, Duration::from_secs(10)) {
                drained = bytes;
                // A report polled mid-respawn can be incomplete; only a
                // baseline match (or the exhausted retry deadline) ends
                // the loop.
                if drained == baseline {
                    break;
                }
            }
        }
        assert_eq!(
            drained,
            baseline,
            "seed {seed}: restored counts diverged from the fault-free baseline (restarts {})",
            cluster.restarts()
        );
        let seed_kills = cluster.fault_plan().fired(FaultSite::WorkerKill);
        kills += seed_kills;
        if seed_kills > 0 && restored_from_snapshot(&cluster.render_metrics()) {
            snapshot_restores += 1;
        }
        cluster.shutdown(Duration::from_secs(10));

        // The survivor artifact is readable on its own: reopening the
        // checkpoint log must expose a loadable snapshot whenever one was
        // published (torn tails from the kill fall back, never corrupt).
        let coord = Coordinator::open(&path, CheckpointConfig::default()).unwrap();
        if let Some(meta) = coord.latest() {
            let fresh = TdStore::new(StoreConfig::default());
            let restored = coord
                .restore_into(&fresh)
                .expect("post-run restore")
                .expect("manifest points at a loadable snapshot");
            assert_eq!(restored.meta.epoch, meta.epoch);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    // A chaos matrix that injects nothing proves nothing. (Only enforced
    // on the full default matrix.) Whether a seeded kill also lands
    // *after* a publish is a wall-clock race — faster failure recovery
    // shrinks runs and shifts kills earlier — so restoring from a real
    // snapshot is proven deterministically below, not statistically here.
    if std::env::var("CHAOS_SEEDS").is_err() {
        assert!(kills > 0, "no worker kill fired across the seed matrix");
    }
    println!("snapshot-restore matrix: {kills} kills, {snapshot_restores} snapshot restores");

    // Deterministic restore proof: no fault plan; wait until the worker
    // has published at least one checkpoint (visible in the scrape), then
    // kill it deliberately. The respawn is now *guaranteed* to find a
    // snapshot, so the final incarnation must report a restored epoch > 0
    // — and still drain byte-identical.
    let dir = std::env::temp_dir().join(format!("tsnap-cluster-{}-det", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var(ENV_SNAP, dir.join("ckpt.fdb"));
    let mut config = SupervisorConfig::new(vec![WorkerSpec::new([
        "spout",
        "pretreatment",
        "user_history",
        "item_count",
        "cf_pair",
    ])]);
    config.message_timeout = Duration::from_millis(1500);
    config.spawn_args = spawn_args("killed_state_worker_restores_from_snapshot_and_converges");
    let cluster = Cluster::launch(config, cf_snapshot_app).expect("launch");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let published = |rendered: &str| {
        rendered
            .lines()
            .filter(|l| l.starts_with("ckpt_checkpoints_total"))
            .any(|l| {
                l.rsplit(' ')
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .is_some_and(|v| v > 0.0)
            })
    };
    while !published(&cluster.render_metrics()) {
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint ever published before the deliberate kill"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.kill_worker(0);
    let mut drained = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(180);
    while std::time::Instant::now() < deadline {
        if !cluster.wait_progress(0, n, Duration::from_secs(60))
            || !cluster.wait_idle(Duration::from_secs(30))
        {
            continue;
        }
        if let Some(bytes) = cluster.drain(0, Duration::from_secs(10)) {
            drained = bytes;
            if drained == baseline {
                break;
            }
        }
    }
    assert_eq!(
        drained, baseline,
        "deliberate-kill restore diverged from the fault-free baseline"
    );
    assert!(cluster.restarts() >= 1, "worker was never respawned");
    // The respawned incarnation's metrics report can lag convergence by
    // one export interval; poll rather than sampling once. The converged
    // incarnation must also have compacted the access log: its sealed
    // offsets sit at the workload's end, far past the first 64-message
    // segments, so the hook's truncation has head segments to shed.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let rendered = cluster.render_metrics();
        if restored_from_snapshot(&rendered) && truncated_segments(&rendered) > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "respawn never reported a snapshot restore plus compacted log \
             (tsnap_restored_epoch > 0 and tdaccess_truncated_segments > 0)"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown(Duration::from_secs(10));
    let _ = std::fs::remove_dir_all(&dir);
    println!("snapshot-restore deterministic: killed after publish, restored epoch > 0");
}
