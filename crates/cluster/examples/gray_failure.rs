//! Gray-failure demo: the spout worker of a two-process CF pipeline is
//! SIGSTOPped mid-run — alive to the process reaper, dead to the
//! topology. The supervisor's lease detector expires it, the generation
//! fence shuts out the zombie, the respawn resumes from committed
//! offsets, and the run drains byte-identical to a fault-free baseline.
//!
//! Run with `cargo run --release -p tcluster --example gray_failure`.
//! `scripts/ci.sh` greps the `tguard:` markers printed below.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcluster::{Cluster, ClusterApp, SupervisorConfig, WorkerContext, WorkerSpec};
use tdaccess::{AccessCluster, ClusterConfig};
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{
    build_cf_topology_with_spout, CfParallelism, CfPipelineConfig, OffsetTable, ReplayProgress,
    ReplayableSpout,
};
use tstorm::prelude::*;

const USERS: u64 = 400;

fn workload() -> Vec<UserAction> {
    let mut actions = Vec::new();
    let mut ts = 0u64;
    for u in 1..=USERS {
        for item in [1u64, 2, (u % 7) + 3] {
            ts += 1;
            actions.push(UserAction::new(u, item, ActionType::Click, ts));
        }
    }
    actions
}

fn cf_config() -> CfPipelineConfig {
    CfPipelineConfig {
        dedup_window: 256,
        ..Default::default()
    }
}

/// Sorted `ic:`/`pc:` keys with their 8-byte count prefix — the byte
/// string equivalent runs must agree on.
fn encode_counts(store: &TdStore) -> Vec<u8> {
    let mut out = Vec::new();
    for prefix in [b"ic:".as_slice(), b"pc:".as_slice()] {
        let sorted: BTreeMap<Vec<u8>, Vec<u8>> =
            store.scan_prefix(prefix).unwrap().into_iter().collect();
        for (k, v) in sorted {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(&k);
            out.extend_from_slice(&v[0..8]);
        }
    }
    out
}

/// Deterministic topic + CF topology, identical in every process; a
/// respawned worker 0 resumes its spout from recovered offsets.
fn app(ctx: &WorkerContext) -> ClusterApp {
    let access = AccessCluster::new(ClusterConfig::default());
    access.create_topic("actions", 4).unwrap();
    let producer = access.producer("actions").unwrap();
    for a in workload() {
        producer
            .send(Some(&a.user.to_le_bytes()[..]), &a.to_bytes())
            .unwrap();
    }
    let store = TdStore::new(StoreConfig::default());
    let progress = Arc::new(ReplayProgress::default());
    let table = Arc::new(OffsetTable::new());
    let start = ctx
        .recovered
        .as_deref()
        .and_then(OffsetTable::decode)
        .unwrap_or_default();
    let topology = build_cf_topology_with_spout(
        {
            let access = access.clone();
            let progress = Arc::clone(&progress);
            let table = Arc::clone(&table);
            move || {
                ReplayableSpout::new(access.clone(), "actions", "cf", Arc::clone(&progress))
                    .with_pinned_partitions(0, 1)
                    .with_start_offsets(start.clone())
                    .with_offset_table(Arc::clone(&table))
            }
        },
        store.clone(),
        cf_config(),
        CfParallelism::default(),
        TopologyConfig::default(),
    )
    .expect("cf topology");
    let mut app = ClusterApp::new(topology);
    app.progress = Some(Arc::new({
        let table = Arc::clone(&table);
        move || table.snapshot().iter().map(|&(_, off)| off).sum()
    }));
    app.commit = Some(Arc::new(move || table.encode()));
    app.drain = Some(Arc::new(move || encode_counts(&store)));
    app
}

/// Fault-free single-process run over the identical workload.
fn baseline() -> Vec<u8> {
    let probe = app(&WorkerContext {
        worker_id: u32::MAX,
        recovered: None,
    });
    let drain = probe.drain.clone().unwrap();
    let progress = probe.progress.clone().unwrap();
    let n = workload().len() as u64;
    let handle = probe.topology.launch();
    let deadline = Instant::now() + Duration::from_secs(60);
    while progress() < n {
        assert!(Instant::now() < deadline, "baseline stalled");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.wait_idle(Duration::from_secs(30)));
    handle.shutdown(Duration::from_secs(5));
    drain()
}

fn main() {
    if tcluster::maybe_run_worker(app) {
        unreachable!("maybe_run_worker exits the process in worker mode");
    }
    let expected = baseline();
    let n = workload().len() as u64;

    let mut config = SupervisorConfig::new(vec![
        WorkerSpec::new(["spout", "pretreatment"]),
        WorkerSpec::protected(["user_history", "item_count", "cf_pair"]),
    ]);
    config.message_timeout = Duration::from_millis(1500);
    config.lease_timeout = Duration::from_millis(700);
    let cluster = Cluster::launch(config, app).expect("launch cluster");
    println!("tguard: supervisor at {} with 2 workers", cluster.addr());

    // Freeze the spout worker as soon as tuples cross the process
    // boundary: SIGSTOP, not SIGKILL — the process stays alive, so only
    // the heartbeat lease can see the failure.
    let stall_deadline = Instant::now() + Duration::from_secs(60);
    while cluster.relayed_batches() == 0 {
        assert!(Instant::now() < stall_deadline, "no relay before the stall");
        std::thread::yield_now();
    }
    println!(
        "tguard: stalling worker 0 (SIGSTOP) at committed={} of {n}",
        cluster.progress(0)
    );
    cluster.stall_worker(0);

    let expiry_deadline = Instant::now() + Duration::from_secs(30);
    while cluster.lease_expiries() == 0 {
        assert!(
            Instant::now() < expiry_deadline,
            "lease never expired for the stalled worker"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let scrape_line = cluster
        .render_metrics()
        .lines()
        .find(|l| l.starts_with("tcluster_lease_expired") && !l.ends_with(" 0"))
        .map(str::to_string)
        .unwrap_or_default();
    println!("tguard: lease expired (scrape: {scrape_line})");

    assert!(
        cluster.wait_progress(0, n, Duration::from_secs(120)),
        "cluster stalled at {}/{n} after the gray failure",
        cluster.progress(0)
    );
    assert!(
        cluster.wait_idle(Duration::from_secs(60)),
        "cluster never went idle"
    );
    assert!(cluster.restarts() >= 1, "worker was never respawned");
    assert!(cluster.generation(0) >= 2, "generation was never bumped");
    println!(
        "tguard: worker 0 respawned (generation {}, restarts {}, fenced {})",
        cluster.generation(0),
        cluster.restarts(),
        cluster.fenced_frames()
    );

    let drained = cluster
        .drain(1, Duration::from_secs(10))
        .expect("drain worker 1");
    assert_eq!(
        drained, expected,
        "recovered counts diverged from the fault-free baseline"
    );
    println!(
        "tguard: converged after gray failure (drain verified, {} bytes)",
        drained.len()
    );

    cluster.shutdown(Duration::from_secs(10));
    println!("GRAY FAILURE OK");
}
