//! Supervisor ↔ worker control-plane and data-plane frames.
//!
//! Every frame uses the shared [`wire`] length-prefixed layout
//! (`len:u32le | id:u64le tag:u8 body`). The supervisor relays
//! [`Msg::TupleBatch`] frames between workers without decoding the tuple
//! payload — [`peek_tuple_batch_dest`] reads only the destination
//! component from the body head — so the data plane stays one copy per
//! hop. Everything else is decoded with [`decode`].

use bytes::BytesMut;
use obs::{LatencySnapshot, Sample, SampleKind};
use tstorm::ack::{AckerMsg, InitEntry};
use tstorm::remote::WireTuple;
use tstorm::tuple::Value;
use wire::{with_frame, ProtocolError, Reader, MAX_FRAME_LEN};

/// Worker → supervisor: first frame on a fresh connection.
pub const TAG_REGISTER: u8 = 0x01;
/// Supervisor → worker: which components to run and their spout slots.
pub const TAG_ASSIGNMENT: u8 = 0x02;
/// Supervisor → worker: all workers are registered, start the slice.
pub const TAG_START: u8 = 0x03;
/// Either direction: tuples bound for one task of one component.
pub const TAG_TUPLE_BATCH: u8 = 0x10;
/// Worker → supervisor: batched acker traffic for the global acker.
pub const TAG_ACKER_BATCH: u8 = 0x11;
/// Supervisor → worker: ack/fail notifications for one spout slot.
pub const TAG_SPOUT_NOTIFY: u8 = 0x12;
/// Worker → supervisor: periodic liveness/progress report.
pub const TAG_STATUS: u8 = 0x13;
/// Supervisor → worker: serialize app state and report it back.
pub const TAG_DRAIN_REQUEST: u8 = 0x14;
/// Worker → supervisor: the app state bytes from a drain request.
pub const TAG_DRAIN_REPORT: u8 = 0x15;
/// Supervisor → worker: stop the topology and exit the process.
pub const TAG_SHUTDOWN: u8 = 0x16;
/// Worker → supervisor: periodic metric samples for the cluster scrape.
pub const TAG_METRICS: u8 = 0x17;
/// Worker → supervisor: latest durable resume point (offset commits).
pub const TAG_COMMIT: u8 = 0x18;

/// Ack/fail discriminator carried by [`Msg::SpoutNotify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyKind {
    /// The tuple trees rooted at the carried message ids completed.
    Ack,
    /// The trees failed or timed out; the spout should replay them.
    Fail,
}

/// One decoded protocol message.
#[derive(Debug)]
pub enum Msg {
    /// Worker announces itself (first frame after connecting).
    Register {
        /// The worker's index in the supervisor's config.
        worker_id: u32,
        /// The incarnation generation the supervisor stamped into this
        /// worker's environment at spawn. Registration is fenced: only
        /// the generation the supervisor most recently spawned for this
        /// slot may join, so a zombie predecessor can never steal its
        /// replacement's mailbox. Every subsequent worker→supervisor
        /// frame carries the same generation as its wire id.
        generation: u64,
    },
    /// Supervisor tells a worker which topology slice it owns.
    Assignment {
        /// Components that get real task threads in this worker.
        components: Vec<String>,
        /// Global acker slot of each local spout task, in local order.
        slot_map: Vec<usize>,
        /// The worker's last offset-commit blob, when this assignment
        /// follows a restart (`None` on first launch).
        recovered: Option<Vec<u8>>,
    },
    /// Every worker is registered; launch the slice and start emitting.
    Start,
    /// Tuples for `dest_component`/`dest_task`, flattened for the wire.
    TupleBatch {
        /// Receiving component name.
        dest_component: String,
        /// Task index within the receiving component.
        dest_task: usize,
        /// The flattened tuples.
        tuples: Vec<WireTuple>,
    },
    /// Acker traffic drained from one worker's emitters.
    AckerBatch(
        /// The forwarded messages, in channel order.
        Vec<AckerMsg>,
    ),
    /// Tree completions/failures for one global spout slot.
    SpoutNotify {
        /// Global acker slot of the owning spout task.
        global_slot: usize,
        /// Whether the ids acked or failed.
        kind: NotifyKind,
        /// User-supplied message ids of the affected trees.
        ids: Vec<u64>,
    },
    /// Periodic worker health/progress report.
    Status {
        /// App-defined progress (e.g. records fully processed); 0 when
        /// the app declares no progress probe.
        progress: u64,
        /// Tuples queued/buffered/executing in the worker.
        inflight: i64,
        /// True when every local spout has nothing left to emit.
        spouts_idle: bool,
    },
    /// Ask the worker to serialize its app state.
    DrainRequest,
    /// The serialized app state.
    DrainReport(
        /// Opaque app-defined bytes (empty when the app has no drain fn).
        Vec<u8>,
    ),
    /// Stop the topology and exit.
    Shutdown,
    /// Metric samples exported from the worker's registries.
    MetricsReport(
        /// The samples, in registration order.
        Vec<Sample>,
    ),
    /// The worker's latest durable resume point. The supervisor stores
    /// only the newest blob per worker and replays it in the
    /// [`Msg::Assignment`] after a restart.
    OffsetCommit(
        /// Opaque app-defined bytes (e.g. an encoded
        /// per-partition offset table).
        Vec<u8>,
    ),
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn w_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::I64(i) => {
            out.push(2);
            w_u64(out, *i as u64);
        }
        Value::U64(u) => {
            out.push(3);
            w_u64(out, *u);
        }
        Value::F64(f) => {
            out.push(4);
            w_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(5);
            w_str(out, s);
        }
    }
}

fn w_wire_tuple(out: &mut Vec<u8>, t: &WireTuple) {
    w_str(out, &t.stream);
    w_str(out, &t.src_component);
    w_u64(out, t.src_task as u64);
    w_u32(out, t.values.len() as u32);
    for v in &t.values {
        w_value(out, v);
    }
    w_u32(out, t.anchors.len() as u32);
    for &(root, edge) in &t.anchors {
        w_u64(out, root);
        w_u64(out, edge);
    }
}

fn w_acker_msg(out: &mut Vec<u8>, m: &AckerMsg) {
    match m {
        AckerMsg::Init {
            root,
            xor,
            slot,
            msg_id,
            emit_ms,
        } => {
            out.push(0);
            w_u64(out, *root);
            w_u64(out, *xor);
            w_u64(out, *slot as u64);
            w_u64(out, *msg_id);
            w_u64(out, *emit_ms);
        }
        AckerMsg::InitBatch(inits) => {
            out.push(1);
            w_u32(out, inits.len() as u32);
            for i in inits {
                w_u64(out, i.root);
                w_u64(out, i.xor);
                w_u64(out, i.slot as u64);
                w_u64(out, i.msg_id);
                w_u64(out, i.emit_ms);
            }
        }
        AckerMsg::Xor { root, xor } => {
            out.push(2);
            w_u64(out, *root);
            w_u64(out, *xor);
        }
        AckerMsg::XorBatch(pairs) => {
            out.push(3);
            w_u32(out, pairs.len() as u32);
            for &(root, xor) in pairs {
                w_u64(out, root);
                w_u64(out, xor);
            }
        }
        AckerMsg::Fail { root } => {
            out.push(4);
            w_u64(out, *root);
        }
        // Shutdown is process-local (end-of-stream marker for the
        // forwarder); it never crosses the wire.
        AckerMsg::Shutdown => out.push(5),
    }
}

fn w_sample(out: &mut Vec<u8>, s: &Sample) {
    w_str(out, &s.family);
    w_str(out, &s.help);
    w_u32(out, s.labels.len() as u32);
    for (k, v) in &s.labels {
        w_str(out, k);
        w_str(out, v);
    }
    match &s.kind {
        SampleKind::Counter(v) => {
            out.push(0);
            w_u64(out, *v);
        }
        SampleKind::Gauge(v) => {
            out.push(1);
            w_u64(out, v.to_bits());
        }
        SampleKind::Histogram { snapshot, is_nanos } => {
            out.push(2);
            out.push(u8::from(*is_nanos));
            w_u64(out, snapshot.sum_nanos());
            w_u64(out, snapshot.max_nanos());
            let sparse = snapshot.sparse_counts();
            w_u32(out, sparse.len() as u32);
            for (bucket, count) in sparse {
                w_u32(out, bucket);
                w_u64(out, count);
            }
        }
    }
}

type BodyWriter<'a> = Box<dyn Fn(&mut Vec<u8>) + 'a>;

/// Encodes `msg` as one frame with correlation id `id` into `buf`.
pub fn encode(buf: &mut BytesMut, id: u64, msg: &Msg) {
    let (tag, enc): (u8, BodyWriter<'_>) = match msg {
        Msg::Register {
            worker_id,
            generation,
        } => (
            TAG_REGISTER,
            Box::new(move |out| {
                w_u32(out, *worker_id);
                w_u64(out, *generation);
            }),
        ),
        Msg::Assignment {
            components,
            slot_map,
            recovered,
        } => (
            TAG_ASSIGNMENT,
            Box::new(move |out| {
                w_u32(out, components.len() as u32);
                for c in components {
                    w_str(out, c);
                }
                w_u32(out, slot_map.len() as u32);
                for &s in slot_map {
                    w_u64(out, s as u64);
                }
                match recovered {
                    None => out.push(0),
                    Some(b) => {
                        out.push(1);
                        w_bytes(out, b);
                    }
                }
            }),
        ),
        Msg::Start => (TAG_START, Box::new(|_| {})),
        Msg::TupleBatch {
            dest_component,
            dest_task,
            tuples,
        } => (
            TAG_TUPLE_BATCH,
            Box::new(move |out| {
                w_str(out, dest_component);
                w_u64(out, *dest_task as u64);
                w_u32(out, tuples.len() as u32);
                for t in tuples {
                    w_wire_tuple(out, t);
                }
            }),
        ),
        Msg::AckerBatch(msgs) => (
            TAG_ACKER_BATCH,
            Box::new(move |out| {
                w_u32(out, msgs.len() as u32);
                for m in msgs {
                    w_acker_msg(out, m);
                }
            }),
        ),
        Msg::SpoutNotify {
            global_slot,
            kind,
            ids,
        } => (
            TAG_SPOUT_NOTIFY,
            Box::new(move |out| {
                w_u64(out, *global_slot as u64);
                out.push(match kind {
                    NotifyKind::Ack => 0,
                    NotifyKind::Fail => 1,
                });
                w_u32(out, ids.len() as u32);
                for &i in ids {
                    w_u64(out, i);
                }
            }),
        ),
        Msg::Status {
            progress,
            inflight,
            spouts_idle,
        } => (
            TAG_STATUS,
            Box::new(move |out| {
                w_u64(out, *progress);
                w_u64(out, *inflight as u64);
                out.push(u8::from(*spouts_idle));
            }),
        ),
        Msg::DrainRequest => (TAG_DRAIN_REQUEST, Box::new(|_| {})),
        Msg::DrainReport(bytes) => (TAG_DRAIN_REPORT, Box::new(move |out| w_bytes(out, bytes))),
        Msg::Shutdown => (TAG_SHUTDOWN, Box::new(|_| {})),
        Msg::MetricsReport(samples) => (
            TAG_METRICS,
            Box::new(move |out| {
                w_u32(out, samples.len() as u32);
                for s in samples {
                    w_sample(out, s);
                }
            }),
        ),
        Msg::OffsetCommit(bytes) => (TAG_COMMIT, Box::new(move |out| w_bytes(out, bytes))),
    };
    with_frame(buf, id, tag, |out| enc(out));
}

fn r_str(r: &mut Reader<'_>) -> Result<String, ProtocolError> {
    let len = r.u32()? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadPayload("invalid utf-8"))
}

fn r_count(r: &mut Reader<'_>, min_item: usize) -> Result<usize, ProtocolError> {
    let n = r.u32()? as usize;
    if n > MAX_FRAME_LEN / min_item.max(1) {
        return Err(ProtocolError::BadPayload("count exceeds frame bound"));
    }
    Ok(n)
}

fn r_value(r: &mut Reader<'_>) -> Result<Value, ProtocolError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::I64(r.u64()? as i64),
        3 => Value::U64(r.u64()?),
        4 => Value::F64(f64::from_bits(r.u64()?)),
        5 => Value::Str(r_str(r)?.into()),
        _ => return Err(ProtocolError::BadPayload("unknown value tag")),
    })
}

fn r_wire_tuple(r: &mut Reader<'_>) -> Result<WireTuple, ProtocolError> {
    let stream = r_str(r)?;
    let src_component = r_str(r)?;
    let src_task = r.u64()? as usize;
    let n_values = r_count(r, 1)?;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        values.push(r_value(r)?);
    }
    let n_anchors = r_count(r, 16)?;
    let mut anchors = Vec::with_capacity(n_anchors);
    for _ in 0..n_anchors {
        anchors.push((r.u64()?, r.u64()?));
    }
    Ok(WireTuple {
        stream,
        src_component,
        src_task,
        values,
        anchors,
    })
}

fn r_acker_msg(r: &mut Reader<'_>) -> Result<AckerMsg, ProtocolError> {
    Ok(match r.u8()? {
        0 => AckerMsg::Init {
            root: r.u64()?,
            xor: r.u64()?,
            slot: r.u64()? as usize,
            msg_id: r.u64()?,
            emit_ms: r.u64()?,
        },
        1 => {
            let n = r_count(r, 40)?;
            let mut inits = Vec::with_capacity(n);
            for _ in 0..n {
                inits.push(InitEntry {
                    root: r.u64()?,
                    xor: r.u64()?,
                    slot: r.u64()? as usize,
                    msg_id: r.u64()?,
                    emit_ms: r.u64()?,
                });
            }
            AckerMsg::InitBatch(inits)
        }
        2 => AckerMsg::Xor {
            root: r.u64()?,
            xor: r.u64()?,
        },
        3 => {
            let n = r_count(r, 16)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((r.u64()?, r.u64()?));
            }
            AckerMsg::XorBatch(pairs)
        }
        4 => AckerMsg::Fail { root: r.u64()? },
        5 => AckerMsg::Shutdown,
        _ => return Err(ProtocolError::BadPayload("unknown acker tag")),
    })
}

fn r_sample(r: &mut Reader<'_>) -> Result<Sample, ProtocolError> {
    let family = r_str(r)?;
    let help = r_str(r)?;
    let n_labels = r_count(r, 8)?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        labels.push((r_str(r)?, r_str(r)?));
    }
    let kind = match r.u8()? {
        0 => SampleKind::Counter(r.u64()?),
        1 => SampleKind::Gauge(f64::from_bits(r.u64()?)),
        2 => {
            let is_nanos = r.u8()? != 0;
            let sum = r.u64()?;
            let max = r.u64()?;
            let n = r_count(r, 12)?;
            let mut sparse = Vec::with_capacity(n);
            for _ in 0..n {
                sparse.push((r.u32()?, r.u64()?));
            }
            SampleKind::Histogram {
                snapshot: LatencySnapshot::from_parts(&sparse, 0, sum, max),
                is_nanos,
            }
        }
        _ => return Err(ProtocolError::BadPayload("unknown sample kind")),
    };
    Ok(Sample {
        family,
        labels,
        help,
        kind,
    })
}

/// Decodes one frame body. `tag` and `body` come from
/// [`wire::split_frame`].
pub fn decode(tag: u8, body: &[u8]) -> Result<Msg, ProtocolError> {
    let mut r = Reader::new(body);
    let msg = match tag {
        TAG_REGISTER => Msg::Register {
            worker_id: r.u32()?,
            generation: r.u64()?,
        },
        TAG_ASSIGNMENT => {
            let n = r_count(&mut r, 4)?;
            let mut components = Vec::with_capacity(n);
            for _ in 0..n {
                components.push(r_str(&mut r)?);
            }
            let n = r_count(&mut r, 8)?;
            let mut slot_map = Vec::with_capacity(n);
            for _ in 0..n {
                slot_map.push(r.u64()? as usize);
            }
            let recovered = match r.u8()? {
                0 => None,
                1 => {
                    let len = r_count(&mut r, 1)?;
                    Some(r.take(len)?.to_vec())
                }
                _ => return Err(ProtocolError::BadPayload("bad recovered flag")),
            };
            Msg::Assignment {
                components,
                slot_map,
                recovered,
            }
        }
        TAG_START => Msg::Start,
        TAG_TUPLE_BATCH => {
            let dest_component = r_str(&mut r)?;
            let dest_task = r.u64()? as usize;
            let n = r_count(&mut r, 16)?;
            let mut tuples = Vec::with_capacity(n);
            for _ in 0..n {
                tuples.push(r_wire_tuple(&mut r)?);
            }
            Msg::TupleBatch {
                dest_component,
                dest_task,
                tuples,
            }
        }
        TAG_ACKER_BATCH => {
            let n = r_count(&mut r, 9)?;
            let mut msgs = Vec::with_capacity(n);
            for _ in 0..n {
                msgs.push(r_acker_msg(&mut r)?);
            }
            Msg::AckerBatch(msgs)
        }
        TAG_SPOUT_NOTIFY => {
            let global_slot = r.u64()? as usize;
            let kind = match r.u8()? {
                0 => NotifyKind::Ack,
                1 => NotifyKind::Fail,
                _ => return Err(ProtocolError::BadPayload("unknown notify kind")),
            };
            let n = r_count(&mut r, 8)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.u64()?);
            }
            Msg::SpoutNotify {
                global_slot,
                kind,
                ids,
            }
        }
        TAG_STATUS => Msg::Status {
            progress: r.u64()?,
            inflight: r.u64()? as i64,
            spouts_idle: r.u8()? != 0,
        },
        TAG_DRAIN_REQUEST => Msg::DrainRequest,
        TAG_DRAIN_REPORT => {
            let n = r_count(&mut r, 1)?;
            Msg::DrainReport(r.take(n)?.to_vec())
        }
        TAG_SHUTDOWN => Msg::Shutdown,
        TAG_METRICS => {
            let n = r_count(&mut r, 10)?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(r_sample(&mut r)?);
            }
            Msg::MetricsReport(samples)
        }
        TAG_COMMIT => {
            let n = r_count(&mut r, 1)?;
            Msg::OffsetCommit(r.take(n)?.to_vec())
        }
        other => return Err(ProtocolError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Reads only the destination component from a [`Msg::TupleBatch`] body,
/// so the supervisor can route the frame without decoding the tuples.
pub fn peek_tuple_batch_dest(body: &[u8]) -> Result<String, ProtocolError> {
    let mut r = Reader::new(body);
    r_str(&mut r)
}

/// Extracts the distinct anchor roots from a [`Msg::TupleBatch`] body.
/// Used on the fail-fast degradation path — when the destination
/// worker's lease is expired the supervisor fails every tree in the
/// batch at the acker instead of buffering toward a frozen socket. This
/// walks the whole body (anchors are interleaved per tuple), which is
/// fine: it only runs while a worker is down, never on the relay hot
/// path.
pub fn peek_tuple_batch_roots(body: &[u8]) -> Result<Vec<u64>, ProtocolError> {
    let mut r = Reader::new(body);
    let _dest = r_str(&mut r)?;
    let _task = r.u64()?;
    let n = r_count(&mut r, 16)?;
    let mut roots: Vec<u64> = Vec::new();
    for _ in 0..n {
        let t = r_wire_tuple(&mut r)?;
        for (root, _) in t.anchors {
            if !roots.contains(&root) {
                roots.push(root);
            }
        }
    }
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::split_frame;

    fn roundtrip(msg: &Msg) -> Msg {
        let mut buf = BytesMut::new();
        encode(&mut buf, 7, msg);
        let (id, tag, body) = split_frame(&mut buf).unwrap().unwrap();
        assert_eq!(id, 7);
        assert!(buf.is_empty(), "one frame per message");
        decode(tag, &body).unwrap()
    }

    #[test]
    fn control_frames_roundtrip() {
        match roundtrip(&Msg::Register {
            worker_id: 3,
            generation: 7,
        }) {
            Msg::Register {
                worker_id: 3,
                generation: 7,
            } => {}
            other => panic!("{other:?}"),
        }
        match roundtrip(&Msg::Assignment {
            components: vec!["spout".into(), "count".into()],
            slot_map: vec![2, 3],
            recovered: Some(vec![9, 9]),
        }) {
            Msg::Assignment {
                components,
                slot_map,
                recovered,
            } => {
                assert_eq!(components, vec!["spout", "count"]);
                assert_eq!(slot_map, vec![2, 3]);
                assert_eq!(recovered, Some(vec![9, 9]));
            }
            other => panic!("{other:?}"),
        }
        match roundtrip(&Msg::Assignment {
            components: vec![],
            slot_map: vec![],
            recovered: None,
        }) {
            Msg::Assignment {
                recovered: None, ..
            } => {}
            other => panic!("{other:?}"),
        }
        match roundtrip(&Msg::OffsetCommit(vec![4, 5])) {
            Msg::OffsetCommit(b) => assert_eq!(b, vec![4, 5]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(roundtrip(&Msg::Start), Msg::Start));
        assert!(matches!(roundtrip(&Msg::Shutdown), Msg::Shutdown));
        assert!(matches!(roundtrip(&Msg::DrainRequest), Msg::DrainRequest));
        match roundtrip(&Msg::DrainReport(vec![1, 2, 3])) {
            Msg::DrainReport(b) => assert_eq!(b, vec![1, 2, 3]),
            other => panic!("{other:?}"),
        }
        match roundtrip(&Msg::Status {
            progress: 42,
            inflight: -1,
            spouts_idle: true,
        }) {
            Msg::Status {
                progress: 42,
                inflight: -1,
                spouts_idle: true,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tuple_batch_roundtrips_and_peeks() {
        let t = WireTuple {
            stream: "default".into(),
            src_component: "spout".into(),
            src_task: 1,
            values: vec![
                Value::Null,
                Value::Bool(true),
                Value::I64(-5),
                Value::U64(9),
                Value::F64(1.5),
                Value::Str("hi".into()),
            ],
            anchors: vec![(10, 20), (30, 40)],
        };
        let msg = Msg::TupleBatch {
            dest_component: "count".into(),
            dest_task: 2,
            tuples: vec![t.clone()],
        };
        let mut buf = BytesMut::new();
        encode(&mut buf, 1, &msg);
        let (_, tag, body) = split_frame(&mut buf).unwrap().unwrap();
        assert_eq!(tag, TAG_TUPLE_BATCH);
        assert_eq!(peek_tuple_batch_dest(&body).unwrap(), "count");
        assert_eq!(
            peek_tuple_batch_roots(&body).unwrap(),
            vec![10, 30],
            "distinct anchor roots, in first-seen order"
        );
        match decode(tag, &body).unwrap() {
            Msg::TupleBatch {
                dest_component,
                dest_task,
                tuples,
            } => {
                assert_eq!(dest_component, "count");
                assert_eq!(dest_task, 2);
                assert_eq!(tuples, vec![t]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn acker_batch_roundtrips() {
        let msg = Msg::AckerBatch(vec![
            AckerMsg::Init {
                root: 1,
                xor: 2,
                slot: 3,
                msg_id: 4,
                emit_ms: 5,
            },
            AckerMsg::InitBatch(vec![InitEntry {
                root: 6,
                xor: 7,
                slot: 8,
                msg_id: 9,
                emit_ms: 10,
            }]),
            AckerMsg::Xor { root: 11, xor: 12 },
            AckerMsg::XorBatch(vec![(13, 14), (15, 16)]),
            AckerMsg::Fail { root: 17 },
        ]);
        match roundtrip(&msg) {
            Msg::AckerBatch(msgs) => {
                assert_eq!(msgs.len(), 5);
                assert!(matches!(
                    msgs[0],
                    AckerMsg::Init {
                        root: 1,
                        xor: 2,
                        slot: 3,
                        msg_id: 4,
                        emit_ms: 5
                    }
                ));
                match &msgs[1] {
                    AckerMsg::InitBatch(inits) => {
                        assert_eq!(inits.len(), 1);
                        assert_eq!(inits[0].root, 6);
                        assert_eq!(inits[0].emit_ms, 10);
                    }
                    other => panic!("{other:?}"),
                }
                assert!(matches!(msgs[2], AckerMsg::Xor { root: 11, xor: 12 }));
                match &msgs[3] {
                    AckerMsg::XorBatch(p) => assert_eq!(p, &vec![(13, 14), (15, 16)]),
                    other => panic!("{other:?}"),
                }
                assert!(matches!(msgs[4], AckerMsg::Fail { root: 17 }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spout_notify_roundtrips() {
        match roundtrip(&Msg::SpoutNotify {
            global_slot: 2,
            kind: NotifyKind::Fail,
            ids: vec![100, 200],
        }) {
            Msg::SpoutNotify {
                global_slot,
                kind,
                ids,
            } => {
                assert_eq!(global_slot, 2);
                assert_eq!(kind, NotifyKind::Fail);
                assert_eq!(ids, vec![100, 200]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_report_roundtrips_histograms() {
        let reg = obs::Registry::new();
        reg.counter("c_total", &[("w", "1")], "c").add(3);
        let h = reg.histogram_nanos("lat", &[], "lat");
        h.record_nanos(1_000);
        h.record_nanos(2_000_000);
        match roundtrip(&Msg::MetricsReport(reg.export())) {
            Msg::MetricsReport(samples) => {
                assert_eq!(samples.len(), 2);
                assert!(matches!(samples[0].kind, SampleKind::Counter(3)));
                match &samples[1].kind {
                    SampleKind::Histogram { snapshot, is_nanos } => {
                        assert!(*is_nanos);
                        assert_eq!(snapshot.count(), 2);
                        assert_eq!(
                            snapshot.sum_nanos(),
                            reg.histogram_snapshot("lat", &[]).unwrap().sum_nanos()
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_bodies_error_without_panic() {
        for tag in [
            TAG_REGISTER,
            TAG_ASSIGNMENT,
            TAG_TUPLE_BATCH,
            TAG_ACKER_BATCH,
            TAG_SPOUT_NOTIFY,
            TAG_STATUS,
            TAG_DRAIN_REPORT,
            TAG_METRICS,
            0x77,
        ] {
            let _ = decode(tag, &[0xFF; 5]);
            let _ = decode(tag, &[]);
        }
    }
}
