#![warn(missing_docs)]
//! # tcluster — multi-process cluster runtime for tstorm topologies
//!
//! TencentRec runs its Storm topologies across worker processes on many
//! machines; `tstorm` alone runs everything in one process. This crate
//! closes the gap with a **supervisor** process that
//!
//! * spawns N **worker** OS processes (re-executing the current binary
//!   with `TCLUSTER_ROLE=worker`), each running a *slice* of the topology
//!   through [`tstorm::topology::Topology::launch_slice`];
//! * relays tuples between workers over length-prefixed TCP (the shared
//!   [`wire`] framing, batched end to end) in a hub-and-spoke layout —
//!   workers connect only to the supervisor;
//! * hosts the one global XOR acker, so tuple trees span processes: an
//!   edge lost on the wire (or in a dead worker) is an edge never acked,
//!   the tree times out, and the owning spout replays it;
//! * stores each worker's periodic offset commits and hands them back on
//!   respawn, bounding replay after a crash to the uncommitted tail;
//! * restarts dead workers with their original assignment and merges
//!   worker metrics into one cluster-wide scrape ([`obs::ClusterScrape`]).
//!
//! ## Process model
//!
//! Every process — supervisor and workers alike — runs the same app
//! builder, which constructs the **full** [`tstorm`] topology plus any
//! app state (stores, consumers). Placement is component-granular: all
//! tasks of a component live on one worker, so fields groupings keep
//! their key→task contract with no cross-process coordination. The
//! binary's `main` calls [`worker::maybe_run_worker`] first; in a worker
//! process it never returns, in the parent it returns `false` and the
//! caller proceeds to [`supervisor::Cluster::launch`].

pub mod protocol;
pub mod supervisor;
pub mod worker;

pub use supervisor::{Cluster, SupervisorConfig, WorkerSpec};
pub use worker::maybe_run_worker;

use std::sync::Arc;
use tstorm::topology::Topology;

/// Environment variable selecting worker mode (`"worker"`).
pub const ENV_ROLE: &str = "TCLUSTER_ROLE";
/// Environment variable carrying the supervisor's `host:port`.
pub const ENV_SUPERVISOR: &str = "TCLUSTER_SUPERVISOR";
/// Environment variable carrying the worker's index.
pub const ENV_WORKER_ID: &str = "TCLUSTER_WORKER_ID";
/// Environment variable carrying the worker incarnation's generation.
/// The supervisor bumps it before every respawn and fences frames from
/// older generations, so a zombie predecessor (e.g. a SIGSTOPped worker
/// that wakes after its replacement registered) can never double-emit
/// into the data plane. Absent (first manual launch) means generation 1.
pub const ENV_GENERATION: &str = "TCLUSTER_GENERATION";

/// Everything this process knows about its place in the cluster when the
/// app builder runs.
#[derive(Debug, Clone)]
pub struct WorkerContext {
    /// This worker's index into [`SupervisorConfig::workers`], or
    /// [`u32::MAX`] when the supervisor builds the app once for topology
    /// introspection (component names and parallelism only — the
    /// introspection instance is never launched).
    pub worker_id: u32,
    /// The last offset-commit blob a previous incarnation of this worker
    /// shipped (see [`ClusterApp::commit`]); `None` on first launch. A
    /// respawned worker seeks its consumers here so replay covers only
    /// the uncommitted tail instead of the whole topic.
    pub recovered: Option<Vec<u8>>,
}

impl WorkerContext {
    /// True when this is the supervisor's introspection build, which is
    /// only inspected for topology shape and never launched.
    pub fn is_probe(&self) -> bool {
        self.worker_id == u32::MAX
    }
}

/// What the app builder returns: the full topology plus the hooks the
/// cluster runtime drives on the app's behalf.
pub struct ClusterApp {
    /// The complete topology. Workers launch only their assigned slice;
    /// the supervisor's probe instance is inspected and dropped.
    pub topology: Topology,
    /// App-defined progress probe reported in status frames (e.g. source
    /// records durably committed). `None` reports 0.
    pub progress: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
    /// Serializes app state for the supervisor's drain protocol (e.g. the
    /// store contents a convergence test compares). `None` reports empty.
    pub drain: Option<Arc<dyn Fn() -> Vec<u8> + Send + Sync>>,
    /// Serializes the worker's durable resume point (e.g. an
    /// [`tstorm`]-external consumer's committed offsets). Shipped to the
    /// supervisor periodically; the latest blob comes back as
    /// [`WorkerContext::recovered`] after a restart.
    pub commit: Option<Arc<dyn Fn() -> Vec<u8> + Send + Sync>>,
    /// Periodic checkpoint hook, invoked by the worker runtime every
    /// [`ClusterApp::checkpoint_every`] with this slice's running
    /// [`tstorm::TopologyHandle`]. A state-owning worker passes a closure
    /// that drives a `ckpt` coordinator (`with_barrier` capture + durable
    /// publish); on respawn the app restores its store from the newest
    /// snapshot and seeks the spouts to the sealed offset vector instead
    /// of replaying the topic from zero. `None` disables checkpointing.
    #[allow(clippy::type_complexity)]
    pub checkpoint: Option<Arc<dyn Fn(&tstorm::TopologyHandle) + Send + Sync>>,
    /// Cadence of the [`ClusterApp::checkpoint`] hook.
    pub checkpoint_every: std::time::Duration,
    /// App-owned metric registries to export alongside the topology's
    /// own registry in the worker's periodic metrics reports.
    pub registries: Vec<obs::Registry>,
}

impl ClusterApp {
    /// An app with no hooks: just the topology.
    pub fn new(topology: Topology) -> Self {
        ClusterApp {
            topology,
            progress: None,
            drain: None,
            commit: None,
            checkpoint: None,
            checkpoint_every: std::time::Duration::from_millis(500),
            registries: Vec::new(),
        }
    }
}
