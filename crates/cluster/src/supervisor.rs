//! Supervisor process: spawns worker processes, relays tuples between
//! them, hosts the cluster's one global XOR acker, and restarts workers
//! that die.
//!
//! Topology: hub-and-spoke. Workers connect only to the supervisor; a
//! tuple crossing worker boundaries makes exactly one relay hop. The
//! supervisor never decodes relayed tuple payloads — it peeks the
//! destination component off the frame head and re-frames the body
//! verbatim ([`crate::protocol::peek_tuple_batch_dest`]).
//!
//! Fail-over sequence when a worker dies (or is chaos-killed):
//! 1. the monitor thread reaps the child and respawns it with the *same*
//!    assignment (sticky placement — fields groupings keep their key→task
//!    contract);
//! 2. the respawned worker's [`crate::protocol::Msg::Assignment`] carries
//!    the last offset-commit blob the dead incarnation shipped, so its
//!    spouts resume from the committed frontier instead of offset 0;
//! 3. every tuple tree with an edge lost in the dead worker is never
//!    fully acked, times out at the global acker, and is replayed by the
//!    owning spout — downstream dedup absorbs the re-delivered prefix.
//!
//! # tguard: gray failures, leases, and generation fencing
//!
//! Process death is the *easy* failure — `try_wait` reports it. The hard
//! one is a worker that is alive but useless: SIGSTOPped, livelocked,
//! paging. Its socket stays open (so nothing errors), it stops
//! heartbeating (so nothing progresses), and without intervention the
//! topology wedges forever. The monitor therefore also runs a **lease**
//! over the worker's periodic status frames: a registered, started
//! worker whose last status is older than
//! [`SupervisorConfig::lease_timeout`] is treated exactly like a dead
//! one — SIGCONT (so a stopped process can die), SIGKILL, reap, respawn
//! with offset-commit recovery.
//!
//! Because a stalled worker is killed while *alive*, there is a window
//! where the old incarnation can wake and race its replacement. Every
//! incarnation therefore carries a monotonically increasing
//! **generation** (stamped into its environment at spawn, echoed as the
//! wire id of every worker→supervisor frame): the supervisor bumps the
//! slot's generation *before* touching the process, and drops any frame
//! or registration whose generation is stale. Dropping is safe — the
//! acker replays whatever the zombie was mid-delivering.
//!
//! While a worker's lease is expired, tuple batches routed to it are
//! **failed fast** at the global acker instead of buffered toward a
//! frozen socket: the owning spouts replay them once the respawned
//! incarnation registers. All of it is observable: `tcluster_lease_expired`,
//! `tcluster_worker_generation`, `tcluster_fenced_frames`, and
//! `tcluster_relay_failed_fast` in [`Cluster::render_metrics`].

use crate::protocol::{self, Msg, NotifyKind, TAG_TUPLE_BATCH};
use crate::{ClusterApp, WorkerContext, ENV_GENERATION, ENV_ROLE, ENV_SUPERVISOR, ENV_WORKER_ID};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Sender};
use obs::{ClusterScrape, Counter, Gauge, LatencyHistogram, Registry};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use tchaos::{Clock, FaultPlan, FaultSite};
use tstorm::ack::{run_acker, AckerMsg, SpoutMsg};
use tstorm::cluster::Nimbus;
use wire::{split_frame, with_frame};

/// One worker process: which components it runs and whether chaos may
/// kill it.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Components whose tasks run in this worker. Placement is
    /// component-granular; each component must appear in exactly one
    /// worker's list.
    pub components: Vec<String>,
    /// Whether [`tchaos::FaultSite::WorkerKill`] may target this worker.
    /// Protect workers owning in-process state that a kill would erase
    /// (stores live in worker memory, not a shared service).
    pub kill_eligible: bool,
}

impl WorkerSpec {
    /// A kill-eligible worker running `components`.
    pub fn new<I, S>(components: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        WorkerSpec {
            components: components.into_iter().map(Into::into).collect(),
            kill_eligible: true,
        }
    }

    /// A worker chaos must not kill.
    pub fn protected<I, S>(components: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        WorkerSpec {
            kill_eligible: false,
            ..Self::new(components)
        }
    }
}

/// Cluster-wide launch parameters.
#[derive(Clone)]
pub struct SupervisorConfig {
    /// The worker processes to spawn, indexed by worker id.
    pub workers: Vec<WorkerSpec>,
    /// Fault plan driving [`tchaos::FaultSite::WorkerKill`] (drawn per
    /// status frame from kill-eligible workers) and
    /// [`tchaos::FaultSite::LinkPartition`] (drawn per relayed tuple
    /// batch).
    pub fault_plan: FaultPlan,
    /// Tree timeout at the global acker; trees pending longer than this
    /// are failed back to their spout for replay.
    pub message_timeout: Duration,
    /// Extra argv passed to re-executions of the current binary. Test
    /// harnesses pass `["--exact", "<test_fn>", "--nocapture"]` so the
    /// respawned test binary reaches the same test body.
    pub spawn_args: Vec<String>,
    /// Address the hub socket binds to. Defaults to `127.0.0.1:0`
    /// (loopback, ephemeral port). Bind `0.0.0.0:<port>` to accept
    /// workers from other machines; an unspecified IP is advertised to
    /// locally spawned workers as loopback, since `0.0.0.0` itself is not
    /// connectable.
    pub bind_addr: SocketAddr,
    /// Worker lease: a started worker whose last status frame is older
    /// than this is declared failed even though its process is alive
    /// (SIGSTOP, livelock), and is killed + respawned like a dead one.
    /// Must be a comfortable multiple of the worker's ~50 ms status
    /// cadence so scheduler hiccups and sporadic
    /// [`tchaos::FaultSite::HeartbeatDrop`] losses don't expire healthy
    /// workers. A spurious expiry is a wasted respawn, not data loss.
    pub lease_timeout: Duration,
}

impl SupervisorConfig {
    /// Defaults: no faults, 5 s tree timeout, no extra argv, loopback
    /// ephemeral bind, 2 s worker lease.
    pub fn new(workers: Vec<WorkerSpec>) -> Self {
        SupervisorConfig {
            workers,
            fault_plan: FaultPlan::none(),
            message_timeout: Duration::from_secs(5),
            spawn_args: Vec::new(),
            bind_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            lease_timeout: Duration::from_secs(2),
        }
    }
}

/// Write timeout on every supervisor→worker mailbox. A SIGSTOPped worker
/// stops draining its socket; once the kernel buffer fills, an unbounded
/// `write_all` would wedge the relay and notify threads behind the one
/// frozen peer for as long as the stall lasts. A timed-out write may
/// leave a partial frame on the wire, so the stream is condemned
/// (shutdown + mailbox cleared) — the worker re-dials for a clean one.
const MAILBOX_WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Latest health report from one worker.
#[derive(Debug, Default, Clone)]
struct WorkerState {
    progress: u64,
    inflight: i64,
    spouts_idle: bool,
    last_status: Option<Instant>,
    drain: Option<Vec<u8>>,
}

/// `(components, spout slot_map)` for one worker.
type Assignment = (Vec<String>, Vec<usize>);

struct Shared {
    mailboxes: Vec<Mutex<Option<TcpStream>>>,
    state: Mutex<Vec<WorkerState>>,
    commits: Mutex<Vec<Option<Vec<u8>>>>,
    scrape: Mutex<ClusterScrape>,
    children: Mutex<Vec<Option<Child>>>,
    registered: Mutex<Vec<bool>>,
    shutting_down: AtomicBool,
    started: AtomicBool,
    relayed: AtomicU64,
    dropped: AtomicU64,
    restarts: AtomicU64,
    assignments: Vec<Assignment>,
    comp_to_worker: HashMap<String, usize>,
    kill_eligible: Vec<bool>,
    acker_tx: Sender<AckerMsg>,
    pending: Arc<AtomicI64>,
    plan: FaultPlan,
    /// Latest spawned generation per worker slot. Bumped *before* the old
    /// incarnation is touched, so its frames are stale the moment the
    /// respawn decision is made. Frames and registrations carrying any
    /// other generation are fenced.
    generations: Vec<AtomicU64>,
    /// True from lease expiry until the replacement incarnation
    /// registers; tuple batches routed to a down worker are failed fast
    /// at the acker instead of buffered.
    lease_down: Vec<AtomicBool>,
    lease_timeout: Duration,
    /// Supervisor-side tguard metrics, appended to the cluster scrape.
    registry: Registry,
    lease_expired: Vec<Counter>,
    gen_gauges: Vec<Gauge>,
    fenced: Counter,
    failed_fast: Counter,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

/// Writes `buf` into `mailbox`, condemning the stream on failure: a
/// failed (or timed-out) `write_all` may have left a partial frame on
/// the wire, after which nothing further can be framed on it. Shutdown
/// wakes the worker's read loop (EOF) so it re-dials cleanly; replay
/// re-delivers whatever the lost frames carried.
fn write_or_condemn(mailbox: &mut Option<TcpStream>, buf: &[u8]) {
    if let Some(stream) = mailbox.as_mut() {
        if stream.write_all(buf).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            *mailbox = None;
        }
    }
}

/// Encodes and writes one frame to worker `w`'s current connection.
/// Errors condemn the mailbox (see [`write_or_condemn`]); the replay
/// machinery, not the transport, owns recovery of the lost frame.
fn send_to(shared: &Shared, w: usize, msg: &Msg) {
    let mut buf = BytesMut::new();
    protocol::encode(&mut buf, 0, msg);
    write_or_condemn(&mut lock(&shared.mailboxes[w]), &buf);
}

fn spawn_worker(
    addr: &SocketAddr,
    w: usize,
    generation: u64,
    spawn_args: &[String],
) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    Command::new(exe)
        .args(spawn_args)
        .env(ENV_ROLE, "worker")
        .env(ENV_SUPERVISOR, addr.to_string())
        .env(ENV_WORKER_ID, w.to_string())
        .env(ENV_GENERATION, generation.to_string())
        .spawn()
}

fn kill_child(shared: &Shared, w: usize) {
    if let Some(child) = lock(&shared.children)[w].as_mut() {
        let _ = child.kill();
    }
}

/// Sends `signal` ("STOP", "CONT", ...) to worker `w`'s process via the
/// system `kill` utility — the workspace vendors no libc bindings, and a
/// shelled-out signal is plenty at chaos/monitor cadence. The pid is
/// copied out first so no lock is held across the subprocess.
fn signal_child(shared: &Shared, w: usize, signal: &str) {
    let pid = lock(&shared.children)[w].as_ref().map(|c| c.id());
    if let Some(pid) = pid {
        let _ = Command::new("kill")
            .arg(format!("-{signal}"))
            .arg(pid.to_string())
            .status();
    }
}

/// Handles one decoded-or-relayed frame from registered worker `w`.
fn handle_frame(shared: &Shared, w: usize, id: u64, tag: u8, body: &[u8]) {
    // Generation fence: every worker→supervisor frame echoes its
    // incarnation's generation as the wire id. A stale generation means
    // a zombie predecessor racing its replacement (e.g. a SIGSTOPped
    // worker waking after the lease respawned it); its frames are
    // dropped whole. Safe by the acker-replay contract: any tree the
    // zombie was mid-delivering never completes and is replayed through
    // the live incarnation.
    if id != shared.generations[w].load(Ordering::SeqCst) {
        shared.fenced.inc();
        return;
    }
    if tag == TAG_TUPLE_BATCH {
        let Ok(dest) = protocol::peek_tuple_batch_dest(body) else {
            return;
        };
        let Some(&dest_worker) = shared.comp_to_worker.get(&dest) else {
            return;
        };
        shared.relayed.fetch_add(1, Ordering::Relaxed);
        if shared.plan.should_fault(FaultSite::LinkPartition) {
            // Dropped on the (simulated) wire: every tree in the batch
            // times out at the acker and replays from its spout.
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if shared.lease_down[dest_worker].load(Ordering::SeqCst) {
            // Graceful degradation: the destination's lease is expired,
            // so its socket is a black hole. Fail every tree in the
            // batch *now* — the spouts replay them once the respawned
            // worker registers — instead of buffering unboundedly (or
            // waiting out the full tree timeout) toward a frozen peer.
            shared.failed_fast.inc();
            if let Ok(roots) = protocol::peek_tuple_batch_roots(body) {
                for root in roots {
                    let _ = shared.acker_tx.send(AckerMsg::Fail { root });
                }
            }
            return;
        }
        let mut out = BytesMut::with_capacity(body.len() + 16);
        with_frame(&mut out, id, TAG_TUPLE_BATCH, |b| b.extend_from_slice(body));
        write_or_condemn(&mut lock(&shared.mailboxes[dest_worker]), &out);
        return;
    }
    let Ok(msg) = protocol::decode(tag, body) else {
        return;
    };
    match msg {
        Msg::AckerBatch(msgs) => {
            for m in msgs {
                if !matches!(m, AckerMsg::Shutdown) {
                    let _ = shared.acker_tx.send(m);
                }
            }
        }
        Msg::Status {
            progress,
            inflight,
            spouts_idle,
        } => {
            if shared.plan.should_fault(FaultSite::HeartbeatDrop) {
                // Heartbeat lost on the (simulated) wire: the lease
                // clock keeps running against the previous status.
                return;
            }
            {
                let mut st = lock(&shared.state);
                st[w].progress = progress;
                st[w].inflight = inflight;
                st[w].spouts_idle = spouts_idle;
                st[w].last_status = Some(Instant::now());
            }
            if shared.kill_eligible[w]
                && shared.started.load(Ordering::SeqCst)
                && !shared.shutting_down.load(Ordering::SeqCst)
            {
                if shared.plan.should_fault(FaultSite::WorkerKill) {
                    kill_child(shared, w);
                } else if shared.plan.should_fault(FaultSite::WorkerStall) {
                    // Real SIGSTOP: the gray failure WorkerKill can't
                    // produce. Only the lease detector can recover it.
                    signal_child(shared, w, "STOP");
                }
            }
        }
        Msg::DrainReport(bytes) => lock(&shared.state)[w].drain = Some(bytes),
        Msg::MetricsReport(samples) => lock(&shared.scrape).ingest(&format!("w{w}"), samples),
        Msg::OffsetCommit(bytes) => lock(&shared.commits)[w] = Some(bytes),
        // Supervisor-bound traffic only.
        _ => {}
    }
}

/// Per-connection reader: waits for `Register`, installs the mailbox,
/// ships the assignment (plus any recovered commit blob), then pumps
/// frames until the socket closes.
fn serve_conn(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // The write half of this stream becomes the worker's mailbox; bound
    // every write so a frozen peer can't wedge the relay threads.
    let _ = stream.set_write_timeout(Some(MAILBOX_WRITE_TIMEOUT));
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let n = shared.mailboxes.len();
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = vec![0u8; 64 * 1024];
    let mut worker: Option<usize> = None;
    loop {
        loop {
            let (id, tag, body) = match split_frame(&mut buf) {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => return,
            };
            match worker {
                Some(w) => handle_frame(&shared, w, id, tag, &body),
                None => {
                    let Ok(Msg::Register {
                        worker_id,
                        generation,
                    }) = protocol::decode(tag, &body)
                    else {
                        return;
                    };
                    let w = worker_id as usize;
                    if w >= n {
                        return;
                    }
                    // Registration fence: only the latest spawned
                    // incarnation may claim the slot. A same-generation
                    // re-register is a legal reconnect (the worker
                    // re-dialed after a condemned stream); a stale one is
                    // a zombie predecessor and is told to exit.
                    if generation != shared.generations[w].load(Ordering::SeqCst) {
                        shared.fenced.inc();
                        let mut out = BytesMut::new();
                        protocol::encode(&mut out, 0, &Msg::Shutdown);
                        let _ = (&stream).write_all(&out);
                        return;
                    }
                    worker = Some(w);
                    *lock(&shared.mailboxes[w]) = stream.try_clone().ok();
                    // The replacement incarnation is reachable again:
                    // stop failing fast toward this slot.
                    shared.lease_down[w].store(false, Ordering::SeqCst);
                    // A re-registering (respawned) worker starts from a
                    // blank health record so wait_idle never trusts the
                    // dead incarnation's last report.
                    lock(&shared.state)[w] = WorkerState::default();
                    let (components, slot_map) = shared.assignments[w].clone();
                    let recovered = lock(&shared.commits)[w].clone();
                    send_to(
                        &shared,
                        w,
                        &Msg::Assignment {
                            components,
                            slot_map,
                            recovered,
                        },
                    );
                    let all = {
                        let mut reg = lock(&shared.registered);
                        reg[w] = true;
                        reg.iter().all(|r| *r)
                    };
                    if shared.started.load(Ordering::SeqCst) {
                        send_to(&shared, w, &Msg::Start);
                    } else if all && !shared.started.swap(true, Ordering::SeqCst) {
                        // First time everyone is connected: every mailbox
                        // is installed, so no worker can emit toward a
                        // peer the supervisor cannot reach yet.
                        for i in 0..n {
                            send_to(&shared, i, &Msg::Start);
                        }
                    }
                }
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(nread) => buf.extend_from_slice(&chunk[..nread]),
        }
    }
}

/// Reaps dead workers, expires the leases of stalled ones, and respawns
/// either kind with its original assignment (sticky placement + offset
/// commit recovery).
///
/// The lease arms only once a worker has heartbeated at least once while
/// the topology is started, and only while its lease is not already
/// expired — so a slow process launch can't be declared stalled, and one
/// expiry produces one respawn.
fn monitor_loop(shared: Arc<Shared>, addr: SocketAddr, spawn_args: Vec<String>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        for w in 0..shared.mailboxes.len() {
            let dead = match &mut lock(&shared.children)[w] {
                Some(c) => matches!(c.try_wait(), Ok(Some(_))),
                None => false,
            };
            let lease_expired = !dead
                && !shared.lease_down[w].load(Ordering::SeqCst)
                && shared.started.load(Ordering::SeqCst)
                && lock(&shared.state)[w]
                    .last_status
                    .is_some_and(|t| t.elapsed() > shared.lease_timeout);
            if (!dead && !lease_expired) || shared.shutting_down.load(Ordering::SeqCst) {
                continue;
            }
            // Bump the generation *before* touching the process: from
            // this instant every frame of the old incarnation is stale,
            // even if a SIGSTOPped zombie wakes mid-kill and flushes.
            let gen = shared.generations[w].fetch_add(1, Ordering::SeqCst) + 1;
            shared.gen_gauges[w].set(gen as f64);
            if lease_expired {
                shared.lease_expired[w].inc();
                shared.lease_down[w].store(true, Ordering::SeqCst);
                // A stopped process queues SIGTERM-class signals until it
                // resumes; SIGCONT first deliberately opens the zombie
                // window the generation fence must close. (SIGKILL alone
                // would work on a stopped process — the CONT keeps the
                // race honest.)
                signal_child(&shared, w, "CONT");
            }
            {
                let mut children = lock(&shared.children);
                if let Some(c) = children[w].as_mut() {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                lock(&shared.state)[w] = WorkerState::default();
                children[w] = spawn_worker(&addr, w, gen, &spawn_args).ok();
                if children[w].is_some() {
                    shared.restarts.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
}

/// A running cluster: the supervisor-side handle over N worker
/// processes. Dropping without [`Cluster::shutdown`] leaves children
/// running; always shut down.
pub struct Cluster {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acker: JoinHandle<()>,
    accept: JoinHandle<()>,
    monitor: JoinHandle<()>,
    n: usize,
}

impl Cluster {
    /// Validates placement, binds the hub socket, starts the global
    /// acker, and spawns one worker process per [`WorkerSpec`] by
    /// re-executing the current binary.
    ///
    /// `build` is invoked once here with a probe context
    /// ([`WorkerContext::is_probe`]) purely to learn the topology's
    /// component names, parallelism, and spout order; the probe app is
    /// dropped unlaunched. Worker processes call the same builder through
    /// [`crate::maybe_run_worker`].
    pub fn launch(
        config: SupervisorConfig,
        build: impl Fn(&WorkerContext) -> ClusterApp,
    ) -> io::Result<Cluster> {
        let n = config.workers.len();
        if n == 0 {
            return Err(invalid("cluster needs at least one worker"));
        }
        let probe = build(&WorkerContext {
            worker_id: u32::MAX,
            recovered: None,
        });
        let infos = probe.topology.components();
        drop(probe);

        let mut comp_to_worker = HashMap::new();
        for (w, spec) in config.workers.iter().enumerate() {
            for c in &spec.components {
                if comp_to_worker.insert(c.clone(), w).is_some() {
                    return Err(invalid(format!("component {c:?} assigned to two workers")));
                }
            }
        }
        let known: HashSet<&str> = infos.iter().map(|i| i.name.as_str()).collect();
        for spec in &config.workers {
            for c in &spec.components {
                if !known.contains(c.as_str()) {
                    return Err(invalid(format!("unknown component {c:?} in worker spec")));
                }
            }
        }
        for info in &infos {
            if !comp_to_worker.contains_key(&info.name) {
                return Err(invalid(format!("component {:?} not placed", info.name)));
            }
        }

        // Nimbus validates that the declared worker slots can hold every
        // task of the submitted topology (the paper's Fig. 1 scheduler).
        // Placement itself stays sticky/component-granular above; Nimbus
        // task-level reassignment is exercised in its own unit tests.
        let mut nimbus = Nimbus::new();
        for (w, spec) in config.workers.iter().enumerate() {
            let slots: usize = spec
                .components
                .iter()
                .filter_map(|c| infos.iter().find(|i| &i.name == c))
                .map(|i| i.parallelism)
                .sum();
            nimbus.add_supervisor(w as u32, slots);
        }
        nimbus
            .submit_topology(infos.iter().map(|i| (i.name.clone(), i.parallelism)))
            .map_err(|e| invalid(format!("placement infeasible: {e:?}")))?;
        nimbus.check_invariants().map_err(invalid)?;

        // Global spout slots: spouts in topology definition order, one
        // slot per task, owner = the worker running the component.
        let mut slot_owner = Vec::new();
        let mut per_worker_slots = vec![Vec::new(); n];
        for info in infos.iter().filter(|i| i.is_spout) {
            let w = comp_to_worker[&info.name];
            for _ in 0..info.parallelism {
                per_worker_slots[w].push(slot_owner.len());
                slot_owner.push(w);
            }
        }
        let assignments: Vec<Assignment> = config
            .workers
            .iter()
            .zip(per_worker_slots)
            .map(|(spec, slots)| (spec.components.clone(), slots))
            .collect();

        let listener = TcpListener::bind(config.bind_addr)?;
        let mut addr = listener.local_addr()?;
        // A wildcard bind (0.0.0.0 / ::) accepts from any interface but is
        // not itself connectable; advertise loopback with the bound port
        // to the workers this supervisor spawns locally.
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let (acker_tx, acker_rx) = unbounded();
        let pending = Arc::new(AtomicI64::new(0));
        let registry = Registry::new();
        let fenced = registry.counter(
            "tcluster_fenced_frames",
            &[],
            "frames and registrations rejected for carrying a stale worker generation",
        );
        let failed_fast = registry.counter(
            "tcluster_relay_failed_fast",
            &[],
            "tuple batches failed at the acker because the destination worker's lease was down",
        );
        let mut lease_expired = Vec::with_capacity(n);
        let mut gen_gauges = Vec::with_capacity(n);
        for w in 0..n {
            let label = format!("w{w}");
            lease_expired.push(registry.counter(
                "tcluster_lease_expired",
                &[("worker", &label)],
                "lease expiries: the worker was alive but stopped heartbeating",
            ));
            let g = registry.gauge(
                "tcluster_worker_generation",
                &[("worker", &label)],
                "current incarnation generation of the worker slot",
            );
            g.set(1.0);
            gen_gauges.push(g);
        }
        let shared = Arc::new(Shared {
            mailboxes: (0..n).map(|_| Mutex::new(None)).collect(),
            state: Mutex::new(vec![WorkerState::default(); n]),
            commits: Mutex::new(vec![None; n]),
            scrape: Mutex::new(ClusterScrape::new()),
            children: Mutex::new((0..n).map(|_| None).collect()),
            registered: Mutex::new(vec![false; n]),
            shutting_down: AtomicBool::new(false),
            started: AtomicBool::new(false),
            relayed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            assignments,
            comp_to_worker,
            kill_eligible: config.workers.iter().map(|s| s.kill_eligible).collect(),
            acker_tx,
            pending: Arc::clone(&pending),
            plan: config.fault_plan.clone(),
            generations: (0..n).map(|_| AtomicU64::new(1)).collect(),
            lease_down: (0..n).map(|_| AtomicBool::new(false)).collect(),
            lease_timeout: config.lease_timeout,
            registry,
            lease_expired,
            gen_gauges,
            fenced,
            failed_fast,
        });

        // Per-slot notification forwarders: the global acker's spout
        // channels terminate here and turn into SpoutNotify frames for
        // whichever worker owns the slot. They exit when run_acker
        // returns and drops the senders.
        let mut spout_txs = Vec::with_capacity(slot_owner.len());
        for (slot, &owner) in slot_owner.iter().enumerate() {
            let (tx, rx) = unbounded::<SpoutMsg>();
            spout_txs.push(tx);
            let sh = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("tcluster-notify-{slot}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        let (kind, ids) = match msg {
                            SpoutMsg::Ack(id) => (NotifyKind::Ack, vec![id]),
                            SpoutMsg::AckBatch(ids) => (NotifyKind::Ack, ids),
                            SpoutMsg::Fail(id) => (NotifyKind::Fail, vec![id]),
                            // Lifecycle messages are meaningful only to
                            // in-process spouts; worker lifecycle is the
                            // Shutdown frame's job.
                            SpoutMsg::Deactivate | SpoutMsg::Activate | SpoutMsg::Shutdown => {
                                continue
                            }
                        };
                        send_to(
                            &sh,
                            owner,
                            &Msg::SpoutNotify {
                                global_slot: slot,
                                kind,
                                ids,
                            },
                        );
                    }
                })
                .map_err(|e| invalid(format!("spawn notify forwarder: {e}")))?;
        }
        let timeout = config.message_timeout;
        let acker_pending = Arc::clone(&pending);
        let acker = thread::Builder::new()
            .name("tcluster-acker".into())
            .spawn(move || {
                run_acker(
                    acker_rx,
                    spout_txs,
                    timeout,
                    acker_pending,
                    Clock::system(),
                    Arc::new(LatencyHistogram::new()),
                );
            })?;

        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("tcluster-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let sh = Arc::clone(&accept_shared);
                    let _ = thread::Builder::new()
                        .name("tcluster-conn".into())
                        .spawn(move || serve_conn(sh, stream));
                }
            })?;

        for w in 0..n {
            match spawn_worker(&addr, w, 1, &config.spawn_args) {
                Ok(child) => lock(&shared.children)[w] = Some(child),
                Err(e) => {
                    shared.shutting_down.store(true, Ordering::SeqCst);
                    for c in lock(&shared.children).iter_mut().flatten() {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    let _ = shared.acker_tx.send(AckerMsg::Shutdown);
                    let _ = TcpStream::connect(addr);
                    let _ = acker.join();
                    let _ = accept.join();
                    return Err(e);
                }
            }
        }

        let monitor_shared = Arc::clone(&shared);
        let spawn_args = config.spawn_args.clone();
        let monitor = thread::Builder::new()
            .name("tcluster-monitor".into())
            .spawn(move || monitor_loop(monitor_shared, addr, spawn_args))?;

        Ok(Cluster {
            shared,
            addr,
            acker,
            accept,
            monitor,
            n,
        })
    }

    /// The address advertised to workers (the bound address, with a
    /// wildcard IP rewritten to loopback).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Latest progress value reported by worker `w`'s status frames.
    pub fn progress(&self, w: usize) -> u64 {
        lock(&self.shared.state)[w].progress
    }

    /// How many worker respawns the monitor has performed.
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::SeqCst)
    }

    /// Tuple-batch frames relayed between workers (including dropped).
    pub fn relayed_batches(&self) -> u64 {
        self.shared.relayed.load(Ordering::Relaxed)
    }

    /// Tuple-batch frames dropped by [`tchaos::FaultSite::LinkPartition`].
    pub fn dropped_batches(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Tuple trees currently pending at the global acker.
    pub fn pending_trees(&self) -> i64 {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// The fault plan this cluster is running under (for `fired` counts).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.shared.plan
    }

    /// Kills worker `w`'s process (SIGKILL — no drop handlers run). The
    /// monitor respawns it with the same assignment; pair with
    /// [`Cluster::wait_idle`] to observe recovery.
    pub fn kill_worker(&self, w: usize) {
        kill_child(&self.shared, w);
    }

    /// SIGSTOPs worker `w`: a gray failure. The process stays alive (so
    /// reaping never fires) but stops heartbeating; only the lease
    /// detector recovers it.
    pub fn stall_worker(&self, w: usize) {
        signal_child(&self.shared, w, "STOP");
    }

    /// SIGCONTs worker `w`, undoing [`Cluster::stall_worker`] if the
    /// lease has not already expired it.
    pub fn resume_worker(&self, w: usize) {
        signal_child(&self.shared, w, "CONT");
    }

    /// Total lease expiries across all workers (stalled-but-alive
    /// detections; process deaths don't count here).
    pub fn lease_expiries(&self) -> u64 {
        self.shared.lease_expired.iter().map(|c| c.get()).sum()
    }

    /// Frames and registrations rejected by the generation fence.
    pub fn fenced_frames(&self) -> u64 {
        self.shared.fenced.get()
    }

    /// Tuple batches failed fast at the acker because their destination
    /// worker's lease was down.
    pub fn failed_fast_batches(&self) -> u64 {
        self.shared.failed_fast.get()
    }

    /// Current incarnation generation of worker slot `w` (starts at 1,
    /// bumped on every respawn).
    pub fn generation(&self, w: usize) -> u64 {
        self.shared.generations[w].load(Ordering::SeqCst)
    }

    /// Waits until worker `w` reports progress ≥ `target`.
    pub fn wait_progress(&self, w: usize, target: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.progress(w) >= target {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        false
    }

    fn idle_now(&self) -> bool {
        if self.shared.pending.load(Ordering::SeqCst) != 0 {
            return false;
        }
        lock(&self.shared.state).iter().all(|s| {
            s.spouts_idle
                && s.inflight <= 0
                && s.last_status
                    .is_some_and(|t| t.elapsed() < Duration::from_millis(500))
        })
    }

    /// Waits until the whole cluster is quiescent: zero trees pending at
    /// the global acker and every worker's *fresh* status reports idle
    /// spouts with no inflight tuples — stable across three consecutive
    /// polls, so a single between-batches lull doesn't count.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable = 0;
        while Instant::now() < deadline {
            if self.idle_now() {
                stable += 1;
                if stable >= 3 {
                    return true;
                }
            } else {
                stable = 0;
            }
            thread::sleep(Duration::from_millis(25));
        }
        false
    }

    /// Asks worker `w` to serialize its app state ([`ClusterApp::drain`])
    /// and returns the bytes, or `None` on timeout.
    pub fn drain(&self, w: usize, timeout: Duration) -> Option<Vec<u8>> {
        lock(&self.shared.state)[w].drain = None;
        send_to(&self.shared, w, &Msg::DrainRequest);
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(bytes) = lock(&self.shared.state)[w].drain.clone() {
                return Some(bytes);
            }
            thread::sleep(Duration::from_millis(10));
        }
        None
    }

    /// Renders the merged cluster scrape: every metric family with
    /// per-worker labelled series plus cluster-wide aggregates, followed
    /// by the supervisor's own tguard metrics (leases, generations,
    /// fencing, fail-fast).
    pub fn render_metrics(&self) -> String {
        let mut out = lock(&self.shared.scrape).render();
        out.push_str(&self.shared.registry.render());
        out
    }

    /// Stops the cluster: asks every worker to exit, waits up to
    /// `timeout` before killing stragglers, then tears down the acker,
    /// accept, and monitor threads.
    pub fn shutdown(self, timeout: Duration) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        for w in 0..self.n {
            send_to(&self.shared, w, &Msg::Shutdown);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let mut all_done = true;
            {
                let mut children = lock(&self.shared.children);
                for child in children.iter_mut() {
                    if let Some(c) = child {
                        match c.try_wait() {
                            Ok(Some(_)) => *child = None,
                            _ => all_done = false,
                        }
                    }
                }
                if !all_done && Instant::now() >= deadline {
                    for child in children.iter_mut() {
                        if let Some(c) = child {
                            let _ = c.kill();
                            let _ = c.wait();
                        }
                        *child = None;
                    }
                    all_done = true;
                }
            }
            if all_done {
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        let _ = self.shared.acker_tx.send(AckerMsg::Shutdown);
        let _ = self.acker.join();
        // The accept thread is parked in accept(); a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let _ = self.monitor.join();
    }
}
