//! Supervisor process: spawns worker processes, relays tuples between
//! them, hosts the cluster's one global XOR acker, and restarts workers
//! that die.
//!
//! Topology: hub-and-spoke. Workers connect only to the supervisor; a
//! tuple crossing worker boundaries makes exactly one relay hop. The
//! supervisor never decodes relayed tuple payloads — it peeks the
//! destination component off the frame head and re-frames the body
//! verbatim ([`crate::protocol::peek_tuple_batch_dest`]).
//!
//! Fail-over sequence when a worker dies (or is chaos-killed):
//! 1. the monitor thread reaps the child and respawns it with the *same*
//!    assignment (sticky placement — fields groupings keep their key→task
//!    contract);
//! 2. the respawned worker's [`crate::protocol::Msg::Assignment`] carries
//!    the last offset-commit blob the dead incarnation shipped, so its
//!    spouts resume from the committed frontier instead of offset 0;
//! 3. every tuple tree with an edge lost in the dead worker is never
//!    fully acked, times out at the global acker, and is replayed by the
//!    owning spout — downstream dedup absorbs the re-delivered prefix.

use crate::protocol::{self, Msg, NotifyKind, TAG_TUPLE_BATCH};
use crate::{ClusterApp, WorkerContext, ENV_ROLE, ENV_SUPERVISOR, ENV_WORKER_ID};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Sender};
use obs::{ClusterScrape, LatencyHistogram};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use tchaos::{Clock, FaultPlan, FaultSite};
use tstorm::ack::{run_acker, AckerMsg, SpoutMsg};
use tstorm::cluster::Nimbus;
use wire::{split_frame, with_frame};

/// One worker process: which components it runs and whether chaos may
/// kill it.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Components whose tasks run in this worker. Placement is
    /// component-granular; each component must appear in exactly one
    /// worker's list.
    pub components: Vec<String>,
    /// Whether [`tchaos::FaultSite::WorkerKill`] may target this worker.
    /// Protect workers owning in-process state that a kill would erase
    /// (stores live in worker memory, not a shared service).
    pub kill_eligible: bool,
}

impl WorkerSpec {
    /// A kill-eligible worker running `components`.
    pub fn new<I, S>(components: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        WorkerSpec {
            components: components.into_iter().map(Into::into).collect(),
            kill_eligible: true,
        }
    }

    /// A worker chaos must not kill.
    pub fn protected<I, S>(components: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        WorkerSpec {
            kill_eligible: false,
            ..Self::new(components)
        }
    }
}

/// Cluster-wide launch parameters.
#[derive(Clone)]
pub struct SupervisorConfig {
    /// The worker processes to spawn, indexed by worker id.
    pub workers: Vec<WorkerSpec>,
    /// Fault plan driving [`tchaos::FaultSite::WorkerKill`] (drawn per
    /// status frame from kill-eligible workers) and
    /// [`tchaos::FaultSite::LinkPartition`] (drawn per relayed tuple
    /// batch).
    pub fault_plan: FaultPlan,
    /// Tree timeout at the global acker; trees pending longer than this
    /// are failed back to their spout for replay.
    pub message_timeout: Duration,
    /// Extra argv passed to re-executions of the current binary. Test
    /// harnesses pass `["--exact", "<test_fn>", "--nocapture"]` so the
    /// respawned test binary reaches the same test body.
    pub spawn_args: Vec<String>,
    /// Address the hub socket binds to. Defaults to `127.0.0.1:0`
    /// (loopback, ephemeral port). Bind `0.0.0.0:<port>` to accept
    /// workers from other machines; an unspecified IP is advertised to
    /// locally spawned workers as loopback, since `0.0.0.0` itself is not
    /// connectable.
    pub bind_addr: SocketAddr,
}

impl SupervisorConfig {
    /// Defaults: no faults, 5 s tree timeout, no extra argv, loopback
    /// ephemeral bind.
    pub fn new(workers: Vec<WorkerSpec>) -> Self {
        SupervisorConfig {
            workers,
            fault_plan: FaultPlan::none(),
            message_timeout: Duration::from_secs(5),
            spawn_args: Vec::new(),
            bind_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
        }
    }
}

/// Latest health report from one worker.
#[derive(Debug, Default, Clone)]
struct WorkerState {
    progress: u64,
    inflight: i64,
    spouts_idle: bool,
    last_status: Option<Instant>,
    drain: Option<Vec<u8>>,
}

/// `(components, spout slot_map)` for one worker.
type Assignment = (Vec<String>, Vec<usize>);

struct Shared {
    mailboxes: Vec<Mutex<Option<TcpStream>>>,
    state: Mutex<Vec<WorkerState>>,
    commits: Mutex<Vec<Option<Vec<u8>>>>,
    scrape: Mutex<ClusterScrape>,
    children: Mutex<Vec<Option<Child>>>,
    registered: Mutex<Vec<bool>>,
    shutting_down: AtomicBool,
    started: AtomicBool,
    relayed: AtomicU64,
    dropped: AtomicU64,
    restarts: AtomicU64,
    assignments: Vec<Assignment>,
    comp_to_worker: HashMap<String, usize>,
    kill_eligible: Vec<bool>,
    acker_tx: Sender<AckerMsg>,
    pending: Arc<AtomicI64>,
    plan: FaultPlan,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

/// Encodes and writes one frame to worker `w`'s current connection.
/// Errors are dropped: a broken mailbox means the worker is dead or
/// dying, and the replay machinery (not the transport) owns recovery.
fn send_to(shared: &Shared, w: usize, msg: &Msg) {
    let mut buf = BytesMut::new();
    protocol::encode(&mut buf, 0, msg);
    if let Some(stream) = lock(&shared.mailboxes[w]).as_mut() {
        let _ = stream.write_all(&buf);
    }
}

fn spawn_worker(addr: &SocketAddr, w: usize, spawn_args: &[String]) -> io::Result<Child> {
    let exe = std::env::current_exe()?;
    Command::new(exe)
        .args(spawn_args)
        .env(ENV_ROLE, "worker")
        .env(ENV_SUPERVISOR, addr.to_string())
        .env(ENV_WORKER_ID, w.to_string())
        .spawn()
}

fn kill_child(shared: &Shared, w: usize) {
    if let Some(child) = lock(&shared.children)[w].as_mut() {
        let _ = child.kill();
    }
}

/// Handles one decoded-or-relayed frame from registered worker `w`.
fn handle_frame(shared: &Shared, w: usize, id: u64, tag: u8, body: &[u8]) {
    if tag == TAG_TUPLE_BATCH {
        let Ok(dest) = protocol::peek_tuple_batch_dest(body) else {
            return;
        };
        let Some(&dest_worker) = shared.comp_to_worker.get(&dest) else {
            return;
        };
        shared.relayed.fetch_add(1, Ordering::Relaxed);
        if shared.plan.should_fault(FaultSite::LinkPartition) {
            // Dropped on the (simulated) wire: every tree in the batch
            // times out at the acker and replays from its spout.
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut out = BytesMut::with_capacity(body.len() + 16);
        with_frame(&mut out, id, TAG_TUPLE_BATCH, |b| b.extend_from_slice(body));
        if let Some(stream) = lock(&shared.mailboxes[dest_worker]).as_mut() {
            let _ = stream.write_all(&out);
        }
        return;
    }
    let Ok(msg) = protocol::decode(tag, body) else {
        return;
    };
    match msg {
        Msg::AckerBatch(msgs) => {
            for m in msgs {
                if !matches!(m, AckerMsg::Shutdown) {
                    let _ = shared.acker_tx.send(m);
                }
            }
        }
        Msg::Status {
            progress,
            inflight,
            spouts_idle,
        } => {
            {
                let mut st = lock(&shared.state);
                st[w].progress = progress;
                st[w].inflight = inflight;
                st[w].spouts_idle = spouts_idle;
                st[w].last_status = Some(Instant::now());
            }
            if shared.kill_eligible[w]
                && shared.started.load(Ordering::SeqCst)
                && !shared.shutting_down.load(Ordering::SeqCst)
                && shared.plan.should_fault(FaultSite::WorkerKill)
            {
                kill_child(shared, w);
            }
        }
        Msg::DrainReport(bytes) => lock(&shared.state)[w].drain = Some(bytes),
        Msg::MetricsReport(samples) => lock(&shared.scrape).ingest(&format!("w{w}"), samples),
        Msg::OffsetCommit(bytes) => lock(&shared.commits)[w] = Some(bytes),
        // Supervisor-bound traffic only.
        _ => {}
    }
}

/// Per-connection reader: waits for `Register`, installs the mailbox,
/// ships the assignment (plus any recovered commit blob), then pumps
/// frames until the socket closes.
fn serve_conn(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let n = shared.mailboxes.len();
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = vec![0u8; 64 * 1024];
    let mut worker: Option<usize> = None;
    loop {
        loop {
            let (id, tag, body) = match split_frame(&mut buf) {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => return,
            };
            match worker {
                Some(w) => handle_frame(&shared, w, id, tag, &body),
                None => {
                    let Ok(Msg::Register { worker_id }) = protocol::decode(tag, &body) else {
                        return;
                    };
                    let w = worker_id as usize;
                    if w >= n {
                        return;
                    }
                    worker = Some(w);
                    *lock(&shared.mailboxes[w]) = stream.try_clone().ok();
                    // A re-registering (respawned) worker starts from a
                    // blank health record so wait_idle never trusts the
                    // dead incarnation's last report.
                    lock(&shared.state)[w] = WorkerState::default();
                    let (components, slot_map) = shared.assignments[w].clone();
                    let recovered = lock(&shared.commits)[w].clone();
                    send_to(
                        &shared,
                        w,
                        &Msg::Assignment {
                            components,
                            slot_map,
                            recovered,
                        },
                    );
                    let all = {
                        let mut reg = lock(&shared.registered);
                        reg[w] = true;
                        reg.iter().all(|r| *r)
                    };
                    if shared.started.load(Ordering::SeqCst) {
                        send_to(&shared, w, &Msg::Start);
                    } else if all && !shared.started.swap(true, Ordering::SeqCst) {
                        // First time everyone is connected: every mailbox
                        // is installed, so no worker can emit toward a
                        // peer the supervisor cannot reach yet.
                        for i in 0..n {
                            send_to(&shared, i, &Msg::Start);
                        }
                    }
                }
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(nread) => buf.extend_from_slice(&chunk[..nread]),
        }
    }
}

/// Reaps dead workers and respawns them with their original assignment.
fn monitor_loop(shared: Arc<Shared>, addr: SocketAddr, spawn_args: Vec<String>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        for w in 0..shared.mailboxes.len() {
            let mut children = lock(&shared.children);
            let dead = match &mut children[w] {
                Some(c) => matches!(c.try_wait(), Ok(Some(_))),
                None => false,
            };
            if dead && !shared.shutting_down.load(Ordering::SeqCst) {
                lock(&shared.state)[w] = WorkerState::default();
                children[w] = spawn_worker(&addr, w, &spawn_args).ok();
                if children[w].is_some() {
                    shared.restarts.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
}

/// A running cluster: the supervisor-side handle over N worker
/// processes. Dropping without [`Cluster::shutdown`] leaves children
/// running; always shut down.
pub struct Cluster {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acker: JoinHandle<()>,
    accept: JoinHandle<()>,
    monitor: JoinHandle<()>,
    n: usize,
}

impl Cluster {
    /// Validates placement, binds the hub socket, starts the global
    /// acker, and spawns one worker process per [`WorkerSpec`] by
    /// re-executing the current binary.
    ///
    /// `build` is invoked once here with a probe context
    /// ([`WorkerContext::is_probe`]) purely to learn the topology's
    /// component names, parallelism, and spout order; the probe app is
    /// dropped unlaunched. Worker processes call the same builder through
    /// [`crate::maybe_run_worker`].
    pub fn launch(
        config: SupervisorConfig,
        build: impl Fn(&WorkerContext) -> ClusterApp,
    ) -> io::Result<Cluster> {
        let n = config.workers.len();
        if n == 0 {
            return Err(invalid("cluster needs at least one worker"));
        }
        let probe = build(&WorkerContext {
            worker_id: u32::MAX,
            recovered: None,
        });
        let infos = probe.topology.components();
        drop(probe);

        let mut comp_to_worker = HashMap::new();
        for (w, spec) in config.workers.iter().enumerate() {
            for c in &spec.components {
                if comp_to_worker.insert(c.clone(), w).is_some() {
                    return Err(invalid(format!("component {c:?} assigned to two workers")));
                }
            }
        }
        let known: HashSet<&str> = infos.iter().map(|i| i.name.as_str()).collect();
        for spec in &config.workers {
            for c in &spec.components {
                if !known.contains(c.as_str()) {
                    return Err(invalid(format!("unknown component {c:?} in worker spec")));
                }
            }
        }
        for info in &infos {
            if !comp_to_worker.contains_key(&info.name) {
                return Err(invalid(format!("component {:?} not placed", info.name)));
            }
        }

        // Nimbus validates that the declared worker slots can hold every
        // task of the submitted topology (the paper's Fig. 1 scheduler).
        // Placement itself stays sticky/component-granular above; Nimbus
        // task-level reassignment is exercised in its own unit tests.
        let mut nimbus = Nimbus::new();
        for (w, spec) in config.workers.iter().enumerate() {
            let slots: usize = spec
                .components
                .iter()
                .filter_map(|c| infos.iter().find(|i| &i.name == c))
                .map(|i| i.parallelism)
                .sum();
            nimbus.add_supervisor(w as u32, slots);
        }
        nimbus
            .submit_topology(infos.iter().map(|i| (i.name.clone(), i.parallelism)))
            .map_err(|e| invalid(format!("placement infeasible: {e:?}")))?;
        nimbus.check_invariants().map_err(invalid)?;

        // Global spout slots: spouts in topology definition order, one
        // slot per task, owner = the worker running the component.
        let mut slot_owner = Vec::new();
        let mut per_worker_slots = vec![Vec::new(); n];
        for info in infos.iter().filter(|i| i.is_spout) {
            let w = comp_to_worker[&info.name];
            for _ in 0..info.parallelism {
                per_worker_slots[w].push(slot_owner.len());
                slot_owner.push(w);
            }
        }
        let assignments: Vec<Assignment> = config
            .workers
            .iter()
            .zip(per_worker_slots)
            .map(|(spec, slots)| (spec.components.clone(), slots))
            .collect();

        let listener = TcpListener::bind(config.bind_addr)?;
        let mut addr = listener.local_addr()?;
        // A wildcard bind (0.0.0.0 / ::) accepts from any interface but is
        // not itself connectable; advertise loopback with the bound port
        // to the workers this supervisor spawns locally.
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let (acker_tx, acker_rx) = unbounded();
        let pending = Arc::new(AtomicI64::new(0));
        let shared = Arc::new(Shared {
            mailboxes: (0..n).map(|_| Mutex::new(None)).collect(),
            state: Mutex::new(vec![WorkerState::default(); n]),
            commits: Mutex::new(vec![None; n]),
            scrape: Mutex::new(ClusterScrape::new()),
            children: Mutex::new((0..n).map(|_| None).collect()),
            registered: Mutex::new(vec![false; n]),
            shutting_down: AtomicBool::new(false),
            started: AtomicBool::new(false),
            relayed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            assignments,
            comp_to_worker,
            kill_eligible: config.workers.iter().map(|s| s.kill_eligible).collect(),
            acker_tx,
            pending: Arc::clone(&pending),
            plan: config.fault_plan.clone(),
        });

        // Per-slot notification forwarders: the global acker's spout
        // channels terminate here and turn into SpoutNotify frames for
        // whichever worker owns the slot. They exit when run_acker
        // returns and drops the senders.
        let mut spout_txs = Vec::with_capacity(slot_owner.len());
        for (slot, &owner) in slot_owner.iter().enumerate() {
            let (tx, rx) = unbounded::<SpoutMsg>();
            spout_txs.push(tx);
            let sh = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("tcluster-notify-{slot}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        let (kind, ids) = match msg {
                            SpoutMsg::Ack(id) => (NotifyKind::Ack, vec![id]),
                            SpoutMsg::AckBatch(ids) => (NotifyKind::Ack, ids),
                            SpoutMsg::Fail(id) => (NotifyKind::Fail, vec![id]),
                            // Lifecycle messages are meaningful only to
                            // in-process spouts; worker lifecycle is the
                            // Shutdown frame's job.
                            SpoutMsg::Deactivate | SpoutMsg::Activate | SpoutMsg::Shutdown => {
                                continue
                            }
                        };
                        send_to(
                            &sh,
                            owner,
                            &Msg::SpoutNotify {
                                global_slot: slot,
                                kind,
                                ids,
                            },
                        );
                    }
                })
                .map_err(|e| invalid(format!("spawn notify forwarder: {e}")))?;
        }
        let timeout = config.message_timeout;
        let acker_pending = Arc::clone(&pending);
        let acker = thread::Builder::new()
            .name("tcluster-acker".into())
            .spawn(move || {
                run_acker(
                    acker_rx,
                    spout_txs,
                    timeout,
                    acker_pending,
                    Clock::system(),
                    Arc::new(LatencyHistogram::new()),
                );
            })?;

        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("tcluster-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let sh = Arc::clone(&accept_shared);
                    let _ = thread::Builder::new()
                        .name("tcluster-conn".into())
                        .spawn(move || serve_conn(sh, stream));
                }
            })?;

        for w in 0..n {
            match spawn_worker(&addr, w, &config.spawn_args) {
                Ok(child) => lock(&shared.children)[w] = Some(child),
                Err(e) => {
                    shared.shutting_down.store(true, Ordering::SeqCst);
                    for c in lock(&shared.children).iter_mut().flatten() {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    let _ = shared.acker_tx.send(AckerMsg::Shutdown);
                    let _ = TcpStream::connect(addr);
                    let _ = acker.join();
                    let _ = accept.join();
                    return Err(e);
                }
            }
        }

        let monitor_shared = Arc::clone(&shared);
        let spawn_args = config.spawn_args.clone();
        let monitor = thread::Builder::new()
            .name("tcluster-monitor".into())
            .spawn(move || monitor_loop(monitor_shared, addr, spawn_args))?;

        Ok(Cluster {
            shared,
            addr,
            acker,
            accept,
            monitor,
            n,
        })
    }

    /// The address advertised to workers (the bound address, with a
    /// wildcard IP rewritten to loopback).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Latest progress value reported by worker `w`'s status frames.
    pub fn progress(&self, w: usize) -> u64 {
        lock(&self.shared.state)[w].progress
    }

    /// How many worker respawns the monitor has performed.
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::SeqCst)
    }

    /// Tuple-batch frames relayed between workers (including dropped).
    pub fn relayed_batches(&self) -> u64 {
        self.shared.relayed.load(Ordering::Relaxed)
    }

    /// Tuple-batch frames dropped by [`tchaos::FaultSite::LinkPartition`].
    pub fn dropped_batches(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Tuple trees currently pending at the global acker.
    pub fn pending_trees(&self) -> i64 {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// The fault plan this cluster is running under (for `fired` counts).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.shared.plan
    }

    /// Kills worker `w`'s process (SIGKILL — no drop handlers run). The
    /// monitor respawns it with the same assignment; pair with
    /// [`Cluster::wait_idle`] to observe recovery.
    pub fn kill_worker(&self, w: usize) {
        kill_child(&self.shared, w);
    }

    /// Waits until worker `w` reports progress ≥ `target`.
    pub fn wait_progress(&self, w: usize, target: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.progress(w) >= target {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        false
    }

    fn idle_now(&self) -> bool {
        if self.shared.pending.load(Ordering::SeqCst) != 0 {
            return false;
        }
        lock(&self.shared.state).iter().all(|s| {
            s.spouts_idle
                && s.inflight <= 0
                && s.last_status
                    .is_some_and(|t| t.elapsed() < Duration::from_millis(500))
        })
    }

    /// Waits until the whole cluster is quiescent: zero trees pending at
    /// the global acker and every worker's *fresh* status reports idle
    /// spouts with no inflight tuples — stable across three consecutive
    /// polls, so a single between-batches lull doesn't count.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable = 0;
        while Instant::now() < deadline {
            if self.idle_now() {
                stable += 1;
                if stable >= 3 {
                    return true;
                }
            } else {
                stable = 0;
            }
            thread::sleep(Duration::from_millis(25));
        }
        false
    }

    /// Asks worker `w` to serialize its app state ([`ClusterApp::drain`])
    /// and returns the bytes, or `None` on timeout.
    pub fn drain(&self, w: usize, timeout: Duration) -> Option<Vec<u8>> {
        lock(&self.shared.state)[w].drain = None;
        send_to(&self.shared, w, &Msg::DrainRequest);
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(bytes) = lock(&self.shared.state)[w].drain.clone() {
                return Some(bytes);
            }
            thread::sleep(Duration::from_millis(10));
        }
        None
    }

    /// Renders the merged cluster scrape: every metric family with
    /// per-worker labelled series plus cluster-wide aggregates.
    pub fn render_metrics(&self) -> String {
        lock(&self.shared.scrape).render()
    }

    /// Stops the cluster: asks every worker to exit, waits up to
    /// `timeout` before killing stragglers, then tears down the acker,
    /// accept, and monitor threads.
    pub fn shutdown(self, timeout: Duration) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        for w in 0..self.n {
            send_to(&self.shared, w, &Msg::Shutdown);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let mut all_done = true;
            {
                let mut children = lock(&self.shared.children);
                for child in children.iter_mut() {
                    if let Some(c) = child {
                        match c.try_wait() {
                            Ok(Some(_)) => *child = None,
                            _ => all_done = false,
                        }
                    }
                }
                if !all_done && Instant::now() >= deadline {
                    for child in children.iter_mut() {
                        if let Some(c) = child {
                            let _ = c.kill();
                            let _ = c.wait();
                        }
                        *child = None;
                    }
                    all_done = true;
                }
            }
            if all_done {
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        let _ = self.shared.acker_tx.send(AckerMsg::Shutdown);
        let _ = self.acker.join();
        // The accept thread is parked in accept(); a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        let _ = self.monitor.join();
    }
}
