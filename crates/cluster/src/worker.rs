//! Worker-process runtime: registers with the supervisor, launches the
//! assigned topology slice, and pumps the four flows a slice needs —
//! tuple ingress (inject), tuple egress (TCP frames), acker forwarding,
//! and spout notifications — plus periodic status, metrics, and offset
//! commits.
//!
//! Transport robustness (tguard): the supervisor connection is dialed
//! with bounded exponential backoff ([`wire::Backoff`]) instead of a
//! single fatal attempt; every frame is stamped with this incarnation's
//! generation so the supervisor can fence zombies; a failed or timed-out
//! write condemns the stream (a partial frame makes it unframeable) and
//! the read loop re-dials and re-registers, all counted in the worker's
//! runtime metrics (`tcluster_send_errors`, `tcluster_reconnects`).

use crate::protocol::{self, Msg, NotifyKind};
use crate::{ClusterApp, WorkerContext, ENV_GENERATION, ENV_ROLE, ENV_SUPERVISOR, ENV_WORKER_ID};
use bytes::BytesMut;
use crossbeam::channel::unbounded;
use obs::{Counter, Registry};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use tstorm::ack::{AckerMsg, SpoutMsg};
use tstorm::remote::{EgressFn, SliceSpec, WireTuple};
use tstorm::TopologyHandle;
use wire::{split_frame, Backoff};

/// How often the worker reports status (and consults the commit hook).
const STATUS_EVERY: Duration = Duration::from_millis(50);
/// How often the worker exports metric samples.
const METRICS_EVERY: Duration = Duration::from_millis(200);
/// Largest acker-forward batch per frame.
const ACKER_BATCH: usize = 256;
/// Supervisor dial backoff: first retry delay and cap.
const CONNECT_BASE: Duration = Duration::from_millis(10);
const CONNECT_CAP: Duration = Duration::from_millis(500);
/// Dial attempts at first launch. The supervisor spawns workers right
/// after binding, so the hub is almost always up by attempt one or two;
/// the budget covers a heavily loaded machine.
const CONNECT_ATTEMPTS: u32 = 40;
/// Dial attempts when replacing a broken stream mid-run. Exhaustion
/// means the supervisor is gone for good and the worker exits.
const RECONNECT_ATTEMPTS: u32 = 20;
/// Bound on every worker→supervisor write, mirroring the supervisor's
/// mailbox timeout: a frozen hub must surface as a condemned stream, not
/// a wedged pump thread. (SO_SNDTIMEO is per-socket, shared with the
/// dup'd read half; reads take no timeout, so this only bounds writes.)
const WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Runs this process as a cluster worker if the supervisor spawned it as
/// one (`TCLUSTER_ROLE=worker`), never returning in that case — the
/// worker exits the process when the supervisor says so or disappears.
/// Returns `false` in a normal (non-worker) process.
///
/// Call this at the top of `main` (or of each multi-process test) in any
/// binary that launches a [`crate::supervisor::Cluster`]; the supervisor
/// re-executes the current binary, and this is the hook that turns the
/// re-execution into a worker instead of a second supervisor.
pub fn maybe_run_worker(build: impl Fn(&WorkerContext) -> ClusterApp) -> bool {
    if std::env::var(ENV_ROLE).as_deref() != Ok("worker") {
        return false;
    }
    let code = worker_main(build);
    std::process::exit(code);
}

/// The worker's supervisor connection plus the identity stamped on every
/// frame it sends.
struct WorkerConn {
    /// Current stream; the reconnect path swaps in a fresh one under the
    /// lock after the old stream is condemned.
    stream: Mutex<TcpStream>,
    /// This incarnation's generation (from [`ENV_GENERATION`]), echoed
    /// as the wire id of every frame so the supervisor's fence can tell
    /// this incarnation from a zombie predecessor.
    generation: u64,
    /// Worker→supervisor writes that failed and condemned the stream.
    send_errors: Counter,
}

/// Encodes and writes one frame under the connection lock, stamped with
/// the sender's generation. A failed (or timed-out) `write_all` may have
/// left a partial frame on the wire, after which nothing further can be
/// framed on this stream — so the error is counted and the stream shut
/// down; the read loop sees EOF and re-dials for a clean one. The acker
/// replays whatever the lost frame carried.
fn send(conn: &WorkerConn, msg: &Msg) {
    let mut buf = BytesMut::new();
    protocol::encode(&mut buf, conn.generation, msg);
    let mut stream = conn.stream.lock().unwrap_or_else(|e| e.into_inner());
    if stream.write_all(&buf).is_err() {
        conn.send_errors.inc();
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// Dials the supervisor under a bounded [`Backoff`], configuring the
/// socket on success. `None` when every attempt failed.
fn dial(addr: &str, mut backoff: Backoff) -> Option<TcpStream> {
    loop {
        if let Ok(stream) = TcpStream::connect(addr) {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
            return Some(stream);
        }
        if !backoff.sleep_next() {
            return None;
        }
    }
}

/// Replaces a condemned supervisor stream: re-dial with bounded backoff,
/// write the `Register` frame on the fresh stream *before* swapping it
/// into the shared connection — otherwise a pump thread's data frame
/// could reach the supervisor ahead of the registration and kill the new
/// connection — then return the new read half. `None` means the
/// supervisor stayed unreachable and the worker should exit.
fn reconnect_supervisor(
    addr: &str,
    conn: &WorkerConn,
    worker_id: u32,
    reconnects: &Counter,
) -> Option<TcpStream> {
    let backoff = Backoff::new(CONNECT_BASE, CONNECT_CAP)
        .with_seed(worker_id as u64 ^ conn.generation)
        .with_max_attempts(RECONNECT_ATTEMPTS);
    let mut stream = dial(addr, backoff)?;
    let mut buf = BytesMut::new();
    protocol::encode(
        &mut buf,
        conn.generation,
        &Msg::Register {
            worker_id,
            generation: conn.generation,
        },
    );
    if stream.write_all(&buf).is_err() {
        return None;
    }
    let read_half = stream.try_clone().ok()?;
    *conn.stream.lock().unwrap_or_else(|e| e.into_inner()) = stream;
    reconnects.inc();
    Some(read_half)
}

struct Slice {
    handle: Arc<TopologyHandle>,
    drain: Option<Arc<dyn Fn() -> Vec<u8> + Send + Sync>>,
}

/// Builds the app, launches the assigned slice, and starts the pump
/// threads. Returns the running slice state the frame loop dispatches to.
fn launch(
    build: &impl Fn(&WorkerContext) -> ClusterApp,
    worker_id: u32,
    components: Vec<String>,
    slot_map: Vec<usize>,
    recovered: Option<Vec<u8>>,
    conn: &Arc<WorkerConn>,
    runtime: &Registry,
) -> Slice {
    let ctx = WorkerContext {
        worker_id,
        recovered,
    };
    let ClusterApp {
        topology,
        progress,
        drain,
        commit,
        checkpoint,
        checkpoint_every,
        registries,
    } = build(&ctx);

    let (acker_tx, acker_rx) = unbounded::<AckerMsg>();
    let egress_conn = Arc::clone(conn);
    let egress: EgressFn = Arc::new(move |dest: &str, task: usize, tuples: Vec<WireTuple>| {
        send(
            &egress_conn,
            &Msg::TupleBatch {
                dest_component: dest.to_string(),
                dest_task: task,
                tuples,
            },
        );
    });
    let spec = SliceSpec {
        local: components.into_iter().collect(),
        slot_map,
        acker: acker_tx,
        egress,
    };
    let handle = Arc::new(topology.launch_slice(spec));

    // Acker forwarder: drain the slice's acker channel into batched
    // frames. `AckerMsg::Shutdown` is the local end-of-stream marker (the
    // executor sends it when the slice shuts down) — everything before it
    // is forwarded, the marker itself never crosses the wire.
    let fconn = Arc::clone(conn);
    thread::Builder::new()
        .name("tcluster-acker-fwd".into())
        .spawn(move || loop {
            let first = match acker_rx.recv() {
                Ok(m) => m,
                Err(_) => return,
            };
            let mut stop = false;
            let mut msgs = Vec::new();
            match first {
                AckerMsg::Shutdown => stop = true,
                m => msgs.push(m),
            }
            while !stop && msgs.len() < ACKER_BATCH {
                match acker_rx.try_recv() {
                    Ok(AckerMsg::Shutdown) => stop = true,
                    Ok(m) => msgs.push(m),
                    Err(_) => break,
                }
            }
            if !msgs.is_empty() {
                send(&fconn, &Msg::AckerBatch(msgs));
            }
            if stop {
                return;
            }
        })
        .expect("spawn acker forwarder");

    // Status + offset commits. Commits only ship when the blob changes,
    // so an idle worker is one status frame per tick, not two.
    let sconn = Arc::clone(conn);
    let shandle = Arc::clone(&handle);
    thread::Builder::new()
        .name("tcluster-status".into())
        .spawn(move || {
            let mut last_commit: Option<Vec<u8>> = None;
            loop {
                send(
                    &sconn,
                    &Msg::Status {
                        progress: progress.as_ref().map_or(0, |f| f()),
                        inflight: shandle.inflight(),
                        spouts_idle: shandle.spouts_idle(),
                    },
                );
                if let Some(f) = &commit {
                    let blob = f();
                    if last_commit.as_ref() != Some(&blob) {
                        send(&sconn, &Msg::OffsetCommit(blob.clone()));
                        last_commit = Some(blob);
                    }
                }
                thread::sleep(STATUS_EVERY);
            }
        })
        .expect("spawn status thread");

    // Checkpoint driver: periodically runs the app's checkpoint hook
    // against the live handle. The hook owns the whole protocol (barrier,
    // capture, durable publish); a slow checkpoint simply delays the next
    // one — cadence is "at most this often", not a hard period.
    if let Some(ckpt) = checkpoint {
        let chandle = Arc::clone(&handle);
        thread::Builder::new()
            .name("tcluster-checkpoint".into())
            .spawn(move || loop {
                thread::sleep(checkpoint_every);
                ckpt(&chandle);
            })
            .expect("spawn checkpoint thread");
    }

    let mconn = Arc::clone(conn);
    let mhandle = Arc::clone(&handle);
    let runtime = runtime.clone();
    thread::Builder::new()
        .name("tcluster-metrics".into())
        .spawn(move || loop {
            let mut samples = mhandle.registry().export();
            for reg in &registries {
                samples.extend(reg.export());
            }
            // The worker runtime's own transport counters ride along.
            samples.extend(runtime.export());
            send(&mconn, &Msg::MetricsReport(samples));
            thread::sleep(METRICS_EVERY);
        })
        .expect("spawn metrics thread");

    Slice { handle, drain }
}

fn worker_main(build: impl Fn(&WorkerContext) -> ClusterApp) -> i32 {
    let addr = std::env::var(ENV_SUPERVISOR).expect("TCLUSTER_SUPERVISOR not set");
    let worker_id: u32 = std::env::var(ENV_WORKER_ID)
        .expect("TCLUSTER_WORKER_ID not set")
        .parse()
        .expect("TCLUSTER_WORKER_ID not a u32");
    let generation: u64 = std::env::var(ENV_GENERATION)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let runtime = Registry::new();
    let send_errors = runtime.counter(
        "tcluster_send_errors",
        &[],
        "worker-to-supervisor writes that failed and condemned the stream",
    );
    let reconnects = runtime.counter(
        "tcluster_reconnects",
        &[],
        "successful supervisor re-dials after a condemned stream",
    );
    let Some(stream) = dial(
        &addr,
        Backoff::new(CONNECT_BASE, CONNECT_CAP)
            .with_seed(worker_id as u64)
            .with_max_attempts(CONNECT_ATTEMPTS),
    ) else {
        eprintln!("tcluster worker {worker_id}: supervisor {addr} unreachable, giving up");
        return 2;
    };
    let mut read_half = stream.try_clone().expect("clone supervisor stream");
    let conn = Arc::new(WorkerConn {
        stream: Mutex::new(stream),
        generation,
        send_errors,
    });
    send(
        &conn,
        &Msg::Register {
            worker_id,
            generation,
        },
    );

    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = vec![0u8; 64 * 1024];
    type PendingAssignment = (Vec<String>, Vec<usize>, Option<Vec<u8>>);
    let mut assignment: Option<PendingAssignment> = None;
    let mut slice: Option<Slice> = None;
    // Tuples relayed by the supervisor can race this worker's own Start
    // frame (another worker may start a hair earlier); they are buffered
    // and injected right after launch instead of dropped.
    let mut pre_start: Vec<(String, usize, Vec<WireTuple>)> = Vec::new();

    loop {
        let mut broken = false;
        loop {
            let (_, tag, body) = match split_frame(&mut buf) {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                // A framing error means the stream is desynced (e.g. the
                // supervisor condemned its half mid-frame); recover by
                // re-dialing rather than dying — the respawn this would
                // otherwise force replays strictly more work.
                Err(_) => {
                    broken = true;
                    break;
                }
            };
            let msg = match protocol::decode(tag, &body) {
                Ok(m) => m,
                Err(_) => {
                    broken = true;
                    break;
                }
            };
            match msg {
                Msg::Assignment {
                    components,
                    slot_map,
                    recovered,
                } if slice.is_none() => {
                    assignment = Some((components, slot_map, recovered));
                }
                Msg::Start if slice.is_none() => {
                    let (components, slot_map, recovered) =
                        assignment.take().expect("Start before Assignment");
                    let s = launch(
                        &build, worker_id, components, slot_map, recovered, &conn, &runtime,
                    );
                    for (dest, task, tuples) in pre_start.drain(..) {
                        s.handle.inject(&dest, task, tuples);
                    }
                    slice = Some(s);
                }
                Msg::TupleBatch {
                    dest_component,
                    dest_task,
                    tuples,
                } => match &slice {
                    Some(s) => s.handle.inject(&dest_component, dest_task, tuples),
                    None => pre_start.push((dest_component, dest_task, tuples)),
                },
                Msg::SpoutNotify {
                    global_slot,
                    kind,
                    ids,
                } => {
                    if let Some(s) = &slice {
                        match kind {
                            NotifyKind::Ack => {
                                let msg = if ids.len() == 1 {
                                    SpoutMsg::Ack(ids[0])
                                } else {
                                    SpoutMsg::AckBatch(ids)
                                };
                                s.handle.spout_notify(global_slot, msg);
                            }
                            NotifyKind::Fail => {
                                for id in ids {
                                    s.handle.spout_notify(global_slot, SpoutMsg::Fail(id));
                                }
                            }
                        }
                    }
                }
                Msg::DrainRequest => {
                    let bytes = slice
                        .as_ref()
                        .and_then(|s| s.drain.as_ref())
                        .map_or_else(Vec::new, |f| f());
                    send(&conn, &Msg::DrainReport(bytes));
                }
                Msg::Shutdown => return 0,
                // Worker-bound traffic only; anything else is a peer-role
                // frame echoed by mistake and is ignored.
                _ => {}
            }
        }
        if !broken {
            match read_half.read(&mut chunk) {
                Ok(0) | Err(_) => broken = true,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        }
        if broken {
            // Partial frames from the dead stream can never complete.
            buf.clear();
            match reconnect_supervisor(&addr, &conn, worker_id, &reconnects) {
                Some(rh) => read_half = rh,
                // Supervisor gone for good: nothing useful left to do.
                // (A fenced zombie also lands here — the supervisor
                // answers its re-register with Shutdown or a close.)
                None => return 0,
            }
        }
    }
}
