//! Worker-process runtime: registers with the supervisor, launches the
//! assigned topology slice, and pumps the four flows a slice needs —
//! tuple ingress (inject), tuple egress (TCP frames), acker forwarding,
//! and spout notifications — plus periodic status, metrics, and offset
//! commits.

use crate::protocol::{self, Msg, NotifyKind};
use crate::{ClusterApp, WorkerContext, ENV_ROLE, ENV_SUPERVISOR, ENV_WORKER_ID};
use bytes::BytesMut;
use crossbeam::channel::unbounded;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use tstorm::ack::{AckerMsg, SpoutMsg};
use tstorm::remote::{EgressFn, SliceSpec, WireTuple};
use tstorm::TopologyHandle;
use wire::split_frame;

/// How often the worker reports status (and consults the commit hook).
const STATUS_EVERY: Duration = Duration::from_millis(50);
/// How often the worker exports metric samples.
const METRICS_EVERY: Duration = Duration::from_millis(200);
/// Largest acker-forward batch per frame.
const ACKER_BATCH: usize = 256;

/// Runs this process as a cluster worker if the supervisor spawned it as
/// one (`TCLUSTER_ROLE=worker`), never returning in that case — the
/// worker exits the process when the supervisor says so or disappears.
/// Returns `false` in a normal (non-worker) process.
///
/// Call this at the top of `main` (or of each multi-process test) in any
/// binary that launches a [`crate::supervisor::Cluster`]; the supervisor
/// re-executes the current binary, and this is the hook that turns the
/// re-execution into a worker instead of a second supervisor.
pub fn maybe_run_worker(build: impl Fn(&WorkerContext) -> ClusterApp) -> bool {
    if std::env::var(ENV_ROLE).as_deref() != Ok("worker") {
        return false;
    }
    let code = worker_main(build);
    std::process::exit(code);
}

/// Encodes and writes one frame under the connection lock. Write errors
/// are dropped: a dead supervisor ends the worker via the read path.
fn send(conn: &Mutex<TcpStream>, msg: &Msg) {
    let mut buf = BytesMut::new();
    protocol::encode(&mut buf, 0, msg);
    let mut stream = conn.lock().unwrap_or_else(|e| e.into_inner());
    let _ = stream.write_all(&buf);
}

struct Slice {
    handle: Arc<TopologyHandle>,
    drain: Option<Arc<dyn Fn() -> Vec<u8> + Send + Sync>>,
}

/// Builds the app, launches the assigned slice, and starts the pump
/// threads. Returns the running slice state the frame loop dispatches to.
fn launch(
    build: &impl Fn(&WorkerContext) -> ClusterApp,
    worker_id: u32,
    components: Vec<String>,
    slot_map: Vec<usize>,
    recovered: Option<Vec<u8>>,
    conn: &Arc<Mutex<TcpStream>>,
) -> Slice {
    let ctx = WorkerContext {
        worker_id,
        recovered,
    };
    let ClusterApp {
        topology,
        progress,
        drain,
        commit,
        checkpoint,
        checkpoint_every,
        registries,
    } = build(&ctx);

    let (acker_tx, acker_rx) = unbounded::<AckerMsg>();
    let egress_conn = Arc::clone(conn);
    let egress: EgressFn = Arc::new(move |dest: &str, task: usize, tuples: Vec<WireTuple>| {
        send(
            &egress_conn,
            &Msg::TupleBatch {
                dest_component: dest.to_string(),
                dest_task: task,
                tuples,
            },
        );
    });
    let spec = SliceSpec {
        local: components.into_iter().collect(),
        slot_map,
        acker: acker_tx,
        egress,
    };
    let handle = Arc::new(topology.launch_slice(spec));

    // Acker forwarder: drain the slice's acker channel into batched
    // frames. `AckerMsg::Shutdown` is the local end-of-stream marker (the
    // executor sends it when the slice shuts down) — everything before it
    // is forwarded, the marker itself never crosses the wire.
    let fconn = Arc::clone(conn);
    thread::Builder::new()
        .name("tcluster-acker-fwd".into())
        .spawn(move || loop {
            let first = match acker_rx.recv() {
                Ok(m) => m,
                Err(_) => return,
            };
            let mut stop = false;
            let mut msgs = Vec::new();
            match first {
                AckerMsg::Shutdown => stop = true,
                m => msgs.push(m),
            }
            while !stop && msgs.len() < ACKER_BATCH {
                match acker_rx.try_recv() {
                    Ok(AckerMsg::Shutdown) => stop = true,
                    Ok(m) => msgs.push(m),
                    Err(_) => break,
                }
            }
            if !msgs.is_empty() {
                send(&fconn, &Msg::AckerBatch(msgs));
            }
            if stop {
                return;
            }
        })
        .expect("spawn acker forwarder");

    // Status + offset commits. Commits only ship when the blob changes,
    // so an idle worker is one status frame per tick, not two.
    let sconn = Arc::clone(conn);
    let shandle = Arc::clone(&handle);
    thread::Builder::new()
        .name("tcluster-status".into())
        .spawn(move || {
            let mut last_commit: Option<Vec<u8>> = None;
            loop {
                send(
                    &sconn,
                    &Msg::Status {
                        progress: progress.as_ref().map_or(0, |f| f()),
                        inflight: shandle.inflight(),
                        spouts_idle: shandle.spouts_idle(),
                    },
                );
                if let Some(f) = &commit {
                    let blob = f();
                    if last_commit.as_ref() != Some(&blob) {
                        send(&sconn, &Msg::OffsetCommit(blob.clone()));
                        last_commit = Some(blob);
                    }
                }
                thread::sleep(STATUS_EVERY);
            }
        })
        .expect("spawn status thread");

    // Checkpoint driver: periodically runs the app's checkpoint hook
    // against the live handle. The hook owns the whole protocol (barrier,
    // capture, durable publish); a slow checkpoint simply delays the next
    // one — cadence is "at most this often", not a hard period.
    if let Some(ckpt) = checkpoint {
        let chandle = Arc::clone(&handle);
        thread::Builder::new()
            .name("tcluster-checkpoint".into())
            .spawn(move || loop {
                thread::sleep(checkpoint_every);
                ckpt(&chandle);
            })
            .expect("spawn checkpoint thread");
    }

    let mconn = Arc::clone(conn);
    let mhandle = Arc::clone(&handle);
    thread::Builder::new()
        .name("tcluster-metrics".into())
        .spawn(move || loop {
            let mut samples = mhandle.registry().export();
            for reg in &registries {
                samples.extend(reg.export());
            }
            send(&mconn, &Msg::MetricsReport(samples));
            thread::sleep(METRICS_EVERY);
        })
        .expect("spawn metrics thread");

    Slice { handle, drain }
}

fn worker_main(build: impl Fn(&WorkerContext) -> ClusterApp) -> i32 {
    let addr = std::env::var(ENV_SUPERVISOR).expect("TCLUSTER_SUPERVISOR not set");
    let worker_id: u32 = std::env::var(ENV_WORKER_ID)
        .expect("TCLUSTER_WORKER_ID not set")
        .parse()
        .expect("TCLUSTER_WORKER_ID not a u32");
    let stream = TcpStream::connect(&addr).expect("connect to supervisor");
    let _ = stream.set_nodelay(true);
    let mut read_half = stream.try_clone().expect("clone supervisor stream");
    let conn = Arc::new(Mutex::new(stream));
    send(&conn, &Msg::Register { worker_id });

    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = vec![0u8; 64 * 1024];
    type PendingAssignment = (Vec<String>, Vec<usize>, Option<Vec<u8>>);
    let mut assignment: Option<PendingAssignment> = None;
    let mut slice: Option<Slice> = None;
    // Tuples relayed by the supervisor can race this worker's own Start
    // frame (another worker may start a hair earlier); they are buffered
    // and injected right after launch instead of dropped.
    let mut pre_start: Vec<(String, usize, Vec<WireTuple>)> = Vec::new();

    loop {
        loop {
            let (_, tag, body) = match split_frame(&mut buf) {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => return 3,
            };
            let msg = match protocol::decode(tag, &body) {
                Ok(m) => m,
                Err(_) => return 3,
            };
            match msg {
                Msg::Assignment {
                    components,
                    slot_map,
                    recovered,
                } if slice.is_none() => {
                    assignment = Some((components, slot_map, recovered));
                }
                Msg::Start if slice.is_none() => {
                    let (components, slot_map, recovered) =
                        assignment.take().expect("Start before Assignment");
                    let s = launch(&build, worker_id, components, slot_map, recovered, &conn);
                    for (dest, task, tuples) in pre_start.drain(..) {
                        s.handle.inject(&dest, task, tuples);
                    }
                    slice = Some(s);
                }
                Msg::TupleBatch {
                    dest_component,
                    dest_task,
                    tuples,
                } => match &slice {
                    Some(s) => s.handle.inject(&dest_component, dest_task, tuples),
                    None => pre_start.push((dest_component, dest_task, tuples)),
                },
                Msg::SpoutNotify {
                    global_slot,
                    kind,
                    ids,
                } => {
                    if let Some(s) = &slice {
                        match kind {
                            NotifyKind::Ack => {
                                let msg = if ids.len() == 1 {
                                    SpoutMsg::Ack(ids[0])
                                } else {
                                    SpoutMsg::AckBatch(ids)
                                };
                                s.handle.spout_notify(global_slot, msg);
                            }
                            NotifyKind::Fail => {
                                for id in ids {
                                    s.handle.spout_notify(global_slot, SpoutMsg::Fail(id));
                                }
                            }
                        }
                    }
                }
                Msg::DrainRequest => {
                    let bytes = slice
                        .as_ref()
                        .and_then(|s| s.drain.as_ref())
                        .map_or_else(Vec::new, |f| f());
                    send(&conn, &Msg::DrainReport(bytes));
                }
                Msg::Shutdown => return 0,
                // Worker-bound traffic only; anything else is a peer-role
                // frame echoed by mistake and is ignored.
                _ => {}
            }
        }
        match read_half.read(&mut chunk) {
            // Supervisor gone: nothing useful left to do.
            Ok(0) | Err(_) => return 0,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}
