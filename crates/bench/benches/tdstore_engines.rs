//! TDStore engine microbenchmarks: put / get / atomic f64 increment for
//! the MDB (memory), LDB (log-structured) and FDB (file) engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tdstore::engine::EngineKind;

const OPS: usize = 10_000;

fn engines() -> Vec<(&'static str, EngineKind)> {
    vec![
        ("mdb", EngineKind::Mdb),
        ("ldb", EngineKind::Ldb),
        ("rdb", EngineKind::Rdb),
        (
            "fdb",
            EngineKind::Fdb(
                std::env::temp_dir().join(format!("tdstore-bench-{}", std::process::id())),
            ),
        ),
    ]
}

fn keys() -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(3);
    (0..OPS)
        .map(|_| rng.gen_range(0..5_000u64).to_le_bytes().to_vec())
        .collect()
}

fn bench_put(c: &mut Criterion) {
    let keys = keys();
    let mut group = c.benchmark_group("engine_put");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    for (name, kind) in engines() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, kind| {
            b.iter_batched(
                || kind.create(0),
                |engine| {
                    for (i, k) in keys.iter().enumerate() {
                        engine.put(k, (i as u64).to_le_bytes().to_vec());
                    }
                    engine
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let keys = keys();
    let mut group = c.benchmark_group("engine_get");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    for (name, kind) in engines() {
        let engine = kind.create(1);
        for (i, k) in keys.iter().enumerate() {
            engine.put(k, (i as u64).to_le_bytes().to_vec());
        }
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut found = 0usize;
                for k in &keys {
                    if engine.get(k).is_some() {
                        found += 1;
                    }
                }
                std::hint::black_box(found)
            })
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let keys = keys();
    let mut group = c.benchmark_group("engine_incr_f64");
    group.sample_size(10);
    group.throughput(Throughput::Elements(OPS as u64));
    for (name, kind) in engines() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, kind| {
            b.iter_batched(
                || kind.create(2),
                |engine| {
                    for k in &keys {
                        engine.update(k, &mut |old| {
                            let cur = old
                                .and_then(|v| v.try_into().ok().map(f64::from_le_bytes))
                                .unwrap_or(0.0);
                            Some((cur + 1.0).to_le_bytes().to_vec())
                        });
                    }
                    engine
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_put, bench_get, bench_update);
criterion_main!(benches);
