//! TDAccess microbenchmarks: produce and consume throughput, with and
//! without small segments (roll pressure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tdaccess::{AccessCluster, ClusterConfig, SegmentConfig};

const MESSAGES: usize = 20_000;

fn bench_produce(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdaccess_produce");
    group.sample_size(10);
    group.throughput(Throughput::Elements(MESSAGES as u64));
    for (name, segment) in [
        ("default_segments", SegmentConfig::default()),
        (
            "small_segments",
            SegmentConfig {
                max_messages: 256,
                max_bytes: usize::MAX,
                spill_dir: None,
            },
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let cluster = AccessCluster::new(ClusterConfig {
                    brokers: 3,
                    segment: segment.clone(),
                    ..Default::default()
                });
                cluster.create_topic("t", 6).unwrap();
                let producer = cluster.producer("t").unwrap();
                for i in 0..MESSAGES as u64 {
                    producer
                        .send(Some(&i.to_le_bytes()), b"payload-payload-payload")
                        .unwrap();
                }
                cluster
            })
        });
    }
    group.finish();
}

fn bench_consume(c: &mut Criterion) {
    let cluster = AccessCluster::new(ClusterConfig {
        brokers: 3,
        ..Default::default()
    });
    cluster.create_topic("t", 6).unwrap();
    let producer = cluster.producer("t").unwrap();
    for i in 0..MESSAGES as u64 {
        producer
            .send(Some(&i.to_le_bytes()), b"payload-payload-payload")
            .unwrap();
    }
    let mut group = c.benchmark_group("tdaccess_consume");
    group.sample_size(10);
    group.throughput(Throughput::Elements(MESSAGES as u64));
    group.bench_function("full_replay", |b| {
        b.iter(|| {
            let mut consumer = cluster.consumer("t", "bench-group").unwrap();
            let mut total = 0usize;
            loop {
                let batch = consumer.poll(512).unwrap();
                if batch.is_empty() {
                    break;
                }
                total += batch.len();
            }
            assert_eq!(total, MESSAGES);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_produce, bench_consume);
criterion_main!(benches);
