//! Microbenchmarks of the practical item-based CF: per-action processing
//! cost (with and without pruning / windowing) and recommendation latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::cf::{CfConfig, ItemCF, WindowConfig};

fn workload(n: usize) -> Vec<UserAction> {
    let mut rng = SmallRng::seed_from_u64(1);
    (0..n)
        .map(|i| {
            let user = rng.gen_range(0..5_000u64);
            let cluster = user % 50;
            let item = if rng.gen_bool(0.8) {
                cluster * 40 + rng.gen_range(0..12u64)
            } else {
                rng.gen_range(0..2_000)
            };
            UserAction::new(
                user,
                item,
                if rng.gen_bool(0.3) {
                    ActionType::Purchase
                } else {
                    ActionType::Click
                },
                i as u64 * 20,
            )
        })
        .collect()
}

fn config(pruning: Option<f64>, window: Option<WindowConfig>) -> CfConfig {
    CfConfig {
        top_k: 10,
        pruning_delta: pruning,
        window,
        ..Default::default()
    }
}

fn bench_process(c: &mut Criterion) {
    let actions = workload(20_000);
    let window = Some(WindowConfig {
        session_ms: 60_000,
        sessions: 10,
    });
    let mut group = c.benchmark_group("cf_process");
    group.sample_size(10);
    group.throughput(Throughput::Elements(actions.len() as u64));
    for (name, cfg) in [
        ("baseline", config(None, None)),
        ("pruning", config(Some(1e-3), None)),
        ("windowed", config(None, window)),
        ("pruning+window", config(Some(1e-3), window)),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || ItemCF::new(cfg.clone()),
                |mut cf| {
                    for a in &actions {
                        cf.process(a);
                    }
                    cf
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_recommend(c: &mut Criterion) {
    let actions = workload(50_000);
    let mut cf = ItemCF::new(config(None, None));
    for a in &actions {
        cf.process(a);
    }
    c.bench_function("cf_recommend_top8", |b| {
        let mut user = 0u64;
        b.iter(|| {
            user = (user + 1) % 5_000;
            std::hint::black_box(cf.recommend(user, 8))
        })
    });
}

criterion_group!(benches, bench_process, bench_recommend);
criterion_main!(benches);
