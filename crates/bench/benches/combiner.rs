//! Combiner microbenchmark: buffered partial aggregation vs direct
//! per-event TDStore writes under Zipf skew (§5.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tdstore::{StoreConfig, TdStore};
use tencentrec::combiner::{CombineOp, Combiner};

const EVENTS: usize = 100_000;

fn zipf_events(theta: f64) -> Vec<u64> {
    let n = 5_000usize;
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 1..=n {
        total += 1.0 / (i as f64).powf(theta);
        cdf.push(total);
    }
    for c in &mut cdf {
        *c /= total;
    }
    let mut rng = SmallRng::seed_from_u64(5);
    (0..EVENTS)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u) as u64
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_item_writes");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EVENTS as u64));
    for theta in [0.9f64, 1.2] {
        let events = zipf_events(theta);
        group.bench_with_input(
            BenchmarkId::new("direct", format!("zipf{theta}")),
            &events,
            |b, events| {
                b.iter(|| {
                    let store = TdStore::new(StoreConfig::default());
                    for &k in events {
                        store.incr_f64(&k.to_le_bytes(), 1.0).unwrap();
                    }
                    store
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("combined", format!("zipf{theta}")),
            &events,
            |b, events| {
                b.iter(|| {
                    let store = TdStore::new(StoreConfig::default());
                    let mut combiner = Combiner::new(CombineOp::Add, 1_024);
                    for &k in events {
                        if let Some(batch) = combiner.add(k, 1.0) {
                            for (key, delta) in batch {
                                store.incr_f64(&key.to_le_bytes(), delta).unwrap();
                            }
                        }
                    }
                    for (key, delta) in combiner.flush() {
                        store.incr_f64(&key.to_le_bytes(), delta).unwrap();
                    }
                    store
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
