//! §4.1.3: the cost of reflecting ONE new observation — incremental
//! update vs rebuilding the model, at several accumulated-history sizes.
//! This is the asymmetry that makes real-time recommendation feasible at
//! all: the incremental path is O(items-in-history) while the rebuild is
//! O(total actions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::cf::{CfConfig, ItemCF};

fn history(n: usize) -> Vec<UserAction> {
    let mut rng = SmallRng::seed_from_u64(2);
    (0..n)
        .map(|i| {
            UserAction::new(
                rng.gen_range(0..(n as u64 / 20).max(10)),
                rng.gen_range(0..(n as u64 / 40).max(10)),
                ActionType::Click,
                i as u64 * 10,
            )
        })
        .collect()
}

fn config() -> CfConfig {
    CfConfig {
        pruning_delta: None,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_new_observation");
    group.sample_size(10);
    for size in [2_000usize, 10_000, 50_000] {
        let actions = history(size);
        let probe = UserAction::new(1, 3, ActionType::Purchase, size as u64 * 10);

        // Incremental: a warm model absorbs one action.
        let mut warm = ItemCF::new(config());
        for a in &actions {
            warm.process(a);
        }
        group.bench_with_input(BenchmarkId::new("incremental", size), &size, |b, _| {
            b.iter_batched(
                || warm.clone(), // clone outside the timing loop
                |mut cf| {
                    cf.process(&probe);
                    std::hint::black_box(cf.stats())
                },
                criterion::BatchSize::LargeInput,
            )
        });

        // Batch: rebuild from the full history including the new action
        // (what a periodic system pays, amortised over its period).
        group.bench_with_input(BenchmarkId::new("rebuild", size), &size, |b, _| {
            b.iter(|| {
                let mut cf = ItemCF::new(config());
                for a in &actions {
                    cf.process(a);
                }
                cf.process(&probe);
                std::hint::black_box(cf.stats())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
