//! End-to-end throughput of the Fig. 6 CF topology (spout → pretreatment →
//! history → counts/pairs → TDStore), the single-machine counterpart of
//! §6.1's cluster numbers. Besides wall-clock throughput, one profiling
//! pass reports each bolt's per-execute latency distribution (p50/p99) —
//! tails, not means, are what size a topology for a latency target.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use crossbeam::channel::unbounded;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{build_cf_topology, CfParallelism, CfPipelineConfig};

const ACTIONS: usize = 20_000;

fn workload() -> Vec<UserAction> {
    let mut rng = SmallRng::seed_from_u64(4);
    (0..ACTIONS)
        .map(|i| {
            UserAction::new(
                rng.gen_range(0..2_000u64),
                rng.gen_range(0..500u64),
                if rng.gen_bool(0.3) {
                    ActionType::Purchase
                } else {
                    ActionType::Click
                },
                i as u64 * 10,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let actions = workload();
    let mut group = c.benchmark_group("topology");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ACTIONS as u64));
    group.bench_function("cf_pipeline_20k_actions", |b| {
        b.iter(|| {
            let store = TdStore::new(StoreConfig::default());
            let (tx, rx) = unbounded();
            let topo = build_cf_topology(
                rx,
                store,
                CfPipelineConfig::default(),
                CfParallelism::default(),
            )
            .expect("valid topology");
            let handle = topo.launch();
            for a in &actions {
                tx.send(*a).unwrap();
            }
            drop(tx);
            assert!(handle.wait_idle(Duration::from_secs(120)));
            handle.shutdown(Duration::from_secs(5));
        })
    });
    group.finish();

    // One profiled pass: per-bolt execute-latency percentiles from the
    // topology's own metrics (printed once, outside the timed samples).
    let store = TdStore::new(StoreConfig::default());
    let (tx, rx) = unbounded();
    let topo = build_cf_topology(
        rx,
        store,
        CfPipelineConfig::default(),
        CfParallelism::default(),
    )
    .expect("valid topology");
    let handle = topo.launch();
    for a in &actions {
        tx.send(*a).unwrap();
    }
    drop(tx);
    assert!(handle.wait_idle(Duration::from_secs(120)));
    let metrics = handle.shutdown(Duration::from_secs(5));
    println!("per-bolt execute latency over {ACTIONS} actions:");
    for m in &metrics {
        if m.executed > 0 {
            println!(
                "  {:<14} {}",
                m.component,
                m.exec_latency.format_percentiles()
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
