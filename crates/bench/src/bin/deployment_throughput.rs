//! §6.1 deployment claims, scaled to one machine: sustained action
//! throughput through the full Fig. 6 CF topology (spout → pretreatment →
//! user history → itemCount/pair bolts → TDStore), and the end-to-end
//! freshness claim — "whenever an event occurs, it costs less than one
//! second for TencentRec to respond to this change and update the
//! recommendation results".

use crossbeam::channel::unbounded;
use std::time::{Duration, Instant};
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{
    build_cf_topology, CfParallelism, CfPipelineConfig, TopologyRecommender,
};

fn main() {
    // --- Throughput ---------------------------------------------------
    const ACTIONS: usize = 200_000;
    const USERS: u64 = 5_000;
    const ITEMS: u64 = 2_000;
    let store = TdStore::new(StoreConfig {
        instances: 64,
        ..Default::default()
    });
    let (tx, rx) = unbounded();
    let config = CfPipelineConfig::default();
    let topo = build_cf_topology(rx, store.clone(), config.clone(), CfParallelism::default())
        .expect("valid topology");
    let handle = topo.launch();

    let start = Instant::now();
    for i in 0..ACTIONS as u64 {
        let user = i % USERS;
        // Zipf-flavoured item popularity.
        let item = (i * i + i) % ITEMS;
        let action = match i % 10 {
            0..=5 => ActionType::Browse,
            6..=8 => ActionType::Click,
            _ => ActionType::Purchase,
        };
        tx.send(UserAction::new(user, item, action, i)).unwrap();
    }
    drop(tx);
    assert!(
        handle.wait_idle(Duration::from_secs(300)),
        "pipeline did not drain"
    );
    let elapsed = start.elapsed();
    let metrics = handle.shutdown(Duration::from_secs(5));

    println!("== Deployment-scale throughput (single machine) ==");
    println!(
        "{ACTIONS} actions in {:.2}s  ->  {:.0} actions/s",
        elapsed.as_secs_f64(),
        ACTIONS as f64 / elapsed.as_secs_f64()
    );
    for m in &metrics {
        println!(
            "  {:<14} executed {:>8}  emitted {:>8}  exec p50 {:>8.1} µs  p99 {:>8.1} µs  max {:>8.1} µs",
            m.component,
            m.executed,
            m.emitted,
            m.exec_latency.p50().as_secs_f64() * 1e6,
            m.exec_latency.p99().as_secs_f64() * 1e6,
            m.exec_latency.max().as_secs_f64() * 1e6,
        );
    }
    let total_execs: u64 = metrics.iter().map(|m| m.executed).sum();
    println!(
        "computations per action: {:.1} (paper: ~50 computations per request)",
        total_execs as f64 / ACTIONS as f64
    );

    // §7 future work, implemented: automatic parallelism from the profile.
    let plan = tstorm::planner::plan_from_metrics(
        &metrics,
        "spout",
        500_000.0, // the paper's peak: 0.5M requests/s
        &tstorm::planner::PlannerConfig::default(),
    )
    .expect("profile is non-empty");
    println!("\nauto-parallelism plan for the paper's 0.5M req/s peak:");
    for c in &plan.components {
        println!(
            "  {:<14} amplification {:>5.2}  service {:>7.1} µs  -> {:>3} tasks",
            c.component,
            c.amplification,
            c.service_time_s * 1e6,
            c.tasks
        );
    }
    println!("  total: {} tasks", plan.total_tasks());

    // --- Freshness -----------------------------------------------------
    // A brand-new co-click pair must be visible in recommendations within
    // one second of the action being enqueued.
    let store = TdStore::new(StoreConfig::default());
    let (tx, rx) = unbounded();
    let topo = build_cf_topology(rx, store.clone(), config.clone(), CfParallelism::default())
        .expect("valid topology");
    let handle = topo.launch();
    let query = TopologyRecommender::new(store, config);

    // Seed: 50 users co-click items 1 and 2.
    for u in 0..50u64 {
        tx.send(UserAction::new(u, 1, ActionType::Click, u))
            .unwrap();
        tx.send(UserAction::new(u, 2, ActionType::Click, u + 1))
            .unwrap();
    }
    handle.wait_idle(Duration::from_secs(30));
    // The probe user clicks item 1; measure until item 2 is recommended.
    let t0 = Instant::now();
    tx.send(UserAction::new(999, 1, ActionType::Click, 1_000))
        .unwrap();
    let mut latency = None;
    while t0.elapsed() < Duration::from_secs(5) {
        let recs = query.recommend(999, 3);
        if recs.first().map(|r| r.0) == Some(2) {
            latency = Some(t0.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    drop(tx);
    handle.shutdown(Duration::from_secs(5));
    match latency {
        Some(l) => println!(
            "\nend-to-end freshness: action -> updated recommendation in {:.2} ms (paper: < 1 s)",
            l.as_secs_f64() * 1e3
        ),
        None => println!("\nend-to-end freshness: NOT ACHIEVED within 5 s"),
    }
}
