//! §4.3 ablation: sliding-window size sensitivity.
//!
//! "As data of different types have different life cycles, we provide the
//! flexibility to get recommendations over sliding window of different
//! time intervals." This ablation runs the video scenario with several
//! window lengths: too short forgets the co-occurrence signal, too long
//! (or unbounded) drowns current trends in stale counts.

use tencentrec::action::ActionWeights;
use tencentrec::cf::{CfConfig, ItemCF, WindowConfig};
use tencentrec::db::{DemographicRec, GroupScheme};
use tencentrec::engine::{Primary, RecommendEngine};
use workload::apps::video_app;
use workload::{run_simulation, DayMetrics, World};

fn arm(window: Option<WindowConfig>) -> RecommendEngine {
    RecommendEngine::new(
        Primary::Cf(ItemCF::new(CfConfig {
            window,
            linked_time_ms: 3 * 24 * 60 * 60 * 1000,
            top_k: 20,
            recent_k: 10,
            pruning_delta: None,
            ..Default::default()
        })),
        DemographicRec::new(GroupScheme::default(), ActionWeights::default(), window),
        0.0,
    )
}

fn main() {
    const HOUR: u64 = 60 * 60 * 1000;
    let windows: [(&str, Option<WindowConfig>); 5] = [
        (
            "6 hours",
            Some(WindowConfig {
                session_ms: HOUR,
                sessions: 6,
            }),
        ),
        (
            "1 day",
            Some(WindowConfig {
                session_ms: HOUR,
                sessions: 24,
            }),
        ),
        (
            "3 days",
            Some(WindowConfig {
                session_ms: HOUR,
                sessions: 72,
            }),
        ),
        (
            "7 days",
            Some(WindowConfig {
                session_ms: HOUR,
                sessions: 168,
            }),
        ),
        ("unbounded", None),
    ];
    println!("== Ablation: sliding-window size (video scenario, 7 days) ==");
    println!(
        "{:<11} {:>8} {:>13} {:>8}",
        "window", "CTR", "impressions", "clicks"
    );
    for (label, window) in windows {
        let app = video_app(31, 7);
        let mut world = World::new(app.world.clone());
        let mut rec = arm(window);
        let days = run_simulation(&mut world, &mut rec, &app.clicks, &app.sim);
        let impressions: u64 = days.iter().map(|d| d.impressions).sum();
        let clicks: u64 = days.iter().map(|d| d.clicks).sum();
        let ctr = days.iter().map(DayMetrics::ctr).sum::<f64>() / days.len() as f64;
        println!(
            "{label:<11} {:>7.2}% {impressions:>13} {clicks:>8}",
            ctr * 100.0
        );
    }
}
