//! Figure 11: average read count per user of Tencent News over one week —
//! TencentRec vs the hourly-rebuilt Original. Reads = organic reads plus
//! reads driven by clicked recommendations, so better recommendations lift
//! the curve.

use bench::{print_daily_reads, run_arms};
use workload::apps::{news_app, original_news_arm, tencentrec_news_arm};

fn main() {
    let app = news_app(2024, 7);
    let results = run_arms(
        &app,
        |world| tencentrec_news_arm(world.catalog().clone()),
        |world| original_news_arm(world.catalog().clone(), 60 * 60 * 1000),
    );
    print_daily_reads(
        "Figure 11: Tencent News average read count per user, one week",
        &results,
    );
}
