//! §4.1.4 ablation: linked time.
//!
//! "When the linked time between news is set to six hours [...] there
//! will be ten item pairs generated to update for each user action. For
//! recommendations in most situations such as e-commerce websites, the
//! linked time is usually set to be three days or seven days, with nearly
//! one hundred item pairs generated for each user action." This ablation
//! sweeps the linked time and reports pair updates per action — the cost
//! curve that motivates real-time pruning.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tencentrec::action::{ActionType, UserAction};
use tencentrec::cf::{CfConfig, ItemCF};

/// The paper's news profile: "each user has more than ten news rated in
/// average everyday" — 300 users × 10 actions/day × 7 days over a 5k-item
/// catalog.
fn workload(seed: u64) -> Vec<UserAction> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let users = 300u64;
    let day_ms = 86_400_000u64;
    for day in 0..7u64 {
        for user in 0..users {
            for slot in 0..10u64 {
                let ts = day * day_ms + slot * (day_ms / 10) + user;
                let item = rng.gen_range(0..5_000u64);
                out.push(UserAction::new(user, item, ActionType::Click, ts));
            }
        }
    }
    out.sort_by_key(|a| a.timestamp);
    out
}

fn main() {
    let actions = workload(3);
    const HOUR: u64 = 60 * 60 * 1000;
    println!(
        "== Ablation: linked time ({} actions, 7 days, 300 users) ==",
        actions.len()
    );
    println!(
        "{:<12} {:>13} {:>18} {:>9}",
        "linked time", "pair updates", "pairs per action", "time(s)"
    );
    for (label, linked) in [
        ("1 hour", HOUR),
        ("6 hours", 6 * HOUR),
        ("1 day", 24 * HOUR),
        ("3 days", 3 * 24 * HOUR),
        ("7 days", 7 * 24 * HOUR),
    ] {
        let mut cf = ItemCF::new(CfConfig {
            linked_time_ms: linked,
            pruning_delta: None,
            ..Default::default()
        });
        let start = Instant::now();
        for a in &actions {
            cf.process(a);
        }
        let stats = cf.stats();
        println!(
            "{label:<12} {:>13} {:>18.1} {:>9.2}",
            stats.pair_updates,
            stats.pair_updates as f64 / stats.actions as f64,
            start.elapsed().as_secs_f64()
        );
    }
}
