//! Serving latency under load: drives the tserve TCP server with an
//! open-loop (paced-arrival) workload at several offered rates and
//! reports served req/s, latency percentiles, and shed rate per level.
//!
//! The paper's serving claim is latency bounded under a 0.5M req/s peak
//! (§6.1); the single-machine counterpart is the *shape* of the curve:
//! below saturation the server keeps p99 near service time with no
//! shedding, and past saturation admission control sheds the excess
//! while the latency of admitted requests stays bounded — instead of
//! every response going late.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::engine::default_cf_engine;
use tserve::{Client, ClientConfig, ClientError, Server, ServerConfig};
use workload::driver::{closed_loop, open_loop, CallOutcome};

const USERS: u64 = 20_000;
const ITEMS: u64 = 2_000;
const SEED_ACTIONS: usize = 100_000;
const DEADLINE_MS: u32 = 50;
const LEVEL_SECS: u64 = 2;

fn main() {
    let shards = std::thread::available_parallelism()
        .map(|p| p.get().clamp(2, 8))
        .unwrap_or(4);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            queue_capacity: 128,
            default_deadline: Duration::from_millis(DEADLINE_MS as u64),
            max_page: 100,
            ..Default::default()
        },
        Arc::new(|_| default_cf_engine()),
    )
    .expect("bind server");
    let addr = server.local_addr().to_string();
    println!("tserve on {addr}: {shards} shards, queue capacity 128");

    // Warm the engines over the wire so queries have CF candidates.
    let loader = Client::connect(&addr, ClientConfig::default()).expect("connect loader");
    let mut rng = SmallRng::seed_from_u64(7);
    let t0 = Instant::now();
    let mut pending: Vec<(UserAction, tserve::Pending)> = Vec::with_capacity(64);
    let drain = |pending: &mut Vec<(UserAction, tserve::Pending)>| {
        for (action, p) in pending.drain(..) {
            let mut response = p.wait().expect("action response");
            // An overloaded ingest queue sheds; retry until admitted so
            // the sweep runs against fully seeded engines.
            while response == tserve::Response::Overloaded {
                std::thread::sleep(Duration::from_micros(200));
                response = loader
                    .submit(&tserve::Request::ReportAction { action })
                    .expect("resubmit action")
                    .wait()
                    .expect("action response");
            }
            assert_eq!(response, tserve::Response::Ack);
        }
    };
    for i in 0..SEED_ACTIONS {
        let user = rng.gen_range(0..USERS);
        let item = zipfish(&mut rng);
        let action = UserAction::new(user, item, ActionType::Click, i as u64);
        pending.push((
            action,
            loader
                .submit(&tserve::Request::ReportAction { action })
                .expect("submit action"),
        ));
        // Pipeline in batches sized below the shard queues so seeding
        // mostly avoids shedding in the first place.
        if pending.len() == 64 {
            drain(&mut pending);
        }
    }
    drain(&mut pending);
    println!(
        "seeded {SEED_ACTIONS} actions over the wire in {:.2}s\n",
        t0.elapsed().as_secs_f64()
    );

    // Probe single-machine capacity with a short closed loop, then offer
    // fixed rates below, near, and past it. The sweep needs enough
    // blocked-on-response workers to exceed the shard queues combined
    // (shards × queue_capacity), otherwise overload can never reach
    // admission control and just queues in the driver.
    let workers = 2 * shards;
    let sweep_workers = shards * 128 + 128;
    let client = Client::connect(
        &addr,
        ClientConfig {
            connections: 2 * shards,
            request_timeout: Duration::from_secs(10),
            ..Default::default()
        },
    )
    .expect("connect driver");
    let call = |n: u64| match client.recommend(n % USERS, 10, DEADLINE_MS) {
        Ok(_) => CallOutcome::Ok,
        Err(ClientError::Overloaded) => CallOutcome::Shed,
        Err(_) => CallOutcome::Error,
    };
    let probe = closed_loop(workers, Duration::from_secs(1), call);
    let capacity = probe.throughput().max(100.0);
    println!("closed-loop probe ({workers} workers): {}", probe.summary());

    println!("\noffered-load sweep ({LEVEL_SECS}s per level, deadline {DEADLINE_MS}ms):");
    println!(
        "{:>12}  {:>12}  {:>9}  {:>9}  {:>9}  {:>9}  {:>7}",
        "offered/s", "served/s", "p50", "p90", "p99", "max", "shed%"
    );
    for factor in [0.5, 0.9, 1.5, 2.5] {
        let rate = capacity * factor;
        let report = open_loop(rate, sweep_workers, Duration::from_secs(LEVEL_SECS), call);
        println!(
            "{:>12.0}  {:>12.0}  {:>9.2?}  {:>9.2?}  {:>9.2?}  {:>9.2?}  {:>6.1}%",
            rate,
            report.throughput(),
            report.latency.p50(),
            report.latency.p90(),
            report.latency.p99(),
            report.latency.max(),
            report.shed_rate() * 100.0,
        );
    }

    let stats = client.stats().expect("stats");
    println!(
        "\nserver totals: served {}  shed {}  expired {}  actions {}",
        stats.served, stats.shed, stats.expired, stats.actions
    );
    println!(
        "server-side latency (admission -> reply): {}",
        stats.latency.format_percentiles()
    );
    server.shutdown();
}

/// Zipf-flavoured item popularity: quadratic probing concentrates mass
/// on a small head without a heavy sampling dependency.
fn zipfish(rng: &mut SmallRng) -> u64 {
    let r: f64 = rng.gen_range(0.0..1.0);
    ((r * r * r) * ITEMS as f64) as u64
}
