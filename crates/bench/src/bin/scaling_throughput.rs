//! §3.1 scalability: "it need to be linearly scalable, easily extended to
//! more machines to support numerous computations."
//!
//! On one machine the analogue is task scaling: pipeline throughput as
//! every bolt's parallelism multiplies. Perfect linearity is not expected
//! (bolts contend on TDStore shards and the spout is a single producer),
//! but throughput must grow with parallelism and not collapse.

use crossbeam::channel::unbounded;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{build_cf_topology, CfParallelism, CfPipelineConfig};

const ACTIONS: usize = 150_000;

fn workload() -> Vec<UserAction> {
    let mut rng = SmallRng::seed_from_u64(9);
    (0..ACTIONS)
        .map(|i| {
            UserAction::new(
                rng.gen_range(0..20_000u64),
                rng.gen_range(0..4_000u64),
                if rng.gen_bool(0.3) {
                    ActionType::Purchase
                } else {
                    ActionType::Click
                },
                i as u64 * 5,
            )
        })
        .collect()
}

fn run(actions: &[UserAction], scale: usize) -> f64 {
    let store = TdStore::new(StoreConfig {
        instances: 64,
        ..Default::default()
    });
    let (tx, rx) = unbounded();
    let parallelism = CfParallelism {
        spouts: 1,
        pretreatment: scale,
        history: 2 * scale,
        item_count: scale,
        pair: 2 * scale,
    };
    let topo = build_cf_topology(rx, store, CfPipelineConfig::default(), parallelism)
        .expect("valid topology");
    let handle = topo.launch();
    let start = Instant::now();
    for a in actions {
        tx.send(*a).unwrap();
    }
    drop(tx);
    assert!(handle.wait_idle(Duration::from_secs(300)), "stalled");
    let elapsed = start.elapsed().as_secs_f64();
    handle.shutdown(Duration::from_secs(5));
    actions.len() as f64 / elapsed
}

fn main() {
    let actions = workload();
    println!("== Scaling: CF pipeline throughput vs bolt parallelism ==");
    println!(
        "cores available: {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    );
    println!(
        "{:>6} {:>6} {:>16} {:>9}",
        "scale", "tasks", "actions/s", "speedup"
    );
    let mut base = None;
    for scale in [1usize, 2, 4] {
        let rate = run(&actions, scale);
        let tasks = 1 + scale + 2 * scale + scale + 2 * scale;
        let speedup = base.map_or(1.0, |b: f64| rate / b);
        if base.is_none() {
            base = Some(rate);
        }
        println!("{scale:>6} {tasks:>6} {rate:>16.0} {speedup:>8.2}x");
    }
    if std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        <= 2
    {
        println!(
            "
note: with <=2 cores the added tasks only time-share one CPU, so no \
speedup is observable here; on a multi-core host the same binary \
demonstrates the near-linear task scaling the paper claims."
        );
    }
}
