//! Batch-transport benchmark: throughput of shuffle- and fields-grouped
//! micro topologies and the full CF pipeline at batch size 1 (the
//! pre-batching per-tuple transport) versus the default batch size 64,
//! with per-bolt execute-latency percentiles and allocations per tuple.
//!
//! Writes `BENCH_topology.json` at the repo root. Modes:
//!
//! - default: full-size run, rewrites the `full` section (and refreshes
//!   `smoke` too — the smoke pass is cheap).
//! - `--smoke`: small sizes only, rewrites just the `smoke` section,
//!   preserving an existing `full` section.
//! - `--check`: after a smoke run, compares the smoke CF throughput at
//!   batch 64 against the committed baseline and exits non-zero on a
//!   regression beyond 20%. `BENCH_REBASELINE=1` rewrites the baseline
//!   instead of failing.
//!
//! Every mode also runs the `cluster` section: the same shuffle micro
//! topology split across two worker OS processes (spout worker → TCP →
//! supervisor relay → TCP → bolt worker), measuring spout-emit →
//! tree-acked throughput over the remote edge against an in-process run
//! of the identical topology.

use crossbeam::channel::unbounded;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{build_cf_topology_with_spout, CfParallelism, CfPipelineConfig};
use tstorm::prelude::*;

/// Counts allocations (and growth reallocations) so the report can state
/// allocations per transported tuple — the cheap proxy for per-tuple
/// transport overhead that doesn't need a profiler.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Batch size 1 is the pre-batching baseline and must behave like the
/// per-tuple transport it replaces: a zero flush interval makes the spout
/// flush after every emit, so each tuple pays its own downstream send and
/// its own acker Init instead of riding an interval-batched flush.
fn baseline_flush(batch_size: usize) -> Duration {
    if batch_size == 1 {
        Duration::ZERO
    } else {
        Duration::from_millis(1)
    }
}

// ---------------------------------------------------------------------
// Micro topology: spout -> counting bolt across one grouped edge.
// ---------------------------------------------------------------------

struct NumberSpout {
    next: u64,
    total: u64,
}

impl Spout for NumberSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        if self.next >= self.total {
            return false;
        }
        let i = self.next;
        self.next += 1;
        collector.emit_values(&[Value::U64(i % 64), Value::U64(i)], Some(i));
        true
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key", "seq"])]
    }
}

struct CountBolt {
    seen: Arc<AtomicU64>,
}

impl Bolt for CountBolt {
    fn execute(&mut self, _tuple: &Tuple, _c: &mut BoltCollector) -> Result<(), String> {
        self.seen.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

struct MicroResult {
    tuples_per_sec: f64,
    allocs_per_tuple: f64,
    bolt_p50_us: f64,
    bolt_p99_us: f64,
}

fn run_micro(grouping: Grouping, batch_size: usize, tuples: u64) -> MicroResult {
    let seen = Arc::new(AtomicU64::new(0));
    let mut builder = TopologyBuilder::new().with_config(TopologyConfig {
        batch_size,
        flush_interval: baseline_flush(batch_size),
        ..Default::default()
    });
    builder.set_spout(
        "numbers",
        move || NumberSpout {
            next: 0,
            total: tuples,
        },
        1,
    );
    {
        let seen = Arc::clone(&seen);
        builder
            .set_bolt(
                "count",
                move || CountBolt {
                    seen: Arc::clone(&seen),
                },
                2,
            )
            .grouping_on("numbers", DEFAULT_STREAM, grouping);
    }
    let topo = builder.build().expect("valid micro topology");
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let handle = topo.launch();
    assert!(
        handle.wait_idle(Duration::from_secs(300)),
        "micro topology stalled"
    );
    let elapsed = t0.elapsed();
    let metrics = handle.shutdown(Duration::from_secs(5));
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(seen.load(Ordering::Relaxed), tuples, "lost tuples");
    let count = metrics
        .iter()
        .find(|m| m.component == "count")
        .expect("count bolt metrics");
    MicroResult {
        tuples_per_sec: tuples as f64 / elapsed.as_secs_f64(),
        allocs_per_tuple: allocs as f64 / tuples as f64,
        bolt_p50_us: count.exec_latency.p50().as_nanos() as f64 / 1_000.0,
        bolt_p99_us: count.exec_latency.p99().as_nanos() as f64 / 1_000.0,
    }
}

// ---------------------------------------------------------------------
// Cluster: the micro topology split across two worker processes, the
// remote edge going spout worker → supervisor relay → bolt worker over
// batched TCP frames. Both sides of the comparison measure the full
// spout-emit → tree-acked loop, so the delta is the wire (plus the
// relayed acker round-trip), not a change in what is being timed.
// ---------------------------------------------------------------------

/// Worker processes inherit this env var from the supervisor, so every
/// process builds the same-sized topology.
const ENV_CLUSTER_TUPLES: &str = "BENCH_CLUSTER_TUPLES";

fn cluster_tuples() -> u64 {
    std::env::var(ENV_CLUSTER_TUPLES)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

struct AckedSpout {
    next: u64,
    total: u64,
    replay: std::collections::VecDeque<u64>,
    acked: Arc<AtomicU64>,
}

impl Spout for AckedSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        let value = self.replay.pop_front().or_else(|| {
            (self.next < self.total).then(|| {
                let v = self.next;
                self.next += 1;
                v
            })
        });
        match value {
            Some(v) => {
                collector.emit_values(&[Value::U64(v % 64), Value::U64(v)], Some(v));
                true
            }
            None => false,
        }
    }
    fn ack(&mut self, _msg_id: u64) {
        self.acked.fetch_add(1, Ordering::Relaxed);
    }
    fn fail(&mut self, msg_id: u64) {
        self.replay.push_back(msg_id);
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key", "seq"])]
    }
}

/// The shared app builder: every process (supervisor probe, both
/// workers, and the in-process baseline) constructs this same topology.
fn cluster_app(_ctx: &tcluster::WorkerContext) -> tcluster::ClusterApp {
    let total = cluster_tuples();
    let acked = Arc::new(AtomicU64::new(0));
    let mut builder = TopologyBuilder::new().with_config(TopologyConfig {
        batch_size: 64,
        flush_interval: Duration::from_millis(1),
        ..Default::default()
    });
    builder.set_spout(
        "numbers",
        {
            let acked = Arc::clone(&acked);
            move || AckedSpout {
                next: 0,
                total,
                replay: std::collections::VecDeque::new(),
                acked: Arc::clone(&acked),
            }
        },
        1,
    );
    builder
        .set_bolt(
            "count",
            || CountBolt {
                seen: Arc::new(AtomicU64::new(0)),
            },
            2,
        )
        .shuffle_grouping("numbers");
    let mut app = tcluster::ClusterApp::new(builder.build().expect("valid cluster topology"));
    app.progress = Some(Arc::new(move || acked.load(Ordering::Relaxed)));
    app
}

struct ClusterResult {
    tuples: u64,
    in_process_tps: f64,
    remote_edge_tps: f64,
    relayed_batches: u64,
}

fn run_cluster(tuples: u64) -> ClusterResult {
    // Children inherit the size, so all three processes agree on `total`.
    std::env::set_var(ENV_CLUSTER_TUPLES, tuples.to_string());

    // In-process baseline: identical app, same acked-count finish line.
    let probe = cluster_app(&tcluster::WorkerContext {
        worker_id: u32::MAX,
        recovered: None,
    });
    let progress = probe.progress.clone().expect("progress probe");
    let t0 = Instant::now();
    let handle = probe.topology.launch();
    while progress() < tuples {
        assert!(
            t0.elapsed() < Duration::from_secs(300),
            "in-process cluster baseline stalled at {}/{tuples}",
            progress()
        );
        std::thread::yield_now();
    }
    let in_process_tps = tuples as f64 / t0.elapsed().as_secs_f64();
    handle.shutdown(Duration::from_secs(5));

    // Two worker processes; the numbers→count edge crosses both hops.
    let mut config = tcluster::SupervisorConfig::new(vec![
        tcluster::WorkerSpec::new(["numbers"]),
        tcluster::WorkerSpec::new(["count"]),
    ]);
    config.message_timeout = Duration::from_secs(60);
    let cluster = tcluster::Cluster::launch(config, cluster_app).expect("launch bench cluster");
    // Progress snapshots arrive on the workers' 50 ms status cadence.
    // Start the clock at the first non-zero snapshot and count only the
    // acks after it, so worker spawn/connect setup stays out of the rate
    // and the 50 ms reporting granularity is the error bar, not the
    // measurement.
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut first = None;
    loop {
        let p = cluster.progress(0);
        if p > 0 && first.is_none() {
            first = Some((p, Instant::now()));
        }
        if p >= tuples {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "cluster bench stalled at {p}/{tuples}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let (p0, t0) = first.expect("first progress snapshot");
    assert!(
        p0 < tuples,
        "cluster run finished within one status interval; raise the tuple count"
    );
    let remote_edge_tps = (tuples - p0) as f64 / t0.elapsed().as_secs_f64();
    let relayed_batches = cluster.relayed_batches();
    cluster.shutdown(Duration::from_secs(10));
    ClusterResult {
        tuples,
        in_process_tps,
        remote_edge_tps,
        relayed_batches,
    }
}

fn cluster_json(r: &ClusterResult) -> String {
    format!(
        concat!(
            "\"cluster\": {{\n",
            "    \"tuples\": {},\n",
            "    \"in_process_tps\": {:.0},\n",
            "    \"remote_edge_tps\": {:.0},\n",
            "    \"remote_vs_local\": {:.2},\n",
            "    \"relayed_batches\": {}\n",
            "  }}"
        ),
        r.tuples,
        r.in_process_tps,
        r.remote_edge_tps,
        r.remote_edge_tps / r.in_process_tps,
        r.relayed_batches,
    )
}

// ---------------------------------------------------------------------
// CF pipeline throughput + per-bolt latency percentiles.
// ---------------------------------------------------------------------

fn cf_workload(actions: usize) -> Vec<UserAction> {
    let mut rng = SmallRng::seed_from_u64(4);
    (0..actions)
        .map(|i| {
            UserAction::new(
                rng.gen_range(0..2_000u64),
                rng.gen_range(0..500u64),
                if rng.gen_bool(0.3) {
                    ActionType::Share
                } else {
                    ActionType::Click
                },
                i as u64 * 10,
            )
        })
        .collect()
}

struct CfResult {
    tuples_per_sec: f64,
    bolt_latency: Vec<(String, f64, f64)>, // (bolt, p50_us, p99_us)
    /// Per-bolt p99 of messages drained per receive, read back from the
    /// observability registry (`tstorm_batch_size`) rather than the
    /// shutdown metrics — proves the exposition path carries the same
    /// story the bench tells.
    batch_p99: Vec<(String, f64)>,
}

fn run_cf(actions: &[UserAction], batch_size: usize) -> CfResult {
    let store = TdStore::new(StoreConfig::default());
    let (tx, rx) = unbounded();
    let topo = build_cf_topology_with_spout(
        move || tencentrec::topology::ActionSpout::new(rx.clone()),
        store,
        CfPipelineConfig::default(),
        CfParallelism::default(),
        TopologyConfig {
            batch_size,
            flush_interval: baseline_flush(batch_size),
            ..Default::default()
        },
    )
    .expect("valid topology");
    let t0 = Instant::now();
    let handle = topo.launch();
    for a in actions {
        tx.send(*a).unwrap();
    }
    drop(tx);
    assert!(
        handle.wait_idle(Duration::from_secs(600)),
        "cf pipeline stalled"
    );
    let elapsed = t0.elapsed();
    let registry = handle.registry();
    let metrics = handle.shutdown(Duration::from_secs(5));
    let bolt_latency: Vec<(String, f64, f64)> = metrics
        .iter()
        .filter(|m| m.executed > 0 && m.component != "spout")
        .map(|m| {
            (
                m.component.clone(),
                m.exec_latency.p50().as_nanos() as f64 / 1_000.0,
                m.exec_latency.p99().as_nanos() as f64 / 1_000.0,
            )
        })
        .collect();
    // `tstorm_batch_size` is a dimensionless-values histogram, so the
    // "nanos" quantile is the raw batch size.
    let batch_p99 = bolt_latency
        .iter()
        .filter_map(|(name, _, _)| {
            registry
                .histogram_snapshot("tstorm_batch_size", &[("component", name)])
                .map(|s| (name.clone(), s.quantile_nanos(0.99) as f64))
        })
        .collect();
    CfResult {
        tuples_per_sec: actions.len() as f64 / elapsed.as_secs_f64(),
        bolt_latency,
        batch_p99,
    }
}

// ---------------------------------------------------------------------
// Hand-rolled JSON (no serde in the tree).
// ---------------------------------------------------------------------

fn micro_json(label: &str, b1: &MicroResult, b64: &MicroResult) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"batch1_tps\": {:.0},\n",
            "      \"batch64_tps\": {:.0},\n",
            "      \"speedup\": {:.2},\n",
            "      \"allocs_per_tuple_batch1\": {:.1},\n",
            "      \"allocs_per_tuple_batch64\": {:.1},\n",
            "      \"bolt_p50_us_batch64\": {:.3},\n",
            "      \"bolt_p99_us_batch64\": {:.3}\n",
            "    }}"
        ),
        label,
        b1.tuples_per_sec,
        b64.tuples_per_sec,
        b64.tuples_per_sec / b1.tuples_per_sec,
        b1.allocs_per_tuple,
        b64.allocs_per_tuple,
        b64.bolt_p50_us,
        b64.bolt_p99_us,
    )
}

fn cf_json(actions: usize, b1: &CfResult, b64: &CfResult) -> String {
    let bolts: Vec<String> = b64
        .bolt_latency
        .iter()
        .map(|(name, p50, p99)| {
            format!("        \"{name}\": {{\"p50_us\": {p50:.3}, \"p99_us\": {p99:.3}}}")
        })
        .collect();
    let batches: Vec<String> = b64
        .batch_p99
        .iter()
        .map(|(name, p99)| format!("        \"{name}\": {p99:.0}"))
        .collect();
    format!(
        concat!(
            "    \"cf_pipeline\": {{\n",
            "      \"actions\": {},\n",
            "      \"batch1_tps\": {:.0},\n",
            "      \"batch64_tps\": {:.0},\n",
            "      \"speedup\": {:.2},\n",
            "      \"bolt_latency_batch64\": {{\n{}\n      }},\n",
            "      \"obs_batch_size_p99_batch64\": {{\n{}\n      }}\n",
            "    }}"
        ),
        actions,
        b1.tuples_per_sec,
        b64.tuples_per_sec,
        b64.tuples_per_sec / b1.tuples_per_sec,
        bolts.join(",\n"),
        batches.join(",\n"),
    )
}

/// Extracts a `"name": { ... }` top-level section verbatim (brace
/// matching; the writer emits no braces inside strings).
fn extract_section(json: &str, name: &str) -> Option<String> {
    let start = json.find(&format!("\"{name}\": {{"))?;
    let open = start + name.len() + 4;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[start..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads `"key": <number>` from within the named ordered subsections.
fn extract_number(json: &str, path: &[&str], key: &str) -> Option<f64> {
    let mut slice = json;
    for part in path {
        let at = slice.find(&format!("\"{part}\""))?;
        slice = &slice[at..];
    }
    let at = slice.find(&format!("\"{key}\":"))?;
    let rest = slice[at + key.len() + 3..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    // The supervisor re-executes this binary as its workers; divert those
    // re-executions into the worker runtime before any benching starts.
    if tcluster::maybe_run_worker(cluster_app) {
        unreachable!("maybe_run_worker exits the process in worker mode");
    }
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let bench_path = "BENCH_topology.json";

    let (micro_n, cf_n) = if smoke {
        (20_000, 2_000)
    } else {
        (200_000, 20_000)
    };

    let run_section = |micro_n: u64, cf_n: usize| -> String {
        eprintln!("  shuffle micro ({micro_n} tuples)...");
        let sh1 = run_micro(Grouping::Shuffle, 1, micro_n);
        let sh64 = run_micro(Grouping::Shuffle, 64, micro_n);
        eprintln!(
            "    batch1 {:.0}/s  batch64 {:.0}/s  ({:.2}x)",
            sh1.tuples_per_sec,
            sh64.tuples_per_sec,
            sh64.tuples_per_sec / sh1.tuples_per_sec
        );
        eprintln!("  fields micro ({micro_n} tuples)...");
        let f1 = run_micro(Grouping::fields(["key"]), 1, micro_n);
        let f64_ = run_micro(Grouping::fields(["key"]), 64, micro_n);
        eprintln!(
            "    batch1 {:.0}/s  batch64 {:.0}/s  ({:.2}x)",
            f1.tuples_per_sec,
            f64_.tuples_per_sec,
            f64_.tuples_per_sec / f1.tuples_per_sec
        );
        eprintln!("  cf pipeline ({cf_n} actions)...");
        let actions = cf_workload(cf_n);
        let cf1 = run_cf(&actions, 1);
        let cf64 = run_cf(&actions, 64);
        eprintln!(
            "    batch1 {:.0}/s  batch64 {:.0}/s  ({:.2}x)",
            cf1.tuples_per_sec,
            cf64.tuples_per_sec,
            cf64.tuples_per_sec / cf1.tuples_per_sec
        );
        for (name, p50, p99) in &cf64.bolt_latency {
            eprintln!("    {name}: p50 {p50:.3}us p99 {p99:.3}us");
        }
        for (name, p99) in &cf64.batch_p99 {
            eprintln!("    {name}: batch p99 {p99:.0} (obs registry)");
        }
        format!(
            "    \"flush_interval_ms\": 1,\n{},\n{},\n{}",
            micro_json("shuffle_micro", &sh1, &sh64),
            micro_json("fields_micro", &f1, &f64_),
            cf_json(cf_n, &cf1, &cf64),
        )
    };

    let old = std::fs::read_to_string(bench_path).unwrap_or_default();

    eprintln!("== smoke sizes ==");
    let smoke_body = run_section(20_000.min(micro_n), 2_000.min(cf_n));
    let smoke_section = format!("\"smoke\": {{\n{smoke_body}\n  }}");

    let full_section = if smoke {
        extract_section(&old, "full").unwrap_or_else(|| "\"full\": {}".to_string())
    } else {
        eprintln!("== full sizes ==");
        let full_body = run_section(micro_n, cf_n);
        format!("\"full\": {{\n{full_body}\n  }}")
    };

    if check {
        let rebaseline = std::env::var("BENCH_REBASELINE").is_ok_and(|v| v == "1");
        let new_tps = extract_number(&smoke_section, &["cf_pipeline"], "batch64_tps")
            .expect("own output parses");
        match extract_number(&old, &["smoke", "cf_pipeline"], "batch64_tps") {
            Some(base_tps) if !rebaseline => {
                let floor = base_tps * 0.8;
                eprintln!(
                    "gate: smoke cf batch64 {new_tps:.0}/s vs baseline {base_tps:.0}/s \
                     (floor {floor:.0}/s)"
                );
                if new_tps < floor {
                    eprintln!(
                        "FAIL: topology throughput regressed more than 20% \
                         (set BENCH_REBASELINE=1 to accept a new baseline)"
                    );
                    std::process::exit(1);
                }
            }
            Some(_) => eprintln!("gate: BENCH_REBASELINE=1, accepting new baseline"),
            None => eprintln!("gate: no committed baseline, writing one"),
        }
        // Absolute gates (no baseline needed): the allocation-lean
        // transport must stay under 3.1 allocations per tuple at batch 64
        // (the pre-batching transport's level; the batched hot path runs
        // at ~0.1), and the in-place history update must keep the
        // user_history bolt's tail under 500us even at smoke sizes.
        let allocs = extract_number(
            &smoke_section,
            &["shuffle_micro"],
            "allocs_per_tuple_batch64",
        )
        .expect("own output parses");
        eprintln!("gate: shuffle allocs/tuple batch64 {allocs:.1} (ceiling 3.1)");
        if allocs > 3.1 {
            eprintln!("FAIL: batched transport allocates more than 3.1 per tuple");
            std::process::exit(1);
        }
        let uh_p99 = extract_number(&smoke_section, &["cf_pipeline", "user_history"], "p99_us")
            .expect("own output parses");
        eprintln!("gate: user_history p99 {uh_p99:.1}us (ceiling 500us)");
        if uh_p99 > 500.0 {
            eprintln!("FAIL: user_history execute p99 above 500us");
            std::process::exit(1);
        }
    }

    eprintln!("== cluster (remote edge vs in-process) ==");
    let cluster = run_cluster(if smoke { 300_000 } else { 1_000_000 });
    eprintln!(
        "  in-process {:.0}/s  remote edge {:.0}/s  ({:.2}x, {} relayed batches)",
        cluster.in_process_tps,
        cluster.remote_edge_tps,
        cluster.remote_edge_tps / cluster.in_process_tps,
        cluster.relayed_batches
    );
    let cluster_section = cluster_json(&cluster);

    // The `recovery` section is owned by `recovery_bench`; carry it over.
    let json = match extract_section(&old, "recovery") {
        Some(rec) => {
            format!(
                "{{\n  {smoke_section},\n  {full_section},\n  {cluster_section},\n  {rec}\n}}\n"
            )
        }
        None => format!("{{\n  {smoke_section},\n  {full_section},\n  {cluster_section}\n}}\n"),
    };
    std::fs::write(bench_path, &json).expect("write BENCH_topology.json");
    eprintln!("wrote {bench_path}");
}
