//! §5.2 ablation: fine-grained caching under temporal bursts.
//!
//! "User activities in the temporal burst events always have the locality
//! that the small portion of the items attract the large portion of users'
//! attention." This ablation replays a flash-event trace (background
//! traffic plus a burst on few keys) and reports store reads saved by the
//! per-key write-through cache at several capacities.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdstore::{StoreConfig, TdStore};
use tencentrec::cache::CachedStore;

fn trace(events: usize, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..events)
        .map(|i| {
            // Mid-trace burst: 80% of traffic on 10 hot keys.
            let bursting = i > events / 4 && i < 3 * events / 4;
            if bursting && rng.gen_bool(0.8) {
                rng.gen_range(0..10u64)
            } else {
                rng.gen_range(0..50_000u64)
            }
        })
        .collect()
}

fn main() {
    const EVENTS: usize = 300_000;
    let keys = trace(EVENTS, 5);
    println!("== Ablation: fine-grained cache during a temporal burst ==");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>9}",
        "capacity", "hits", "store reads", "hit rate", "time(s)"
    );

    // No cache: every increment reads the store.
    let store = TdStore::new(StoreConfig::default());
    let start = Instant::now();
    for &k in &keys {
        store.incr_f64(&k.to_le_bytes(), 1.0).unwrap();
    }
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>9.2}",
        "none",
        0,
        EVENTS,
        "0.0%",
        start.elapsed().as_secs_f64()
    );

    for capacity in [64usize, 1_024, 16_384] {
        let store = TdStore::new(StoreConfig::default());
        let mut cached = CachedStore::new(store, capacity);
        let start = Instant::now();
        for &k in &keys {
            cached.incr_f64(&k.to_le_bytes(), 1.0).unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>10} {:>12} {:>9.1}% {:>9.2}",
            capacity,
            cached.hits(),
            cached.misses(),
            cached.hit_ratio() * 100.0,
            elapsed
        );
    }
}
