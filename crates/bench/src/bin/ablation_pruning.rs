//! §4.1.4 ablation: Hoeffding-bound real-time pruning.
//!
//! The paper motivates pruning with the observation that most generated
//! item pairs "are not so similar that only the items in Nk(ip) are
//! useful for our prediction" — so pair updates on provably dissimilar
//! pairs are wasted work. This ablation measures the pair-update
//! reduction at several δ values and verifies the similar-items lists it
//! serves stay essentially identical.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tencentrec::action::{ActionType, UserAction};
use tencentrec::cf::{CfConfig, ItemCF};

/// Cluster-structured actions: heavy intra-cluster co-consumption plus a
/// long tail of weak cross-cluster pairs (the prunable mass).
fn workload(actions: usize, seed: u64) -> Vec<UserAction> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(actions);
    for i in 0..actions as u64 {
        let user = rng.gen_range(0..2_000u64);
        let cluster = user % 20;
        let roll: f64 = rng.gen();
        let item = if roll < 0.72 {
            cluster * 50 + rng.gen_range(0..16u64) // dense head of the cluster
        } else if roll < 0.92 {
            // "hot item" portals everyone touches: frequent but weak pairs
            // with everything — the mass real-time pruning removes.
            2_000 + rng.gen_range(0..16u64)
        } else {
            rng.gen_range(0..1_000) // tail noise
        };
        let action = if rng.gen_bool(0.3) {
            ActionType::Purchase
        } else {
            ActionType::Click
        };
        out.push(UserAction::new(user, item, action, i * 10));
    }
    out
}

fn run(actions: &[UserAction], delta: Option<f64>) -> (ItemCF, f64) {
    let mut cf = ItemCF::new(CfConfig {
        top_k: 10,
        pruning_delta: delta,
        ..Default::default()
    });
    let start = Instant::now();
    for a in actions {
        cf.process(a);
    }
    (cf, start.elapsed().as_secs_f64())
}

/// Top-k overlap between the pruned and unpruned similar lists.
fn list_overlap(a: &ItemCF, b: &ItemCF, items: u64, k: usize) -> f64 {
    let mut inter = 0usize;
    let mut total = 0usize;
    for item in 0..items {
        let la: Vec<u64> = a
            .similar_items(item)
            .iter()
            .take(k)
            .map(|&(i, _)| i)
            .collect();
        let lb: Vec<u64> = b
            .similar_items(item)
            .iter()
            .take(k)
            .map(|&(i, _)| i)
            .collect();
        total += lb.len().min(k);
        inter += la.iter().filter(|i| lb.contains(i)).count();
    }
    if total == 0 {
        1.0
    } else {
        inter as f64 / total as f64
    }
}

fn main() {
    let actions = workload(400_000, 7);
    println!("== Ablation: real-time pruning (400k actions, 20 clusters) ==");
    println!(
        "{:<12} {:>13} {:>13} {:>10} {:>9} {:>9}",
        "δ", "pair updates", "pruned skips", "reduction", "time(s)", "top5 ovl"
    );
    let (baseline, base_time) = run(&actions, None);
    let base_updates = baseline.stats().pair_updates;
    println!(
        "{:<12} {:>13} {:>13} {:>9.1}% {:>9.2} {:>9}",
        "off", base_updates, 0, 0.0, base_time, "1.000"
    );
    for delta in [1e-2, 1e-3, 1e-6] {
        let (pruned, time) = run(&actions, Some(delta));
        let stats = pruned.stats();
        let reduction = 100.0 * (1.0 - stats.pair_updates as f64 / base_updates as f64);
        let overlap = list_overlap(&pruned, &baseline, 1_000, 5);
        println!(
            "{:<12} {:>13} {:>13} {:>9.1}% {:>9.2} {:>9.3}",
            format!("{delta:.0e}"),
            stats.pair_updates,
            stats.pruned_skips,
            reduction,
            time,
            overlap
        );
    }
}
