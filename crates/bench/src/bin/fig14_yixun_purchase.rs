//! Figure 14: CTR of the similar-purchase recommendation position in
//! YiXun over one week — unconstrained co-purchase CF, where the paper
//! observes a *smaller* (but still consistent) improvement than in the
//! sparse similar-price position.

use bench::{print_daily_ctr, run_arms};
use workload::apps::{
    ecommerce_app, original_cf_arm_with, purchase_heavy_weights, tencentrec_cf_arm_with,
};
use workload::Position;

fn main() {
    let mut app = ecommerce_app(77, 7, Position::Plain);
    // Purchase-shelf browsing is driven more by stable preferences than by
    // the momentary mission ("relatively explicit preferences about the
    // user"), so the session term matters less here than on the
    // similar-price shelf.
    app.clicks.long_weight = 0.5;
    app.clicks.session_weight = 0.6;
    let results = run_arms(
        &app,
        |_| tencentrec_cf_arm_with(purchase_heavy_weights()),
        |_| original_cf_arm_with(24 * 60 * 60 * 1000, purchase_heavy_weights()),
    );
    print_daily_ctr(
        "Figure 14: YiXun similar-purchase recommendation CTR, one week",
        &results,
    );
}
