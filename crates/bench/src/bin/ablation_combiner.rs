//! §5.3 ablation: the combiner under hot-item skew.
//!
//! "There will be large number of records of the hot news generated for
//! the computation [...] all of these records will be sent over the
//! network to a single worker." The combiner merges same-key tuples before
//! the costly TDStore write; this ablation measures the write reduction as
//! traffic skew grows.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdstore::{StoreConfig, TdStore};
use tencentrec::combiner::{CombineOp, Combiner};

/// Zipf(θ) sampler over `n` keys (inverse-CDF on precomputed weights).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

fn main() {
    const EVENTS: usize = 500_000;
    const KEYS: usize = 10_000;
    const FLUSH_KEYS: usize = 1_024;
    println!("== Ablation: combiner write reduction under Zipf skew ==");
    println!(
        "{:<7} {:>12} {:>14} {:>11} {:>13} {:>13}",
        "zipf θ", "events", "store writes", "reduction", "direct(s)", "combined(s)"
    );
    for theta in [0.0, 0.6, 0.9, 1.1, 1.4] {
        let zipf = Zipf::new(KEYS, theta);
        let mut rng = SmallRng::seed_from_u64(3);
        let events: Vec<u64> = (0..EVENTS).map(|_| zipf.sample(&mut rng)).collect();

        // Direct: one TDStore write per event.
        let store = TdStore::new(StoreConfig::default());
        let start = Instant::now();
        for &k in &events {
            store.incr_f64(&k.to_le_bytes(), 1.0).unwrap();
        }
        let direct_time = start.elapsed().as_secs_f64();

        // Combined: buffer and flush at FLUSH_KEYS distinct keys.
        let store = TdStore::new(StoreConfig::default());
        let mut combiner = Combiner::new(CombineOp::Add, FLUSH_KEYS);
        let mut writes = 0u64;
        let start = Instant::now();
        for &k in &events {
            if let Some(batch) = combiner.add(k, 1.0) {
                for (key, delta) in batch {
                    store.incr_f64(&key.to_le_bytes(), delta).unwrap();
                    writes += 1;
                }
            }
        }
        for (key, delta) in combiner.flush() {
            store.incr_f64(&key.to_le_bytes(), delta).unwrap();
            writes += 1;
        }
        let combined_time = start.elapsed().as_secs_f64();
        println!(
            "{theta:<7} {EVENTS:>12} {writes:>14} {:>10.1}x {:>13.2} {:>13.2}",
            EVENTS as f64 / writes as f64,
            direct_time,
            combined_time
        );
    }
}
