//! Figure 13: CTR of the similar-price recommendation position in YiXun
//! over one week — TencentRec (real-time windowed CF + demographic
//! complement) vs Original (daily offline CF with static filters).
//!
//! The similar-price position constrains candidates to goods priced near
//! the currently browsed item, so the usable CF signal is sparse — which
//! is exactly where the paper observes the *larger* improvement
//! ("TencentRec gains a higher improvement in the similar price
//! recommendation than the similar purchase recommendation").

use bench::{print_daily_ctr, run_arms};
use workload::apps::{ecommerce_app, original_cf_arm, tencentrec_cf_arm};
use workload::Position;

fn main() {
    let app = ecommerce_app(77, 7, Position::SimilarPrice { rel: 0.3 });
    let results = run_arms(
        &app,
        |_| tencentrec_cf_arm(),
        |_| original_cf_arm(24 * 60 * 60 * 1000),
    );
    print_daily_ctr(
        "Figure 13: YiXun similar-price recommendation CTR, one week",
        &results,
    );
}
