//! Figure 10: CTR of Tencent News over one week — TencentRec (real-time CB
//! + demographic complement) vs Original (CB model rebuilt hourly).

use bench::{print_daily_ctr, run_arms};
use workload::apps::{news_app, original_news_arm, tencentrec_news_arm};

fn main() {
    let app = news_app(2024, 7);
    let results = run_arms(
        &app,
        |world| tencentrec_news_arm(world.catalog().clone()),
        |world| original_news_arm(world.catalog().clone(), 60 * 60 * 1000),
    );
    print_daily_ctr("Figure 10: Tencent News CTR, one week", &results);
}
