//! Time-to-recover benchmark: snapshot-restore + tail replay versus
//! full-log replay on a day-scale, disk-spilled access log.
//!
//! A primary run processes the log with a checkpoint coordinator,
//! publishes one snapshot near the end (the "last snapshot before the
//! crash"), and is killed without drain. Recovery then races two arms
//! over identical fresh stores:
//!
//! - **restore**: reopen the checkpoint log, load the newest snapshot
//!   into the store, seek the spout to the sealed offset vector, replay
//!   only the tail;
//! - **full replay**: rebuild the whole state from offset zero.
//!
//! Writes the `recovery` section of `BENCH_topology.json` (preserving
//! every other section). Modes:
//!
//! - default: day-scale sizes, rewrites `recovery`.
//! - `--smoke`: small sizes (CI-friendly), rewrites `recovery`.
//! - `--check`: exits non-zero unless restore beats full replay by the
//!   committed floor (5x) — the durability acceptance gate.

use ckpt::{CheckpointConfig, Coordinator};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdaccess::{AccessCluster, ClusterConfig, SegmentConfig};
use tdstore::SnapshotKind;
use tdstore::{StoreConfig, TdStore};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::topology::{
    build_cf_topology_with_spout, CfParallelism, CfPipelineConfig, OffsetTable, ReplayProgress,
    ReplayableSpout,
};
use tstorm::prelude::TopologyHandle;
use tstorm::topology::TopologyConfig;

/// Restore must beat full replay by at least this factor.
const SPEEDUP_FLOOR: f64 = 5.0;
/// Snapshot position in the log: the crash loses the last 5%.
const SNAP_FRACTION: f64 = 0.95;
/// A steady-state delta checkpoint must stay under this fraction of the
/// full blob it patches — the incremental-checkpoint acceptance gate.
const DELTA_RATIO_CEIL: f64 = 0.3;
/// Checkpoint cadence as a fraction of the log: the delta is published
/// this many actions after its full base, so it carries exactly one
/// interval's churn — the steady state an operator actually runs at.
/// The log is produced in stages and each checkpoint is taken at a
/// quiescent point, so the interval is deterministic instead of racing
/// the pipeline against publish latency.
const CKPT_INTERVAL_FRACTION: f64 = 0.0005;

fn workload(n: u64, users: u64, items: u64) -> Vec<UserAction> {
    let mut actions = Vec::with_capacity(n as usize);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for ts in 1..=n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let user = (state >> 33) % users + 1;
        let item = (state >> 17) % items + 1;
        actions.push(UserAction::new(user, item, ActionType::Click, ts));
    }
    actions
}

fn cf_config() -> CfPipelineConfig {
    CfPipelineConfig {
        dedup_window: 256,
        ..Default::default()
    }
}

/// Day-scale log shape: segments spill to disk, so replay-from-zero
/// pays real file reads, exactly like a restart against yesterday's log.
/// The topic starts empty; `produce` appends the staged slices.
fn build_spilled_topic(spill_dir: &Path) -> AccessCluster {
    let cluster = AccessCluster::new(ClusterConfig {
        segment: SegmentConfig {
            max_messages: 8_192,
            max_bytes: usize::MAX,
            spill_dir: Some(spill_dir.to_path_buf()),
        },
        ..Default::default()
    });
    cluster.create_topic("actions", 4).unwrap();
    cluster
}

fn produce(cluster: &AccessCluster, actions: &[UserAction]) {
    let producer = cluster.producer("actions").unwrap();
    for a in actions {
        producer
            .send(Some(&a.user.to_le_bytes()[..]), &a.to_bytes())
            .unwrap();
    }
}

struct Life {
    handle: TopologyHandle,
    store: TdStore,
    progress: Arc<ReplayProgress>,
    offsets: Arc<OffsetTable>,
}

fn launch(cluster: &AccessCluster, group: &str, store: TdStore, start: Vec<(u32, u64)>) -> Life {
    let progress = Arc::new(ReplayProgress::default());
    let offsets = Arc::new(OffsetTable::new());
    let topo = build_cf_topology_with_spout(
        {
            let cluster = cluster.clone();
            let group = group.to_string();
            let progress = Arc::clone(&progress);
            let offsets = Arc::clone(&offsets);
            move || {
                ReplayableSpout::new(cluster.clone(), "actions", &group, Arc::clone(&progress))
                    .with_offset_table(Arc::clone(&offsets))
                    .with_start_offsets(start.clone())
            }
        },
        store.clone(),
        cf_config(),
        CfParallelism::default(),
        TopologyConfig::default(),
    )
    .expect("valid topology");
    Life {
        handle: topo.launch(),
        store,
        progress,
        offsets,
    }
}

fn wait_committed(life: &Life, target: u64, what: &str) {
    // Scales with the arm size: the full sweep replays 600k actions
    // through the pair bolt at store speed, which overruns a fixed
    // 600 s budget on a single-core box without being stalled.
    let deadline = Instant::now() + Duration::from_secs(600.max(target / 300));
    while life.progress.committed() < target {
        assert!(
            Instant::now() < deadline,
            "{what} stalled at {}/{target}",
            life.progress.committed()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

struct RecoveryResult {
    actions: u64,
    spilled_segments: usize,
    snapshot_entries: u64,
    snapshot_bytes: u64,
    delta_entries: u64,
    delta_bytes: u64,
    delta_ratio: f64,
    tail_records: u64,
    restore_ms: f64,
    tail_replay_ms: f64,
    time_to_recover_ms: f64,
    full_replay_ms: f64,
    speedup: f64,
}

fn run_recovery(n: u64, users: u64, items: u64) -> RecoveryResult {
    let tmp = std::env::temp_dir().join(format!("tsnap-recovery-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let spill_dir = tmp.join("segments");
    std::fs::create_dir_all(&spill_dir).unwrap();
    let ckpt_path = tmp.join("ckpt.fdb");

    let actions = workload(n, users, items);
    let topic = build_spilled_topic(&spill_dir);

    // Primary life: publish a full blob one checkpoint interval before
    // the crash point, then a steady-state delta at the crash point —
    // recovery must walk the base + delta chain, and the delta's size
    // against its base is the incremental-checkpoint gate. The log is
    // fed in stages and each checkpoint lands on a quiescent pipeline,
    // so the delta carries exactly one interval of churn no matter how
    // fast this box drains the topic.
    let coord = Coordinator::open(
        &ckpt_path,
        CheckpointConfig {
            drain_timeout: Duration::from_secs(60),
            retain: 2,
            // The bench measures the real delta/full byte ratio; don't
            // let the coordinator fold a too-fat delta into a full blob
            // and mask a regression from the gate below.
            max_delta_ratio: f64::MAX,
            ..Default::default()
        },
    )
    .expect("open checkpoint log");
    let primary = launch(
        &topic,
        "cf",
        TdStore::new(StoreConfig::default()),
        Vec::new(),
    );
    let snap_at = (n as f64 * SNAP_FRACTION) as u64;
    let interval = ((n as f64 * CKPT_INTERVAL_FRACTION) as u64).max(1);
    let full_at = snap_at - interval;
    produce(&topic, &actions[..full_at as usize]);
    wait_committed(&primary, full_at, "primary");
    let full_meta = coord
        .checkpoint(&primary.handle, &primary.store, &primary.offsets, now_ms())
        .expect("publish full snapshot");
    produce(&topic, &actions[full_at as usize..snap_at as usize]);
    wait_committed(&primary, snap_at, "primary");
    let meta = coord
        .checkpoint(&primary.handle, &primary.store, &primary.offsets, now_ms())
        .expect("publish delta checkpoint");
    assert!(
        matches!(
            coord.snapshots().load_record(meta.epoch).map(|r| r.kind),
            Some(SnapshotKind::Delta { .. })
        ),
        "second checkpoint should ride the chain as a delta"
    );
    let delta_ratio = meta.bytes as f64 / full_meta.bytes as f64;
    primary.handle.kill(); // crash: no drain, no final checkpoint
    drop(coord); // recovery reopens the log cold, like a fresh process

    // The tail the crash loses: appended after the kill, so the sealed
    // offset vector is exactly `snap_at` and the two recovery arms race
    // over a log the dead primary never saw the end of.
    produce(&topic, &actions[snap_at as usize..]);
    let spilled_segments = std::fs::read_dir(&spill_dir).unwrap().count();

    // Arm 1: snapshot restore + tail replay.
    let recover_start = Instant::now();
    let coord = Coordinator::open(&ckpt_path, CheckpointConfig::default()).expect("reopen");
    let store = TdStore::new(StoreConfig::default());
    let restored = coord
        .restore_into(&store)
        .expect("restore")
        .expect("snapshot present");
    let restore_ms = recover_start.elapsed().as_secs_f64() * 1e3;
    let skipped: u64 = restored.start_offsets.iter().map(|&(_, off)| off).sum();
    let tail = n - skipped;
    let second = launch(&topic, "cf-restore", store, restored.start_offsets.clone());
    wait_committed(&second, tail, "tail replay");
    second.handle.shutdown(Duration::from_secs(10));
    let time_to_recover_ms = recover_start.elapsed().as_secs_f64() * 1e3;

    // Arm 2: full-log replay from offset zero.
    let full_start = Instant::now();
    let full = launch(
        &topic,
        "cf-full",
        TdStore::new(StoreConfig::default()),
        Vec::new(),
    );
    wait_committed(&full, n, "full replay");
    full.handle.shutdown(Duration::from_secs(10));
    let full_replay_ms = full_start.elapsed().as_secs_f64() * 1e3;

    let _ = std::fs::remove_dir_all(&tmp);
    RecoveryResult {
        actions: n,
        spilled_segments,
        snapshot_entries: full_meta.entries,
        snapshot_bytes: full_meta.bytes,
        delta_entries: meta.entries,
        delta_bytes: meta.bytes,
        delta_ratio,
        tail_records: tail,
        restore_ms,
        tail_replay_ms: time_to_recover_ms - restore_ms,
        time_to_recover_ms,
        full_replay_ms,
        speedup: full_replay_ms / time_to_recover_ms,
    }
}

fn recovery_json(r: &RecoveryResult) -> String {
    format!(
        concat!(
            "\"recovery\": {{\n",
            "    \"actions\": {},\n",
            "    \"spilled_segments\": {},\n",
            "    \"snapshot_entries\": {},\n",
            "    \"snapshot_bytes\": {},\n",
            "    \"delta_entries\": {},\n",
            "    \"delta_bytes\": {},\n",
            "    \"delta_ratio\": {:.4},\n",
            "    \"tail_records\": {},\n",
            "    \"restore_ms\": {:.1},\n",
            "    \"tail_replay_ms\": {:.1},\n",
            "    \"time_to_recover_ms\": {:.1},\n",
            "    \"full_replay_ms\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }}"
        ),
        r.actions,
        r.spilled_segments,
        r.snapshot_entries,
        r.snapshot_bytes,
        r.delta_entries,
        r.delta_bytes,
        r.delta_ratio,
        r.tail_records,
        r.restore_ms,
        r.tail_replay_ms,
        r.time_to_recover_ms,
        r.full_replay_ms,
        r.speedup,
    )
}

/// Finds `"name": { ... }` (brace-balanced) in the flat bench JSON.
fn extract_section(json: &str, name: &str) -> Option<String> {
    let start = json.find(&format!("\"{name}\": {{"))?;
    let open = start + name.len() + 4;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[start..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let bench_path = "BENCH_topology.json";

    // Full size is bounded by the full-replay arm (the slow side being
    // measured): ~600k actions over a cold spilled log keeps the sweep
    // in low minutes while the speedup ratio is already size-stable.
    let (n, users, items) = if smoke {
        (150_000u64, 500, 100)
    } else {
        (600_000u64, 2_000, 300)
    };
    eprintln!(
        "== recovery ({n} actions, snapshot at {:.0}%, disk-spilled log) ==",
        SNAP_FRACTION * 100.0
    );
    let r = run_recovery(n, users, items);
    eprintln!(
        "  snapshot: {} entries / {} bytes; log: {} spilled segments",
        r.snapshot_entries, r.snapshot_bytes, r.spilled_segments
    );
    eprintln!(
        "  delta: {} changed entries / {} bytes = {:.3}x of the full blob",
        r.delta_entries, r.delta_bytes, r.delta_ratio
    );
    eprintln!(
        "  restore {:.1} ms + tail replay {:.1} ms ({} records) = {:.1} ms",
        r.restore_ms, r.tail_replay_ms, r.tail_records, r.time_to_recover_ms
    );
    eprintln!(
        "  full replay {:.1} ms  ->  speedup {:.2}x",
        r.full_replay_ms, r.speedup
    );

    // Rewrite only the `recovery` section, preserving everything else.
    let old = std::fs::read_to_string(bench_path).unwrap_or_default();
    let section = recovery_json(&r);
    let json = match extract_section(&old, "recovery") {
        Some(existing) => old.replace(&existing, &section),
        None => match old.rfind('}') {
            Some(close) => format!(
                "{},\n  {section}\n}}\n",
                old[..close].trim_end().trim_end_matches(',')
            ),
            None => format!("{{\n  {section}\n}}\n"),
        },
    };
    std::fs::write(bench_path, &json).expect("write BENCH_topology.json");
    eprintln!("wrote {bench_path}");

    if check && r.speedup < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: time-to-recover speedup {:.2}x is below the {SPEEDUP_FLOOR:.0}x floor",
            r.speedup
        );
        std::process::exit(1);
    }
    if check && r.delta_ratio > DELTA_RATIO_CEIL {
        eprintln!(
            "FAIL: steady-state delta is {:.3}x of the full blob, above the {DELTA_RATIO_CEIL}x ceiling",
            r.delta_ratio
        );
        std::process::exit(1);
    }
    if check {
        eprintln!(
            "gate: speedup {:.2}x >= {SPEEDUP_FLOOR:.0}x floor; delta ratio {:.3}x <= {DELTA_RATIO_CEIL}x ceiling",
            r.speedup, r.delta_ratio
        );
    }
}
