//! §4.2 ablation: the data sparsity solution.
//!
//! Compares three arms on the e-commerce scenario: bare item-CF (no
//! complement), CF + global hot-item complement (no demographic
//! clustering), and the full engine (CF + demographic-group complement).
//! The differences concentrate on cold and inactive users — "a user's
//! opinion about an application is largely dependent on his first time
//! experience where he has few information for the application to use".

use tencentrec::action::ActionWeights;
use tencentrec::cf::{CfConfig, ItemCF};
use tencentrec::db::{DemographicRec, GroupScheme};
use tencentrec::engine::{Primary, RecommendEngine};
use workload::apps::ecommerce_app;
use workload::{run_simulation, DayMetrics, Position, World};

fn cf_config() -> CfConfig {
    CfConfig {
        linked_time_ms: 3 * 24 * 60 * 60 * 1000,
        top_k: 20,
        recent_k: 10,
        pruning_delta: None,
        ..Default::default()
    }
}

fn run(label: &str, mut rec: impl tencentrec::engine::StreamRecommender) {
    // Cold-start-dominated: one short session per user per day, no warmup,
    // measured from the very first day — the "first time experience" the
    // paper calls out.
    let mut app = ecommerce_app(99, 3, Position::Plain);
    app.world.sessions_per_user_per_day = 1;
    app.world.actions_per_session = 2;
    app.sim.warmup_days = 0;
    let mut world = World::new(app.world.clone());
    let days = run_simulation(&mut world, &mut rec, &app.clicks, &app.sim);
    let ctr = days.iter().map(DayMetrics::ctr).sum::<f64>() / days.len() as f64;
    let day0 = days.first().map(DayMetrics::ctr).unwrap_or(0.0);
    let impressions: u64 = days.iter().map(|d| d.impressions).sum();
    let clicks: u64 = days.iter().map(|d| d.clicks).sum();
    // Fill rate: fraction of the possible list slots actually served.
    let possible = (app.world.users * app.world.sessions_per_user_per_day * app.sim.days) as u64
        * app.sim.list_size as u64;
    println!(
        "{label:<26} {:>7.2}% {:>9.2}% {:>11.1}% {clicks:>8} {impressions:>13}",
        ctr * 100.0,
        day0 * 100.0,
        impressions as f64 / possible as f64 * 100.0
    );
}

fn main() {
    println!("== Ablation: data sparsity solution (cold e-commerce, 3 days) ==");
    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>8} {:>13}",
        "arm", "CTR", "day-1 CTR", "fill rate", "clicks", "impressions"
    );
    println!("(complement trades list-average CTR for full pages: total clicks is the win)");

    // Bare CF: recommendation lists go unfilled for sparse users.
    run("item-CF only", ItemCF::new(cf_config()));

    // CF + global hot items (no demographic clustering).
    run(
        "CF + global complement",
        RecommendEngine::new(
            Primary::Cf(ItemCF::new(cf_config())),
            DemographicRec::new(
                GroupScheme {
                    by_gender: false,
                    by_age_band: false,
                    by_region: false,
                },
                ActionWeights::default(),
                None,
            ),
            0.0,
        ),
    );

    // Full: CF + demographic-group complement.
    run(
        "CF + demographic groups",
        RecommendEngine::new(
            Primary::Cf(ItemCF::new(cf_config())),
            DemographicRec::new(GroupScheme::default(), ActionWeights::default(), None),
            0.0,
        ),
    );
}
