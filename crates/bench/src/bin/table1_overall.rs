//! Table 1: overall CTR improvement of TencentRec over each application's
//! original method, measured over one month (30 simulated days).
//!
//! Paper values for comparison:
//!
//! | Application | Algorithm | avg   | min  | max   |
//! |-------------|-----------|-------|------|-------|
//! | News        | CB        |  6.62 | 3.22 | 14.5  |
//! | Videos      | CF        | 18.17 | 7.27 | 30.52 |
//! | YiXun       | CF        |  9.23 | 2.53 | 16.21 |
//! | QQ          | CTR       | 10.01 | 1.75 | 25.4  |

use bench::run_arms;
use workload::apps::{
    ecommerce_app, news_app, original_cf_arm, original_cf_arm_with, original_news_arm,
    purchase_heavy_weights, run_ad_simulation, tencentrec_cf_arm, tencentrec_cf_arm_with,
    tencentrec_news_arm, video_app, AdSimConfig,
};
use workload::{improvement_stats, DayMetrics, ImprovementStats, Position};

fn row(name: &str, algo: &str, stats: &ImprovementStats) {
    println!(
        "{name:<8} {algo:<6} {:>8.2} {:>8.2} {:>8.2}",
        stats.avg, stats.min, stats.max
    );
}

fn main() {
    const DAYS: usize = 30;
    println!("== Table 1: Overall Performance Improvement (%) over one month ==");
    println!(
        "{:<8} {:<6} {:>8} {:>8} {:>8}",
        "app", "algo", "avg", "min", "max"
    );

    // News — content-based vs hourly-rebuilt CB.
    let news = news_app(2024, DAYS);
    let results = run_arms(
        &news,
        |world| tencentrec_news_arm(world.catalog().clone()),
        |world| original_news_arm(world.catalog().clone(), 60 * 60 * 1000),
    );
    row("News", "CB", &results.ctr_improvement().1);

    // Videos — incremental item-CF vs daily offline CF.
    let videos = video_app(31, DAYS);
    let results = run_arms(
        &videos,
        |_| tencentrec_cf_arm(),
        |_| original_cf_arm(24 * 60 * 60 * 1000),
    );
    row("Videos", "CF", &results.ctr_improvement().1);

    // YiXun — purchase-driven item-CF vs daily offline CF (the deployed
    // similar-purchase position; see fig14_yixun_purchase for the click
    // mix rationale).
    let mut yixun = ecommerce_app(77, DAYS, Position::Plain);
    yixun.clicks.long_weight = 0.5;
    yixun.clicks.session_weight = 0.6;
    let results = run_arms(
        &yixun,
        |_| tencentrec_cf_arm_with(purchase_heavy_weights()),
        |_| original_cf_arm_with(24 * 60 * 60 * 1000, purchase_heavy_weights()),
    );
    row("YiXun", "CF", &results.ctr_improvement().1);

    // QQ — situational CTR vs daily global ranking.
    let (ours, orig) = run_ad_simulation(&AdSimConfig {
        days: DAYS,
        ..Default::default()
    });
    let (_, stats) = improvement_stats(&ours, &orig, DayMetrics::ctr);
    row("QQ", "CTR", &stats);
}
