#![warn(missing_docs)]
//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (see `EXPERIMENTS.md` at the repo
//! root for the paper-vs-measured record).

use tencentrec::engine::StreamRecommender;
use workload::apps::AppSpec;
use workload::{improvement_stats, run_simulation, DayMetrics, ImprovementStats, World};

/// The two arms of one A/B comparison.
pub struct ArmResults {
    /// Per-day metrics of the TencentRec arm.
    pub tencentrec: Vec<DayMetrics>,
    /// Per-day metrics of the Original arm.
    pub original: Vec<DayMetrics>,
}

impl ArmResults {
    /// Daily CTR improvements (%) and summary.
    pub fn ctr_improvement(&self) -> (Vec<f64>, ImprovementStats) {
        improvement_stats(&self.tencentrec, &self.original, DayMetrics::ctr)
    }

    /// Daily reads-per-user improvements (%) and summary.
    pub fn reads_improvement(&self) -> (Vec<f64>, ImprovementStats) {
        improvement_stats(&self.tencentrec, &self.original, DayMetrics::reads_per_user)
    }
}

/// Runs both arms of `app` against identically seeded worlds. The arm
/// constructors receive the world's shared item catalog.
pub fn run_arms<T, O>(
    app: &AppSpec,
    make_tencentrec: impl Fn(&World) -> T,
    make_original: impl Fn(&World) -> O,
) -> ArmResults
where
    T: StreamRecommender,
    O: StreamRecommender,
{
    let mut world_a = World::new(app.world.clone());
    let mut rec_a = make_tencentrec(&world_a);
    let tencentrec = run_simulation(&mut world_a, &mut rec_a, &app.clicks, &app.sim);

    let mut world_b = World::new(app.world.clone());
    let mut rec_b = make_original(&world_b);
    let original = run_simulation(&mut world_b, &mut rec_b, &app.clicks, &app.sim);

    ArmResults {
        tencentrec,
        original,
    }
}

/// Prints a Fig. 10/13/14-style daily CTR table.
pub fn print_daily_ctr(title: &str, results: &ArmResults) {
    let (daily, stats) = results.ctr_improvement();
    println!("\n== {title} ==");
    println!(
        "{:>4} {:>14} {:>14} {:>12}",
        "day", "TencentRec CTR", "Original CTR", "improvement"
    );
    for (i, ((ours, orig), imp)) in results
        .tencentrec
        .iter()
        .zip(&results.original)
        .zip(&daily)
        .enumerate()
    {
        println!(
            "{:>4} {:>13.2}% {:>13.2}% {:>+11.2}%",
            i + 1,
            ours.ctr() * 100.0,
            orig.ctr() * 100.0,
            imp
        );
    }
    println!(
        "summary: avg {:+.2}%  min {:+.2}%  max {:+.2}%",
        stats.avg, stats.min, stats.max
    );
}

/// Prints a Fig. 11-style reads-per-user table.
pub fn print_daily_reads(title: &str, results: &ArmResults) {
    let (daily, stats) = results.reads_improvement();
    println!("\n== {title} ==");
    println!(
        "{:>4} {:>16} {:>16} {:>12}",
        "day", "TencentRec reads", "Original reads", "improvement"
    );
    for (i, ((ours, orig), imp)) in results
        .tencentrec
        .iter()
        .zip(&results.original)
        .zip(&daily)
        .enumerate()
    {
        println!(
            "{:>4} {:>16.2} {:>16.2} {:>+11.2}%",
            i + 1,
            ours.reads_per_user(),
            orig.reads_per_user(),
            imp
        );
    }
    println!(
        "summary: avg {:+.2}%  min {:+.2}%  max {:+.2}%",
        stats.avg, stats.min, stats.max
    );
}
