//! Periodic rendering of one or more registries.
//!
//! A [`MetricsReporter`] collects registry handles from every subsystem
//! (topology, stores, serving layer) and renders them as one text
//! exposition — on demand via [`MetricsReporter::render`], or periodically
//! on a background thread via [`MetricsReporter::spawn`] (examples print to
//! stderr; a real deployment would serve the same text over HTTP).

use crate::registry::{render_registries, Registry};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Renders a set of registries, immediately or on an interval.
#[derive(Clone, Debug, Default)]
pub struct MetricsReporter {
    registries: Vec<Registry>,
}

impl MetricsReporter {
    /// An empty reporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a registry (the handle is cloned; later metrics still show).
    pub fn add(&mut self, registry: &Registry) -> &mut Self {
        self.registries.push(registry.clone());
        self
    }

    /// Renders all registries as one exposition.
    pub fn render(&self) -> String {
        render_registries(&self.registries)
    }

    /// Spawns a background thread invoking `sink` with a fresh exposition
    /// every `interval` until the returned handle is stopped or dropped.
    pub fn spawn(
        self,
        interval: Duration,
        mut sink: impl FnMut(&str) + Send + 'static,
    ) -> ReporterHandle {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("obs-reporter".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    let (guard, timeout) = cv
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        // Render outside the lock so a stop request never
                        // waits on a slow sink.
                        drop(stopped);
                        sink(&self.render());
                        stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    }
                }
            })
            .expect("spawn reporter");
        ReporterHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Stops the background reporter thread when stopped or dropped.
pub struct ReporterHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl ReporterHandle {
    /// Stops and joins the reporter thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReporterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn render_merges_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("alpha_total", &[], "a").add(1);
        b.counter("beta_total", &[], "b").add(2);
        let mut rep = MetricsReporter::new();
        rep.add(&a).add(&b);
        let text = rep.render();
        assert!(text.contains("alpha_total 1"), "{text}");
        assert!(text.contains("beta_total 2"), "{text}");
    }

    #[test]
    fn shared_family_across_registries_renders_one_type_line() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("ops_total", &[("src", "a")], "ops").inc();
        b.counter("ops_total", &[("src", "b")], "ops").inc();
        let mut rep = MetricsReporter::new();
        rep.add(&a).add(&b);
        let text = rep.render();
        assert_eq!(
            text.matches("# TYPE ops_total counter").count(),
            1,
            "{text}"
        );
        assert!(text.contains("ops_total{src=\"a\"} 1"), "{text}");
        assert!(text.contains("ops_total{src=\"b\"} 1"), "{text}");
    }

    #[test]
    fn spawned_reporter_ticks_and_stops() {
        let reg = Registry::new();
        reg.counter("ticks_total", &[], "t").inc();
        let mut rep = MetricsReporter::new();
        rep.add(&reg);
        let renders = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&renders);
        let handle = rep.spawn(Duration::from_millis(5), move |text| {
            assert!(text.contains("ticks_total"));
            r2.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while renders.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
        assert!(renders.load(Ordering::SeqCst) >= 2, "reporter must tick");
    }
}
