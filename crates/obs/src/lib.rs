#![warn(missing_docs)]
//! # obs — workspace-wide observability
//!
//! TencentRec's engineering mechanisms (fine-grained caching, combiners,
//! multi-hash aggregation, batched transport) only pay off when hit
//! ratios, queue depths and tail latencies are visible per stage. This
//! crate is the shared metrics layer every other crate instruments
//! against:
//!
//! * [`Counter`] / [`Gauge`] — cloneable, wait-free handles over shared
//!   atomics;
//! * [`LatencyHistogram`] / [`LatencySnapshot`] — the log-bucketed
//!   histogram (extracted from `tstorm::metrics`), mergeable across
//!   threads, shards and the serve wire protocol;
//! * [`Registry`] — a labelled metric store with idempotent registration
//!   and Prometheus-style text exposition;
//! * [`MetricsReporter`] — renders one or more registries on demand or
//!   periodically on a background thread.
//!
//! ```
//! use obs::{MetricsReporter, Registry};
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", &[("component", "item_count")], "cache hits");
//! hits.add(41);
//! hits.inc();
//! let lat = reg.histogram_nanos("exec_latency_seconds", &[], "execute latency");
//! lat.record_nanos(1_500);
//! let mut reporter = MetricsReporter::new();
//! reporter.add(&reg);
//! let text = reporter.render();
//! assert!(text.contains("cache_hits_total{component=\"item_count\"} 42"));
//! assert!(text.contains("exec_latency_seconds_count 1"));
//! ```

mod histogram;
mod registry;
mod report;

pub use histogram::{LatencyHistogram, LatencySnapshot};
pub use registry::{
    render_registries, ClusterScrape, Counter, Gauge, Registry, Sample, SampleKind,
};
pub use report::{MetricsReporter, ReporterHandle};
