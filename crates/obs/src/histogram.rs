//! Log-bucketed latency histogram for tail-latency reporting.
//!
//! Extracted from `tstorm::metrics` so every crate in the workspace — the
//! stream runtime, the stores, the serving layer — records into the same
//! histogram type and their snapshots merge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution bits: 32 linear sub-buckets per power of two,
/// bounding relative quantile error at ~3%.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Enough buckets to cover the full `u64` nanosecond range.
pub(crate) const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

#[inline]
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        nanos as usize
    } else {
        let msb = 63 - nanos.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((nanos >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }
}

/// Lower bound in nanoseconds of the bucket at `index`.
#[inline]
fn bucket_floor(index: usize) -> u64 {
    let exp = (index / SUB_BUCKETS) as u32;
    let sub = (index % SUB_BUCKETS) as u64;
    if exp == 0 {
        sub
    } else {
        (SUB_BUCKETS as u64 + sub) << (exp - 1)
    }
}

/// A log-bucketed latency histogram: powers of two split into 32 linear
/// sub-buckets (HdrHistogram-style), so any recorded duration lands in a
/// bucket within ~3% of its true value while the whole structure is a
/// flat array of counters.
///
/// Recording is wait-free (one relaxed atomic increment), so one
/// histogram can be shared by every worker thread of a server; snapshots
/// are consistent enough for monitoring and [`LatencySnapshot::merge`]
/// combines per-thread or per-shard histograms into one distribution —
/// percentiles of merged histograms are exact over the merged buckets,
/// unlike averaging per-thread percentiles.
///
/// The unit is nominally nanoseconds, but nothing in the structure assumes
/// time: the same type records dimensionless values (batch sizes, queue
/// lengths) with the same ~3% relative bucketing.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("total", &self.total.load(Ordering::Relaxed))
            .field("max_nanos", &self.max_nanos.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        self.record_nanos(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one observation in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.counts[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records `n` identical observations with one increment per counter
    /// (the bulk path for batched executes).
    pub fn record_nanos_n(&self, nanos: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(nanos)].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(nanos.saturating_mul(n), Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.total.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`LatencyHistogram`], mergeable across threads,
/// shards or processes (the serve crate ships these over the wire).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencySnapshot {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u64,
    max_nanos: u64,
}

impl LatencySnapshot {
    /// Rebuilds a snapshot from sparse `(bucket, count)` pairs plus the
    /// scalar tallies (the wire representation).
    ///
    /// The bucket counts are authoritative: a peer whose scalar tallies
    /// disagree with its own buckets (torn frame, buggy sender) must not
    /// yield a snapshot whose quantile walk contradicts its `count()`.
    /// Out-of-range bucket indices clamp into the last bucket instead of
    /// silently dropping observations, `total` is re-derived from the
    /// buckets, and `sum_nanos`/`max_nanos` are raised to the minimum the
    /// buckets prove.
    pub fn from_parts(sparse: &[(u32, u64)], _total: u64, sum_nanos: u64, max_nanos: u64) -> Self {
        let mut counts = vec![0u64; BUCKETS];
        for &(index, count) in sparse {
            counts[(index as usize).min(BUCKETS - 1)] += count;
        }
        let total = counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
        if total == 0 {
            return LatencySnapshot {
                counts,
                total: 0,
                sum_nanos: 0,
                max_nanos: 0,
            };
        }
        let top = counts
            .iter()
            .rposition(|&c| c > 0)
            .expect("total > 0 implies an occupied bucket");
        let floor_sum = counts.iter().enumerate().fold(0u64, |acc, (i, &c)| {
            acc.saturating_add(c.saturating_mul(bucket_floor(i)))
        });
        LatencySnapshot {
            counts,
            total,
            sum_nanos: sum_nanos.max(floor_sum),
            max_nanos: max_nanos.max(bucket_floor(top)),
        }
    }

    /// Non-zero `(bucket, count)` pairs (the wire representation).
    pub fn sparse_counts(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded latencies in nanoseconds (exact, for wire
    /// transport via [`LatencySnapshot::from_parts`]).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Largest recorded latency in nanoseconds.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.checked_div(self.total).unwrap_or(0))
    }

    /// Largest recorded latency (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The latency at quantile `q` in `[0, 1]` (bucket lower bound, so
    /// within ~3% below the true value); zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile_nanos(q))
    }

    /// [`LatencySnapshot::quantile`] in raw nanosecond units, for
    /// histograms recording dimensionless values.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        self.max_nanos
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 90th percentile latency.
    pub fn p90(&self) -> Duration {
        self.quantile(0.90)
    }

    /// 99th percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Adds `other`'s observations into this snapshot. Snapshots with
    /// mismatched bucket-array lengths (e.g. an empty
    /// [`LatencySnapshot::default`] accumulator) merge by extending to the
    /// longer array instead of silently truncating the tail.
    pub fn merge(&mut self, other: &LatencySnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// `p50/p90/p99/max` on one line, for experiment output.
    pub fn format_percentiles(&self) -> String {
        format!(
            "p50 {:?}  p90 {:?}  p99 {:?}  max {:?}",
            self.p50(),
            self.p90(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_tight() {
        let mut last = (0u64, 0usize); // (probe, index)
        for shift in 0..60 {
            let v = 1u64 << shift;
            for probe in [v, v + 1, v * 3 / 2] {
                let idx = bucket_index(probe);
                if probe >= last.0 {
                    assert!(idx >= last.1, "monotone at {probe}");
                    last = (probe, idx);
                }
                let floor = bucket_floor(idx);
                assert!(floor <= probe, "floor {floor} > value {probe}");
                // Relative error bound: bucket width / floor <= 1/16.
                if probe >= SUB_BUCKETS as u64 {
                    assert!(
                        (probe - floor) as f64 / probe as f64 <= 1.0 / 16.0,
                        "bucket too wide at {probe}: floor {floor}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        let p50 = snap.p50().as_micros() as f64;
        let p99 = snap.p99().as_micros() as f64;
        assert!((450.0..=510.0).contains(&p50), "p50 = {p50}");
        assert!((930.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.max(), Duration::from_millis(1));
        let mean = snap.mean().as_micros();
        assert!((480..=520).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = (i * 7919) % 100_000 + 1;
            if i % 2 == 0 {
                a.record_nanos(v);
            } else {
                b.record_nanos(v);
            }
            combined.record_nanos(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn merge_into_default_accumulator() {
        // A `Default` snapshot has an empty bucket array; merging a real
        // snapshot into it must not silently drop every bucket.
        let h = LatencyHistogram::new();
        for v in [10u64, 1_000, 50_000] {
            h.record_nanos(v);
        }
        let snap = h.snapshot();
        let mut acc = LatencySnapshot::default();
        acc.merge(&snap);
        assert_eq!(acc, snap);
    }

    #[test]
    fn sparse_roundtrip() {
        let h = LatencyHistogram::new();
        for v in [1u64, 40, 1_000, 1_000_000, 12_345_678_901] {
            h.record_nanos(v);
        }
        let snap = h.snapshot();
        let rebuilt = LatencySnapshot::from_parts(
            &snap.sparse_counts(),
            snap.count(),
            snap.sum_nanos,
            snap.max_nanos,
        );
        assert_eq!(rebuilt, snap);
        assert!(snap.sparse_counts().len() <= 5);
    }

    #[test]
    fn from_parts_clamps_malformed_wire_input() {
        // Out-of-range bucket index lands in the last bucket rather than
        // vanishing.
        let snap = LatencySnapshot::from_parts(&[(u32::MAX, 3)], 0, 0, 0);
        assert_eq!(snap.count(), 3, "clamped observations are kept");
        // Scalars inconsistent with the buckets are derived/raised: one
        // observation in the 1000ns bucket proves count>=1, sum>=floor,
        // max>=floor.
        let idx = {
            let h = LatencyHistogram::new();
            h.record_nanos(1000);
            h.snapshot().sparse_counts()[0].0
        };
        let snap = LatencySnapshot::from_parts(&[(idx, 2)], 99, 0, 0);
        assert_eq!(snap.count(), 2, "total derived from buckets");
        assert!(snap.sum_nanos() >= 2 * bucket_floor(idx as usize));
        assert!(snap.max_nanos() >= bucket_floor(idx as usize));
        // Quantiles stay internally consistent.
        assert!(snap.quantile(1.0) >= Duration::from_nanos(bucket_floor(idx as usize)));
    }

    #[test]
    fn empty_histogram_zero_quantiles() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.quantile(0.99), Duration::ZERO);
        assert_eq!(snap.mean(), Duration::ZERO);
        assert_eq!(snap.count(), 0);
    }
}
