//! Labelled metric registry with Prometheus-style text exposition.
//!
//! A [`Registry`] is a cheap cloneable handle (all clones share one store)
//! that hands out [`Counter`], [`Gauge`] and histogram handles keyed by
//! `(family, labels)`. Registration is idempotent: asking twice for the
//! same family and label set returns the *same* underlying metric, so a
//! bolt factory invoked once per task can register from every task and all
//! tasks share one counter. Existing atomics can also be attached, so
//! subsystems that already keep their own counters (the tstorm component
//! metrics, the serve shard counters) expose them without double counting.

use crate::histogram::{LatencyHistogram, LatencySnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; increments are relaxed and wait-free.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zero counter, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic). Cloning shares
/// the underlying value.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh zero gauge, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Callback evaluated at render time (for mirroring state that already
/// lives elsewhere, e.g. an in-flight count or a derived ratio).
type GaugeFn = Arc<dyn Fn() -> f64 + Send + Sync>;

enum MetricValue {
    Counter(Counter),
    Gauge(Gauge),
    GaugeFn(GaugeFn),
    /// Histogram of durations in nanoseconds; rendered in seconds.
    Nanos(Arc<LatencyHistogram>),
    /// Histogram of dimensionless values (batch sizes); rendered raw.
    Values(Arc<LatencyHistogram>),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) | MetricValue::GaugeFn(_) => "gauge",
            MetricValue::Nanos(_) | MetricValue::Values(_) => "summary",
        }
    }
}

struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    help: String,
    value: MetricValue,
}

/// Shared, labelled metric store. See the module docs.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        extract: impl Fn(&MetricValue) -> Option<T>,
        make: impl FnOnce() -> (T, MetricValue),
    ) -> T {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        if let Some(e) = entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
        {
            return extract(&e.value).unwrap_or_else(|| {
                panic!(
                    "metric `{family}` registered twice with conflicting types ({})",
                    e.value.kind()
                )
            });
        }
        let (handle, value) = make();
        entries.push(Entry {
            family: family.to_string(),
            labels: owned,
            help: help.to_string(),
            value,
        });
        handle
    }

    /// Counter under `(family, labels)`; created on first call, shared on
    /// every subsequent call with the same key.
    pub fn counter(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), MetricValue::Counter(c))
            },
        )
    }

    /// Gauge under `(family, labels)`; created on first call, shared after.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), MetricValue::Gauge(g))
            },
        )
    }

    /// Duration histogram under `(family, labels)`, rendered in seconds;
    /// created on first call, shared after.
    pub fn histogram_nanos(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<LatencyHistogram> {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Nanos(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(LatencyHistogram::new());
                (Arc::clone(&h), MetricValue::Nanos(h))
            },
        )
    }

    /// Dimensionless-value histogram (e.g. batch sizes), rendered raw;
    /// created on first call, shared after.
    pub fn histogram_values(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<LatencyHistogram> {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Values(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(LatencyHistogram::new());
                (Arc::clone(&h), MetricValue::Values(h))
            },
        )
    }

    /// Attaches an existing counter handle under `(family, labels)`.
    /// No-op if the key is already registered.
    pub fn register_counter(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        counter: &Counter,
    ) {
        let c = counter.clone();
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Counter(c)),
        );
    }

    /// Attaches an existing gauge handle under `(family, labels)`.
    /// No-op if the key is already registered.
    pub fn register_gauge(&self, family: &str, labels: &[(&str, &str)], help: &str, gauge: &Gauge) {
        let g = gauge.clone();
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Gauge(g)),
        );
    }

    /// Registers a gauge whose value is computed by `f` at render time.
    /// No-op if the key is already registered.
    pub fn register_gauge_fn(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::GaugeFn(Arc::new(f))),
        );
    }

    /// Attaches an existing duration histogram under `(family, labels)`.
    /// No-op if the key is already registered.
    pub fn register_histogram_nanos(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        histogram: &Arc<LatencyHistogram>,
    ) {
        let h = Arc::clone(histogram);
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Nanos(h)),
        );
    }

    /// Attaches an existing dimensionless-value histogram under
    /// `(family, labels)`. No-op if the key is already registered.
    pub fn register_histogram_values(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        histogram: &Arc<LatencyHistogram>,
    ) {
        let h = Arc::clone(histogram);
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Values(h)),
        );
    }

    /// Current value of a registered counter, for tests and harnesses.
    pub fn counter_value(&self, family: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
            .and_then(|e| match &e.value {
                MetricValue::Counter(c) => Some(c.get()),
                _ => None,
            })
    }

    /// Current value of a registered gauge (stored or computed).
    pub fn gauge_value(&self, family: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
            .and_then(|e| match &e.value {
                MetricValue::Gauge(g) => Some(g.get()),
                MetricValue::GaugeFn(f) => Some(f()),
                _ => None,
            })
    }

    /// Snapshot of a registered histogram (duration or value).
    pub fn histogram_snapshot(
        &self,
        family: &str,
        labels: &[(&str, &str)],
    ) -> Option<LatencySnapshot> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
            .and_then(|e| match &e.value {
                MetricValue::Nanos(h) | MetricValue::Values(h) => Some(h.snapshot()),
                _ => None,
            })
    }

    /// Renders every metric in Prometheus text exposition format.
    pub fn render(&self) -> String {
        render_registries(std::slice::from_ref(self))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn label_str(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the metrics of several registries into one exposition, grouping
/// samples by family (`# HELP`/`# TYPE` emitted once per family).
pub fn render_registries(registries: &[Registry]) -> String {
    // (family, help, kind) in first-seen order, then all samples per family.
    let mut families: Vec<(String, String, &'static str)> = Vec::new();
    let mut samples: Vec<Vec<String>> = Vec::new();
    for reg in registries {
        let entries = reg.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            let idx = match families.iter().position(|(f, _, _)| *f == e.family) {
                Some(i) => i,
                None => {
                    families.push((e.family.clone(), e.help.clone(), e.value.kind()));
                    samples.push(Vec::new());
                    families.len() - 1
                }
            };
            let fam = &e.family;
            let out = &mut samples[idx];
            match &e.value {
                MetricValue::Counter(c) => {
                    out.push(format!("{fam}{} {}", label_str(&e.labels, None), c.get()));
                }
                MetricValue::Gauge(g) => {
                    out.push(format!("{fam}{} {}", label_str(&e.labels, None), g.get()));
                }
                MetricValue::GaugeFn(f) => {
                    out.push(format!("{fam}{} {}", label_str(&e.labels, None), f()));
                }
                MetricValue::Nanos(h) => {
                    let snap = h.snapshot();
                    for (q, name) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push(format!(
                            "{fam}{} {}",
                            label_str(&e.labels, Some(("quantile", name))),
                            snap.quantile_nanos(q) as f64 * 1e-9
                        ));
                    }
                    out.push(format!(
                        "{fam}_sum{} {}",
                        label_str(&e.labels, None),
                        snap.sum_nanos() as f64 * 1e-9
                    ));
                    out.push(format!(
                        "{fam}_count{} {}",
                        label_str(&e.labels, None),
                        snap.count()
                    ));
                }
                MetricValue::Values(h) => {
                    let snap = h.snapshot();
                    for (q, name) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push(format!(
                            "{fam}{} {}",
                            label_str(&e.labels, Some(("quantile", name))),
                            snap.quantile_nanos(q)
                        ));
                    }
                    out.push(format!(
                        "{fam}_sum{} {}",
                        label_str(&e.labels, None),
                        snap.sum_nanos()
                    ));
                    out.push(format!(
                        "{fam}_count{} {}",
                        label_str(&e.labels, None),
                        snap.count()
                    ));
                }
            }
        }
    }
    let mut text = String::new();
    for (i, (family, help, kind)) in families.iter().enumerate() {
        if !help.is_empty() {
            let _ = writeln!(text, "# HELP {family} {help}");
        }
        let _ = writeln!(text, "# TYPE {family} {kind}");
        for line in &samples[i] {
            text.push_str(line);
            text.push('\n');
        }
    }
    text
}

/// Point-in-time value of one exported sample. Counters and gauges carry
/// their scalar; histograms carry a full [`LatencySnapshot`] so a remote
/// aggregator can merge bucket counts instead of averaging quantiles.
#[derive(Clone, Debug)]
pub enum SampleKind {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value (stored gauges and render-time gauge functions both
    /// export as this).
    Gauge(f64),
    /// Histogram snapshot.
    Histogram {
        /// Merged bucket counts plus scalar tallies.
        snapshot: LatencySnapshot,
        /// True when the recorded values are nanoseconds (rendered as
        /// seconds); false for dimensionless values (rendered raw).
        is_nanos: bool,
    },
}

/// One metric captured from a [`Registry`] at a point in time — the unit a
/// worker process ships to its supervisor for cluster-wide aggregation.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric family name (e.g. `tuples_emitted_total`).
    pub family: String,
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text emitted once per family.
    pub help: String,
    /// The captured value.
    pub kind: SampleKind,
}

impl Registry {
    /// Snapshots every metric into owned [`Sample`]s. Gauge functions are
    /// evaluated now; histogram buckets are copied so the samples stay
    /// coherent if the live metrics keep moving.
    pub fn export(&self) -> Vec<Sample> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|e| Sample {
                family: e.family.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                kind: match &e.value {
                    MetricValue::Counter(c) => SampleKind::Counter(c.get()),
                    MetricValue::Gauge(g) => SampleKind::Gauge(g.get()),
                    MetricValue::GaugeFn(f) => SampleKind::Gauge(f()),
                    MetricValue::Nanos(h) => SampleKind::Histogram {
                        snapshot: h.snapshot(),
                        is_nanos: true,
                    },
                    MetricValue::Values(h) => SampleKind::Histogram {
                        snapshot: h.snapshot(),
                        is_nanos: false,
                    },
                },
            })
            .collect()
    }
}

impl SampleKind {
    fn kind_str(&self) -> &'static str {
        match self {
            SampleKind::Counter(_) => "counter",
            SampleKind::Gauge(_) => "gauge",
            SampleKind::Histogram { .. } => "summary",
        }
    }
}

/// Merges metric samples reported by many worker processes into one
/// exposition. Each worker's latest report replaces its previous one;
/// [`ClusterScrape::render`] emits every series twice — once labelled with
/// its `worker`, and once aggregated across workers (counters and gauges
/// sum, histograms merge bucket-wise via [`LatencySnapshot::merge`]).
#[derive(Default)]
pub struct ClusterScrape {
    /// (worker id, its latest samples), insertion order.
    workers: Vec<(String, Vec<Sample>)>,
}

impl std::fmt::Debug for ClusterScrape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterScrape")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ClusterScrape {
    /// An empty scrape with no worker reports.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces `worker`'s samples with a fresh report (first report
    /// inserts). Workers re-report periodically; only the latest snapshot
    /// per worker counts, so counters are not double-summed.
    pub fn ingest(&mut self, worker: &str, samples: Vec<Sample>) {
        match self.workers.iter_mut().find(|(w, _)| w == worker) {
            Some((_, slot)) => *slot = samples,
            None => self.workers.push((worker.to_string(), samples)),
        }
    }

    /// Cluster-wide aggregate series: samples grouped by
    /// `(family, labels)` across workers, counters and gauges summed,
    /// histograms merged bucket-wise. Kind conflicts keep the first-seen
    /// kind and drop the conflicting report.
    pub fn aggregate(&self) -> Vec<Sample> {
        let mut out: Vec<Sample> = Vec::new();
        for (_, samples) in &self.workers {
            for s in samples {
                match out
                    .iter_mut()
                    .find(|a| a.family == s.family && a.labels == s.labels)
                {
                    None => out.push(s.clone()),
                    Some(agg) => match (&mut agg.kind, &s.kind) {
                        (SampleKind::Counter(a), SampleKind::Counter(b)) => {
                            *a = a.saturating_add(*b);
                        }
                        (SampleKind::Gauge(a), SampleKind::Gauge(b)) => *a += b,
                        (
                            SampleKind::Histogram { snapshot: a, .. },
                            SampleKind::Histogram { snapshot: b, .. },
                        ) => a.merge(b),
                        _ => {}
                    },
                }
            }
        }
        out
    }

    /// Renders every worker's series (labelled `worker="<id>"`) plus the
    /// cluster aggregates, in Prometheus text exposition format with one
    /// `# HELP`/`# TYPE` pair per family.
    pub fn render(&self) -> String {
        // (family, help, kind) in first-seen order, then samples per family.
        let mut families: Vec<(String, String, &'static str)> = Vec::new();
        let mut lines: Vec<Vec<String>> = Vec::new();
        let push = |families: &mut Vec<(String, String, &'static str)>,
                    lines: &mut Vec<Vec<String>>,
                    s: &Sample,
                    worker: Option<&str>| {
            let idx = match families.iter().position(|(f, _, _)| *f == s.family) {
                Some(i) => i,
                None => {
                    families.push((s.family.clone(), s.help.clone(), s.kind.kind_str()));
                    lines.push(Vec::new());
                    families.len() - 1
                }
            };
            sample_lines(&mut lines[idx], s, worker);
        };
        for (worker, samples) in &self.workers {
            for s in samples {
                push(&mut families, &mut lines, s, Some(worker));
            }
        }
        for s in &self.aggregate() {
            push(&mut families, &mut lines, s, None);
        }
        let mut text = String::new();
        for (i, (family, help, kind)) in families.iter().enumerate() {
            if !help.is_empty() {
                let _ = writeln!(text, "# HELP {family} {help}");
            }
            let _ = writeln!(text, "# TYPE {family} {kind}");
            for line in &lines[i] {
                text.push_str(line);
                text.push('\n');
            }
        }
        text
    }
}

/// Appends the exposition lines for one sample, optionally tagged with a
/// `worker` label.
fn sample_lines(out: &mut Vec<String>, s: &Sample, worker: Option<&str>) {
    let fam = &s.family;
    let escaped = worker.map(escape_label);
    let extra = escaped.as_deref().map(|w| ("worker", w));
    match &s.kind {
        SampleKind::Counter(v) => {
            out.push(format!("{fam}{} {v}", label_str(&s.labels, extra)));
        }
        SampleKind::Gauge(v) => {
            out.push(format!("{fam}{} {v}", label_str(&s.labels, extra)));
        }
        SampleKind::Histogram { snapshot, is_nanos } => {
            let scale = |n: u64| {
                if *is_nanos {
                    format!("{}", n as f64 * 1e-9)
                } else {
                    format!("{n}")
                }
            };
            for (q, name) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let mut labels = s.labels.clone();
                if let Some((k, v)) = extra {
                    labels.push((k.to_string(), v.to_string()));
                }
                out.push(format!(
                    "{fam}{} {}",
                    label_str(&labels, Some(("quantile", name))),
                    scale(snapshot.quantile_nanos(q))
                ));
            }
            out.push(format!(
                "{fam}_sum{} {}",
                label_str(&s.labels, extra),
                scale(snapshot.sum_nanos())
            ));
            out.push(format!(
                "{fam}_count{} {}",
                label_str(&s.labels, extra),
                snapshot.count()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", &[("component", "cache")], "cache hits");
        let b = reg.counter("hits_total", &[("component", "cache")], "cache hits");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "both handles share one counter");
        assert_eq!(
            reg.counter_value("hits_total", &[("component", "cache")]),
            Some(4)
        );
        // A different label set is a different counter.
        let c = reg.counter("hits_total", &[("component", "other")], "cache hits");
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_add_get() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[], "queue depth");
        g.set(5.0);
        g.add(-2.0);
        assert_eq!(g.get(), 3.0);
        assert_eq!(reg.gauge_value("depth", &[]), Some(3.0));
    }

    #[test]
    fn gauge_fn_computes_at_read_time() {
        let reg = Registry::new();
        let hits = Counter::new();
        let misses = Counter::new();
        let (h, m) = (hits.clone(), misses.clone());
        reg.register_gauge_fn("hit_ratio", &[], "hits / lookups", move || {
            let (h, m) = (h.get() as f64, m.get() as f64);
            if h + m == 0.0 {
                0.0
            } else {
                h / (h + m)
            }
        });
        assert_eq!(reg.gauge_value("hit_ratio", &[]), Some(0.0));
        hits.add(3);
        misses.inc();
        assert_eq!(reg.gauge_value("hit_ratio", &[]), Some(0.75));
    }

    #[test]
    fn render_groups_families_and_formats_labels() {
        let reg = Registry::new();
        reg.counter("reqs_total", &[("shard", "0")], "requests")
            .add(7);
        reg.gauge("depth", &[], "queue depth").set(2.0);
        reg.counter("reqs_total", &[("shard", "1")], "requests")
            .inc();
        let h = reg.histogram_nanos("latency_seconds", &[("stage", "exec")], "exec latency");
        h.record_nanos(1_000_000_000);
        let text = reg.render();
        assert_eq!(
            text.matches("# TYPE reqs_total counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("reqs_total{shard=\"0\"} 7"), "{text}");
        assert!(text.contains("reqs_total{shard=\"1\"} 1"), "{text}");
        assert!(text.contains("depth 2"), "{text}");
        assert!(text.contains("# TYPE latency_seconds summary"), "{text}");
        assert!(
            text.contains("latency_seconds{stage=\"exec\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("latency_seconds_count{stage=\"exec\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn value_histogram_renders_raw_units() {
        let reg = Registry::new();
        let h = reg.histogram_values("batch_size", &[], "tuples per batch");
        for _ in 0..10 {
            h.record_nanos(64);
        }
        let text = reg.render();
        assert!(text.contains("batch_size{quantile=\"0.5\"} 64"), "{text}");
        assert!(text.contains("batch_size_sum 640"), "{text}");
    }

    #[test]
    fn export_snapshots_all_kinds() {
        let reg = Registry::new();
        reg.counter("c_total", &[("shard", "0")], "c").add(5);
        reg.gauge("g", &[], "g").set(1.5);
        reg.register_gauge_fn("gf", &[], "gf", || 7.0);
        reg.histogram_nanos("lat_seconds", &[], "lat")
            .record_nanos(2_000_000_000);
        let samples = reg.export();
        assert_eq!(samples.len(), 4);
        assert!(matches!(samples[0].kind, SampleKind::Counter(5)));
        assert_eq!(samples[0].labels, vec![("shard".into(), "0".into())]);
        assert!(matches!(samples[1].kind, SampleKind::Gauge(v) if v == 1.5));
        assert!(matches!(samples[2].kind, SampleKind::Gauge(v) if v == 7.0));
        match &samples[3].kind {
            SampleKind::Histogram { snapshot, is_nanos } => {
                assert!(*is_nanos);
                assert_eq!(snapshot.count(), 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn cluster_scrape_labels_workers_and_aggregates() {
        let make = |count: u64, nanos: u64| {
            let reg = Registry::new();
            reg.counter("tuples_total", &[("component", "cf")], "tuples")
                .add(count);
            reg.histogram_nanos("lat_seconds", &[], "latency")
                .record_nanos(nanos);
            reg.export()
        };
        let mut scrape = ClusterScrape::new();
        scrape.ingest("0", make(10, 1_000));
        scrape.ingest("1", make(32, 3_000));
        // Re-ingest replaces worker 0's report instead of double counting.
        scrape.ingest("0", make(12, 1_000));

        let agg = scrape.aggregate();
        let tuples = agg.iter().find(|s| s.family == "tuples_total").unwrap();
        assert!(matches!(tuples.kind, SampleKind::Counter(44)));
        let lat = agg.iter().find(|s| s.family == "lat_seconds").unwrap();
        match &lat.kind {
            SampleKind::Histogram { snapshot, .. } => assert_eq!(snapshot.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }

        let text = scrape.render();
        assert!(
            text.contains("tuples_total{component=\"cf\",worker=\"0\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("tuples_total{component=\"cf\",worker=\"1\"} 32"),
            "{text}"
        );
        assert!(text.contains("tuples_total{component=\"cf\"} 44"), "{text}");
        assert!(text.contains("lat_seconds_count{worker=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_count 2"), "{text}");
        assert_eq!(
            text.matches("# TYPE tuples_total counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
    }

    #[test]
    fn attach_existing_handles() {
        let reg = Registry::new();
        let c = Counter::new();
        c.add(9);
        reg.register_counter("preexisting_total", &[], "attached", &c);
        assert_eq!(reg.counter_value("preexisting_total", &[]), Some(9));
        let h = Arc::new(LatencyHistogram::new());
        h.record_nanos(5);
        reg.register_histogram_values("sizes", &[], "attached", &h);
        assert_eq!(reg.histogram_snapshot("sizes", &[]).unwrap().count(), 1);
    }
}
