//! Labelled metric registry with Prometheus-style text exposition.
//!
//! A [`Registry`] is a cheap cloneable handle (all clones share one store)
//! that hands out [`Counter`], [`Gauge`] and histogram handles keyed by
//! `(family, labels)`. Registration is idempotent: asking twice for the
//! same family and label set returns the *same* underlying metric, so a
//! bolt factory invoked once per task can register from every task and all
//! tasks share one counter. Existing atomics can also be attached, so
//! subsystems that already keep their own counters (the tstorm component
//! metrics, the serve shard counters) expose them without double counting.

use crate::histogram::{LatencyHistogram, LatencySnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; increments are relaxed and wait-free.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zero counter, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic). Cloning shares
/// the underlying value.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh zero gauge, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Callback evaluated at render time (for mirroring state that already
/// lives elsewhere, e.g. an in-flight count or a derived ratio).
type GaugeFn = Arc<dyn Fn() -> f64 + Send + Sync>;

enum MetricValue {
    Counter(Counter),
    Gauge(Gauge),
    GaugeFn(GaugeFn),
    /// Histogram of durations in nanoseconds; rendered in seconds.
    Nanos(Arc<LatencyHistogram>),
    /// Histogram of dimensionless values (batch sizes); rendered raw.
    Values(Arc<LatencyHistogram>),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) | MetricValue::GaugeFn(_) => "gauge",
            MetricValue::Nanos(_) | MetricValue::Values(_) => "summary",
        }
    }
}

struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    help: String,
    value: MetricValue,
}

/// Shared, labelled metric store. See the module docs.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        extract: impl Fn(&MetricValue) -> Option<T>,
        make: impl FnOnce() -> (T, MetricValue),
    ) -> T {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        if let Some(e) = entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
        {
            return extract(&e.value).unwrap_or_else(|| {
                panic!(
                    "metric `{family}` registered twice with conflicting types ({})",
                    e.value.kind()
                )
            });
        }
        let (handle, value) = make();
        entries.push(Entry {
            family: family.to_string(),
            labels: owned,
            help: help.to_string(),
            value,
        });
        handle
    }

    /// Counter under `(family, labels)`; created on first call, shared on
    /// every subsequent call with the same key.
    pub fn counter(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), MetricValue::Counter(c))
            },
        )
    }

    /// Gauge under `(family, labels)`; created on first call, shared after.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), MetricValue::Gauge(g))
            },
        )
    }

    /// Duration histogram under `(family, labels)`, rendered in seconds;
    /// created on first call, shared after.
    pub fn histogram_nanos(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<LatencyHistogram> {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Nanos(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(LatencyHistogram::new());
                (Arc::clone(&h), MetricValue::Nanos(h))
            },
        )
    }

    /// Dimensionless-value histogram (e.g. batch sizes), rendered raw;
    /// created on first call, shared after.
    pub fn histogram_values(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<LatencyHistogram> {
        self.get_or_insert(
            family,
            labels,
            help,
            |v| match v {
                MetricValue::Values(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(LatencyHistogram::new());
                (Arc::clone(&h), MetricValue::Values(h))
            },
        )
    }

    /// Attaches an existing counter handle under `(family, labels)`.
    /// No-op if the key is already registered.
    pub fn register_counter(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        counter: &Counter,
    ) {
        let c = counter.clone();
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Counter(c)),
        );
    }

    /// Attaches an existing gauge handle under `(family, labels)`.
    /// No-op if the key is already registered.
    pub fn register_gauge(&self, family: &str, labels: &[(&str, &str)], help: &str, gauge: &Gauge) {
        let g = gauge.clone();
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Gauge(g)),
        );
    }

    /// Registers a gauge whose value is computed by `f` at render time.
    /// No-op if the key is already registered.
    pub fn register_gauge_fn(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::GaugeFn(Arc::new(f))),
        );
    }

    /// Attaches an existing duration histogram under `(family, labels)`.
    /// No-op if the key is already registered.
    pub fn register_histogram_nanos(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        histogram: &Arc<LatencyHistogram>,
    ) {
        let h = Arc::clone(histogram);
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Nanos(h)),
        );
    }

    /// Attaches an existing dimensionless-value histogram under
    /// `(family, labels)`. No-op if the key is already registered.
    pub fn register_histogram_values(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        help: &str,
        histogram: &Arc<LatencyHistogram>,
    ) {
        let h = Arc::clone(histogram);
        self.get_or_insert(
            family,
            labels,
            help,
            |_| Some(()),
            move || ((), MetricValue::Values(h)),
        );
    }

    /// Current value of a registered counter, for tests and harnesses.
    pub fn counter_value(&self, family: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
            .and_then(|e| match &e.value {
                MetricValue::Counter(c) => Some(c.get()),
                _ => None,
            })
    }

    /// Current value of a registered gauge (stored or computed).
    pub fn gauge_value(&self, family: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
            .and_then(|e| match &e.value {
                MetricValue::Gauge(g) => Some(g.get()),
                MetricValue::GaugeFn(f) => Some(f()),
                _ => None,
            })
    }

    /// Snapshot of a registered histogram (duration or value).
    pub fn histogram_snapshot(
        &self,
        family: &str,
        labels: &[(&str, &str)],
    ) -> Option<LatencySnapshot> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let owned = owned_labels(labels);
        entries
            .iter()
            .find(|e| e.family == family && e.labels == owned)
            .and_then(|e| match &e.value {
                MetricValue::Nanos(h) | MetricValue::Values(h) => Some(h.snapshot()),
                _ => None,
            })
    }

    /// Renders every metric in Prometheus text exposition format.
    pub fn render(&self) -> String {
        render_registries(std::slice::from_ref(self))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

fn label_str(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the metrics of several registries into one exposition, grouping
/// samples by family (`# HELP`/`# TYPE` emitted once per family).
pub fn render_registries(registries: &[Registry]) -> String {
    // (family, help, kind) in first-seen order, then all samples per family.
    let mut families: Vec<(String, String, &'static str)> = Vec::new();
    let mut samples: Vec<Vec<String>> = Vec::new();
    for reg in registries {
        let entries = reg.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            let idx = match families.iter().position(|(f, _, _)| *f == e.family) {
                Some(i) => i,
                None => {
                    families.push((e.family.clone(), e.help.clone(), e.value.kind()));
                    samples.push(Vec::new());
                    families.len() - 1
                }
            };
            let fam = &e.family;
            let out = &mut samples[idx];
            match &e.value {
                MetricValue::Counter(c) => {
                    out.push(format!("{fam}{} {}", label_str(&e.labels, None), c.get()));
                }
                MetricValue::Gauge(g) => {
                    out.push(format!("{fam}{} {}", label_str(&e.labels, None), g.get()));
                }
                MetricValue::GaugeFn(f) => {
                    out.push(format!("{fam}{} {}", label_str(&e.labels, None), f()));
                }
                MetricValue::Nanos(h) => {
                    let snap = h.snapshot();
                    for (q, name) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push(format!(
                            "{fam}{} {}",
                            label_str(&e.labels, Some(("quantile", name))),
                            snap.quantile_nanos(q) as f64 * 1e-9
                        ));
                    }
                    out.push(format!(
                        "{fam}_sum{} {}",
                        label_str(&e.labels, None),
                        snap.sum_nanos() as f64 * 1e-9
                    ));
                    out.push(format!(
                        "{fam}_count{} {}",
                        label_str(&e.labels, None),
                        snap.count()
                    ));
                }
                MetricValue::Values(h) => {
                    let snap = h.snapshot();
                    for (q, name) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push(format!(
                            "{fam}{} {}",
                            label_str(&e.labels, Some(("quantile", name))),
                            snap.quantile_nanos(q)
                        ));
                    }
                    out.push(format!(
                        "{fam}_sum{} {}",
                        label_str(&e.labels, None),
                        snap.sum_nanos()
                    ));
                    out.push(format!(
                        "{fam}_count{} {}",
                        label_str(&e.labels, None),
                        snap.count()
                    ));
                }
            }
        }
    }
    let mut text = String::new();
    for (i, (family, help, kind)) in families.iter().enumerate() {
        if !help.is_empty() {
            let _ = writeln!(text, "# HELP {family} {help}");
        }
        let _ = writeln!(text, "# TYPE {family} {kind}");
        for line in &samples[i] {
            text.push_str(line);
            text.push('\n');
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", &[("component", "cache")], "cache hits");
        let b = reg.counter("hits_total", &[("component", "cache")], "cache hits");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "both handles share one counter");
        assert_eq!(
            reg.counter_value("hits_total", &[("component", "cache")]),
            Some(4)
        );
        // A different label set is a different counter.
        let c = reg.counter("hits_total", &[("component", "other")], "cache hits");
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_add_get() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[], "queue depth");
        g.set(5.0);
        g.add(-2.0);
        assert_eq!(g.get(), 3.0);
        assert_eq!(reg.gauge_value("depth", &[]), Some(3.0));
    }

    #[test]
    fn gauge_fn_computes_at_read_time() {
        let reg = Registry::new();
        let hits = Counter::new();
        let misses = Counter::new();
        let (h, m) = (hits.clone(), misses.clone());
        reg.register_gauge_fn("hit_ratio", &[], "hits / lookups", move || {
            let (h, m) = (h.get() as f64, m.get() as f64);
            if h + m == 0.0 {
                0.0
            } else {
                h / (h + m)
            }
        });
        assert_eq!(reg.gauge_value("hit_ratio", &[]), Some(0.0));
        hits.add(3);
        misses.inc();
        assert_eq!(reg.gauge_value("hit_ratio", &[]), Some(0.75));
    }

    #[test]
    fn render_groups_families_and_formats_labels() {
        let reg = Registry::new();
        reg.counter("reqs_total", &[("shard", "0")], "requests")
            .add(7);
        reg.gauge("depth", &[], "queue depth").set(2.0);
        reg.counter("reqs_total", &[("shard", "1")], "requests")
            .inc();
        let h = reg.histogram_nanos("latency_seconds", &[("stage", "exec")], "exec latency");
        h.record_nanos(1_000_000_000);
        let text = reg.render();
        assert_eq!(
            text.matches("# TYPE reqs_total counter").count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("reqs_total{shard=\"0\"} 7"), "{text}");
        assert!(text.contains("reqs_total{shard=\"1\"} 1"), "{text}");
        assert!(text.contains("depth 2"), "{text}");
        assert!(text.contains("# TYPE latency_seconds summary"), "{text}");
        assert!(
            text.contains("latency_seconds{stage=\"exec\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("latency_seconds_count{stage=\"exec\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn value_histogram_renders_raw_units() {
        let reg = Registry::new();
        let h = reg.histogram_values("batch_size", &[], "tuples per batch");
        for _ in 0..10 {
            h.record_nanos(64);
        }
        let text = reg.render();
        assert!(text.contains("batch_size{quantile=\"0.5\"} 64"), "{text}");
        assert!(text.contains("batch_size_sum 640"), "{text}");
    }

    #[test]
    fn attach_existing_handles() {
        let reg = Registry::new();
        let c = Counter::new();
        c.add(9);
        reg.register_counter("preexisting_total", &[], "attached", &c);
        assert_eq!(reg.counter_value("preexisting_total", &[]), Some(9));
        let h = Arc::new(LatencyHistogram::new());
        h.record_nanos(5);
        reg.register_histogram_values("sizes", &[], "attached", &h);
        assert_eq!(reg.histogram_snapshot("sizes", &[]).unwrap().count(), 1);
    }
}
