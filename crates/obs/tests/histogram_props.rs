//! Wire-safety properties for [`LatencySnapshot`]: the sparse `(bucket,
//! count)` representation must round-trip exactly, and merging snapshots
//! recorded on separate histograms — including snapshots that crossed the
//! wire — must equal recording everything into one histogram directly.

use obs::{LatencyHistogram, LatencySnapshot};
use proptest::prelude::*;

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes so many distinct buckets are occupied: sub-linear
    // range, microseconds, milliseconds, multi-second outliers.
    prop::collection::vec(
        prop_oneof![
            0u64..64,
            1_000u64..100_000,
            1_000_000u64..50_000_000,
            1_000_000_000u64..20_000_000_000,
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_wire_roundtrip_is_exact(values in arb_values()) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_nanos(v);
        }
        let snap = h.snapshot();
        let rebuilt = LatencySnapshot::from_parts(
            &snap.sparse_counts(),
            snap.count(),
            snap.sum_nanos(),
            snap.max_nanos(),
        );
        prop_assert_eq!(&rebuilt, &snap);
        prop_assert_eq!(rebuilt.count(), values.len() as u64);
        prop_assert_eq!(rebuilt.sum_nanos(), values.iter().sum::<u64>());
        prop_assert_eq!(rebuilt.max_nanos(), values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn merge_of_wire_snapshots_equals_direct_combined_recording(
        a_values in arb_values(),
        b_values in arb_values(),
    ) {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        for &v in &a_values {
            a.record_nanos(v);
            combined.record_nanos(v);
        }
        for &v in &b_values {
            b.record_nanos(v);
            combined.record_nanos(v);
        }
        // Both halves cross the wire before merging (shard -> server path).
        let wire = |s: &LatencySnapshot| {
            LatencySnapshot::from_parts(
                &s.sparse_counts(),
                s.count(),
                s.sum_nanos(),
                s.max_nanos(),
            )
        };
        let mut merged = wire(&a.snapshot());
        merged.merge(&wire(&b.snapshot()));
        prop_assert_eq!(&merged, &combined.snapshot());
        // Order independence: b then a gives the same distribution.
        let mut reversed = wire(&b.snapshot());
        reversed.merge(&wire(&a.snapshot()));
        prop_assert_eq!(&reversed, &merged);
        // Merging into an empty default accumulator is lossless too.
        let mut acc = LatencySnapshot::default();
        acc.merge(&merged);
        prop_assert_eq!(&acc, &merged);
    }

    #[test]
    fn malformed_wire_tallies_are_clamped_consistent(
        values in arb_values(),
        bogus_total in any::<u64>(),
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_nanos(v);
        }
        let snap = h.snapshot();
        // A sender whose scalar tallies disagree with its buckets must
        // still decode to a snapshot whose scalars match its buckets.
        let decoded =
            LatencySnapshot::from_parts(&snap.sparse_counts(), bogus_total, 0, 0);
        prop_assert_eq!(decoded.count(), values.len() as u64);
        if !values.is_empty() {
            prop_assert!(decoded.sum_nanos() > 0 || values.iter().all(|&v| v == 0));
            prop_assert!(decoded.max_nanos() <= snap.max_nanos());
            prop_assert!(decoded.quantile(1.0).as_nanos() as u64 <= decoded.max_nanos().max(1));
        }
    }
}
