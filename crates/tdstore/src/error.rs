//! Error type for TDStore operations.

use std::fmt;

/// Errors returned by the TDStore client and servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The addressed data server is down.
    ServerDown(u32),
    /// No data server is available to host an instance.
    NoServers,
    /// An instance id is not in the route table.
    UnknownInstance(u32),
    /// A disk operation failed (FDB engine).
    Io(String),
    /// An instance has no live replica left.
    InstanceLost(u32),
    /// A fault injected by a chaos [`tchaos::FaultPlan`]; the write it
    /// replaced was never applied, so retrying is always safe.
    Injected,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ServerDown(id) => write!(f, "data server {id} is down"),
            StoreError::NoServers => write!(f, "no data servers available"),
            StoreError::UnknownInstance(i) => write!(f, "unknown data instance {i}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::InstanceLost(i) => {
                write!(f, "data instance {i} has no live replica")
            }
            StoreError::Injected => write!(f, "injected fault (chaos testing)"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
