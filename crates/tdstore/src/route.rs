//! Route table and config servers.
//!
//! Keys hash to **data instances**; the route table maps each instance to a
//! host data server and a slave data server. Backup is "in the granularity
//! of data instance [so] a data server may be the host server of some data
//! instances but the backup server of others" — which keeps every server
//! serving traffic. A host + backup config-server pair owns the table.

use crate::error::StoreError;
use parking_lot::RwLock;
use std::sync::Arc;

/// Identifier of a data server.
pub type ServerId = u32;
/// Identifier of a data instance (a shard of the key space).
pub type InstanceId = u32;

/// Placement of one data instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceRoute {
    /// Serving replica.
    pub host: ServerId,
    /// Backup replica (absent when replication is disabled).
    pub slave: Option<ServerId>,
    /// Bumped on every placement change (failover, slave reassignment).
    /// Queued replication ops carry the generation they were recorded
    /// under; applying one against a newer route would write stale data
    /// to a freshly re-seeded replica.
    pub generation: u64,
}

/// The full instance → servers mapping.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<InstanceRoute>,
}

impl RouteTable {
    /// Builds a table for `instances` instances over `servers` servers,
    /// striping hosts round-robin and placing each slave on the next
    /// server (so every server hosts some instances and backs up others).
    pub fn new(instances: u32, servers: u32, replicated: bool) -> Self {
        assert!(servers > 0, "need at least one data server");
        let routes = (0..instances)
            .map(|i| InstanceRoute {
                host: i % servers,
                slave: (replicated && servers > 1).then(|| (i + 1) % servers),
                generation: 0,
            })
            .collect();
        RouteTable { routes }
    }

    /// Route for one instance.
    pub fn get(&self, instance: InstanceId) -> Result<&InstanceRoute, StoreError> {
        self.routes
            .get(instance as usize)
            .ok_or(StoreError::UnknownInstance(instance))
    }

    /// Number of instances.
    pub fn instances(&self) -> u32 {
        self.routes.len() as u32
    }

    /// Instance for a key: FNV-1a hash mod instance count.
    pub fn instance_for(&self, key: &[u8]) -> InstanceId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.routes.len() as u64) as InstanceId
    }

    fn set(&mut self, instance: InstanceId, route: InstanceRoute) {
        self.routes[instance as usize] = route;
    }

    /// Instances hosted by `server`.
    pub fn hosted_by(&self, server: ServerId) -> Vec<InstanceId> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.host == server)
            .map(|(i, _)| i as InstanceId)
            .collect()
    }

    /// Instances backed up by `server`.
    pub fn backed_by(&self, server: ServerId) -> Vec<InstanceId> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.slave == Some(server))
            .map(|(i, _)| i as InstanceId)
            .collect()
    }
}

/// Shared state of the config-server pair (host + backup see the same
/// table, so failover of the config server itself loses nothing).
#[derive(Clone)]
pub struct ConfigServers {
    table: Arc<RwLock<RouteTable>>,
}

impl ConfigServers {
    /// Wraps an initial route table.
    pub fn new(table: RouteTable) -> Self {
        ConfigServers {
            table: Arc::new(RwLock::new(table)),
        }
    }

    /// Snapshot of the route table (what a client caches after "query the
    /// host config server to get the route table").
    pub fn route_table(&self) -> RouteTable {
        self.table.read().clone()
    }

    /// Route for one instance.
    pub fn route(&self, instance: InstanceId) -> Result<InstanceRoute, StoreError> {
        self.table.read().get(instance).cloned()
    }

    /// Instance for a key.
    pub fn instance_for(&self, key: &[u8]) -> InstanceId {
        self.table.read().instance_for(key)
    }

    /// Number of instances.
    pub fn instances(&self) -> u32 {
        self.table.read().instances()
    }

    /// Handles the failure of data server `failed`: every instance hosted
    /// there is failed over to its slave (which becomes the host), and a
    /// new slave is chosen among `alive` servers when possible. Returns
    /// `(instance, new_host, new_slave)` for each affected instance so the
    /// store can re-replicate data.
    pub fn fail_server(
        &self,
        failed: ServerId,
        alive: &[ServerId],
    ) -> Result<Vec<(InstanceId, ServerId, Option<ServerId>)>, StoreError> {
        let mut table = self.table.write();
        let mut changed = Vec::new();
        for instance in table.hosted_by(failed) {
            let route = table.get(instance)?.clone();
            let new_host = route.slave.ok_or(StoreError::InstanceLost(instance))?;
            if !alive.contains(&new_host) {
                return Err(StoreError::InstanceLost(instance));
            }
            let new_slave = alive
                .iter()
                .copied()
                .find(|&s| s != new_host)
                .filter(|_| alive.len() > 1);
            table.set(
                instance,
                InstanceRoute {
                    host: new_host,
                    slave: new_slave,
                    generation: route.generation + 1,
                },
            );
            changed.push((instance, new_host, new_slave));
        }
        // Instances that used `failed` as slave lose their backup until a
        // new slave is assigned.
        for instance in table.backed_by(failed) {
            let route = table.get(instance)?.clone();
            let new_slave = alive.iter().copied().find(|&s| s != route.host);
            table.set(
                instance,
                InstanceRoute {
                    host: route.host,
                    slave: new_slave,
                    generation: route.generation + 1,
                },
            );
            if let Some(ns) = new_slave {
                changed.push((instance, route.host, Some(ns)));
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_placement_uses_every_server() {
        let t = RouteTable::new(8, 4, true);
        for s in 0..4 {
            assert_eq!(t.hosted_by(s).len(), 2);
            assert_eq!(t.backed_by(s).len(), 2);
        }
        // Host and slave always differ.
        for i in 0..8 {
            let r = t.get(i).unwrap();
            assert_ne!(Some(r.host), r.slave);
        }
    }

    #[test]
    fn single_server_has_no_slave() {
        let t = RouteTable::new(4, 1, true);
        assert_eq!(t.get(0).unwrap().slave, None);
    }

    #[test]
    fn key_hash_is_stable_and_in_range() {
        let t = RouteTable::new(16, 4, false);
        let a = t.instance_for(b"user:42");
        let b = t.instance_for(b"user:42");
        assert_eq!(a, b);
        assert!(a < 16);
    }

    #[test]
    fn fail_server_promotes_slaves() {
        let cfg = ConfigServers::new(RouteTable::new(8, 4, true));
        let changed = cfg.fail_server(0, &[1, 2, 3]).unwrap();
        assert!(!changed.is_empty());
        let table = cfg.route_table();
        assert!(table.hosted_by(0).is_empty());
        assert!(table.backed_by(0).is_empty());
        for i in 0..8 {
            let r = table.get(i).unwrap();
            assert_ne!(r.host, 0);
            assert_ne!(r.slave, Some(0));
            assert_ne!(Some(r.host), r.slave);
        }
    }

    #[test]
    fn fail_server_bumps_generation_of_changed_routes() {
        let cfg = ConfigServers::new(RouteTable::new(8, 4, true));
        let before = cfg.route_table();
        cfg.fail_server(0, &[1, 2, 3]).unwrap();
        let after = cfg.route_table();
        for i in 0..8 {
            let (old, new) = (before.get(i).unwrap(), after.get(i).unwrap());
            if old.host == 0 || old.slave == Some(0) {
                assert_eq!(new.generation, old.generation + 1, "instance {i}");
            } else {
                assert_eq!(new.generation, old.generation, "instance {i} untouched");
            }
        }
    }

    #[test]
    fn fail_unreplicated_instance_is_lost() {
        let cfg = ConfigServers::new(RouteTable::new(4, 2, false));
        assert!(matches!(
            cfg.fail_server(0, &[1]),
            Err(StoreError::InstanceLost(_))
        ));
    }

    #[test]
    fn unknown_instance_errors() {
        let t = RouteTable::new(2, 1, false);
        assert!(matches!(t.get(9), Err(StoreError::UnknownInstance(9))));
    }
}
