#![warn(missing_docs)]
//! # tdstore — Tencent Data Store
//!
//! Reproduction of the paper's TDStore (§3.3): a distributed memory-based
//! key-value store holding the recommendation *status data* (user
//! histories, `itemCount`s, `pairCount`s, similar-item lists), so that the
//! stream topology itself can stay state-free and fail fast.
//!
//! * A **config-server pair** owns the route table; clients fetch it once
//!   and then talk to data servers directly.
//! * The key space is split into **data instances**; each instance has a
//!   host replica and a slave replica on different data servers, so "almost
//!   all the data servers are providing service simultaneously".
//! * Hosts notify slaves after updates and the slave applies them "when
//!   idle" — reproduced as an explicit sync queue with configurable
//!   auto-sync, so the lazy-replication window is testable.
//! * Storage engines are pluggable: [`engine::MdbEngine`] (sharded memory),
//!   [`engine::LdbEngine`] (log-structured), [`engine::FdbEngine`]
//!   (file-backed).
//!
//! ```
//! use tdstore::{StoreConfig, TdStore};
//! let store = TdStore::new(StoreConfig::default());
//! store.put(b"item_count:42", 3.5f64.to_le_bytes().to_vec()).unwrap();
//! store.incr_f64(b"item_count:42", 1.5).unwrap();
//! assert_eq!(store.get_f64(b"item_count:42").unwrap(), Some(5.0));
//! ```

pub mod engine;
mod error;
mod route;
mod server;
pub mod snapshot;

pub use engine::{EngineKind, FdbEngine, LdbEngine, MdbEngine, RdbEngine, StorageEngine};
pub use error::StoreError;
pub use route::{ConfigServers, InstanceId, InstanceRoute, RouteTable, ServerId};
pub use server::DataServer;
pub use snapshot::{Snapshot, SnapshotKind, SnapshotMeta, SnapshotRecord, SnapshotStore};

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// A write applied to one storage engine, returning the value that must
/// reach the replica (`None` = deletion).
type Mutation<'a> = dyn FnMut(&Arc<dyn StorageEngine>) -> Option<Vec<u8>> + 'a;

/// Store construction parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of data servers.
    pub servers: u32,
    /// Number of data instances (key-space shards).
    pub instances: u32,
    /// Keep a slave replica per instance.
    pub replicated: bool,
    /// Engine used by every replica.
    pub engine: EngineKind,
    /// Hand the replication queue to the background drainer thread after
    /// this many writes (0 = replicate only on explicit
    /// [`TdStore::sync`]). The drain happens off the write path; call
    /// [`TdStore::sync`] for a synchronous durable point.
    pub sync_every: usize,
    /// Apply every write to host *and* slave synchronously instead of
    /// queueing lazy replication. Slower, but failover is lossless: the
    /// surviving replica always holds every acknowledged write.
    pub write_through: bool,
    /// Fault-injection plan for chaos testing ([`tchaos::FaultPlan::none`]
    /// by default — zero cost when disabled). Sites: `WriteFail` makes a
    /// write return [`StoreError::Injected`] before touching any replica,
    /// `Failover` kills a live data server right after a write completes.
    pub fault_plan: tchaos::FaultPlan,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            servers: 4,
            instances: 16,
            replicated: true,
            engine: EngineKind::Mdb,
            sync_every: 256,
            write_through: false,
            fault_plan: tchaos::FaultPlan::none(),
        }
    }
}

struct SyncOp {
    instance: InstanceId,
    /// Route-table generation the write was recorded under; the op is
    /// dropped at drain time if the instance has since failed over (the
    /// re-seed already copied the host's state, so applying the stale op
    /// to the new slave could resurrect a lost write).
    generation: u64,
    key: Vec<u8>,
    /// `None` = delete.
    value: Option<Vec<u8>>,
}

/// Hand-off point between writers and the background replication
/// drainer. Writers push whole batches of [`SyncOp`]s (taken from
/// `pending` when the auto-sync threshold trips) and ring the condvar;
/// the drainer applies them to slave replicas off the write path, so a
/// writer never pays the drain inline — the paper's "the slave data
/// server will update its data when idle", taken literally.
struct DrainControl {
    // std sync primitives here (not the workspace parking_lot): the
    // drainer parks on a condvar, which parking_lot's vendored stub does
    // not provide.
    queue: std::sync::Mutex<DrainQueue>,
    cv: std::sync::Condvar,
}

struct DrainQueue {
    batches: VecDeque<Vec<SyncOp>>,
    shutdown: bool,
}

impl DrainControl {
    fn new() -> Self {
        DrainControl {
            queue: std::sync::Mutex::new(DrainQueue {
                batches: VecDeque::new(),
                shutdown: false,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, DrainQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Free-standing metric handles; attached to an exposition registry via
/// [`TdStore::register_metrics`]. Kept as plain handles (not registry
/// lookups) so the hot paths never touch the registry lock.
struct StoreMetrics {
    gets: obs::Counter,
    writes: obs::Counter,
    deletes: obs::Counter,
    failovers: obs::Counter,
    replication_queue: obs::Gauge,
}

impl StoreMetrics {
    fn new() -> Self {
        StoreMetrics {
            gets: obs::Counter::new(),
            writes: obs::Counter::new(),
            deletes: obs::Counter::new(),
            failovers: obs::Counter::new(),
            replication_queue: obs::Gauge::new(),
        }
    }
}

struct StoreInner {
    config_servers: ConfigServers,
    servers: Vec<Arc<DataServer>>,
    engine: EngineKind,
    pending: Mutex<Vec<SyncOp>>,
    writes_since_sync: AtomicUsize,
    /// Host writes recorded but not yet applied to a slave (pending +
    /// handed to the drainer); feeds the replication-queue gauge.
    unreplicated: AtomicUsize,
    /// Batches handed off to the background drainer thread.
    drain: Arc<DrainControl>,
    /// Serializes replication appliers (the drainer thread and explicit
    /// [`TdStore::sync`] calls), so ops land on slaves in FIFO order and
    /// `sync()` returning means every previously recorded op is applied.
    drain_lock: Mutex<()>,
    sync_every: usize,
    write_through: bool,
    /// One lock per instance, used only in write-through mode: a write
    /// holds its instance's lock across route lookup + host apply + slave
    /// apply, and failover takes every lock before rerouting, so no write
    /// can land on a replica that is being replaced mid-flight.
    write_locks: Vec<Mutex<()>>,
    fault_plan: tchaos::FaultPlan,
    metrics: StoreMetrics,
}

impl StoreInner {
    /// Applies recorded host writes to their slave replicas. Callers hold
    /// `drain_lock` so concurrent appliers cannot reorder same-key ops.
    fn apply_ops(&self, ops: Vec<SyncOp>) {
        let applied = ops.len();
        for op in ops {
            let Ok(route) = self.config_servers.route(op.instance) else {
                continue;
            };
            // Recorded under an older placement: the instance failed over
            // since, and the re-seed already copied the host's state to
            // the new slave. Applying the stale absolute value here could
            // resurrect a write that was legitimately lost with the old
            // host — drop it.
            if route.generation != op.generation {
                continue;
            }
            let Some(slave) = route.slave else { continue };
            let Ok(engine) = self.servers[slave as usize].replica(op.instance) else {
                continue;
            };
            match op.value {
                Some(v) => engine.put(&op.key, v),
                None => {
                    engine.delete(&op.key);
                }
            }
        }
        if applied > 0 {
            let depth = self
                .unreplicated
                .fetch_sub(applied, Ordering::Relaxed)
                .saturating_sub(applied);
            self.metrics.replication_queue.set(depth as f64);
        }
    }
}

impl Drop for StoreInner {
    fn drop(&mut self) {
        self.drain.lock_queue().shutdown = true;
        self.drain.cv.notify_all();
    }
}

/// An instance id paired with its host engine (internal routing result).
type RoutedEngine = (InstanceId, Arc<dyn StorageEngine>);

/// A set of raw `(key, value)` pairs returned by scans.
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// Client handle to a TDStore deployment. Cheap to clone.
#[derive(Clone)]
pub struct TdStore {
    inner: Arc<StoreInner>,
}

impl TdStore {
    /// Builds an in-process deployment per `config`.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.servers > 0 && config.instances > 0);
        let table = RouteTable::new(config.instances, config.servers, config.replicated);
        let servers: Vec<Arc<DataServer>> = (0..config.servers)
            .map(|i| Arc::new(DataServer::new(i)))
            .collect();
        for instance in 0..config.instances {
            let route = table.get(instance).expect("instance in table").clone();
            servers[route.host as usize].ensure_replica(instance, &config.engine);
            if let Some(slave) = route.slave {
                servers[slave as usize].ensure_replica(instance, &config.engine);
            }
        }
        let store = TdStore {
            inner: Arc::new(StoreInner {
                config_servers: ConfigServers::new(table),
                servers,
                engine: config.engine,
                pending: Mutex::new(Vec::new()),
                writes_since_sync: AtomicUsize::new(0),
                unreplicated: AtomicUsize::new(0),
                drain: Arc::new(DrainControl::new()),
                drain_lock: Mutex::new(()),
                sync_every: config.sync_every,
                write_through: config.write_through,
                write_locks: (0..config.instances).map(|_| Mutex::new(())).collect(),
                fault_plan: config.fault_plan,
                metrics: StoreMetrics::new(),
            }),
        };
        if config.sync_every > 0 {
            store.spawn_drainer();
        }
        store
    }

    /// Background replication applier. Holds only a weak reference so
    /// dropping the last client handle shuts the thread down (StoreInner's
    /// Drop rings the condvar with `shutdown` set).
    fn spawn_drainer(&self) {
        let weak: Weak<StoreInner> = Arc::downgrade(&self.inner);
        let ctl = Arc::clone(&self.inner.drain);
        std::thread::Builder::new()
            .name("tdstore-sync".into())
            .spawn(move || loop {
                {
                    let mut q = ctl.lock_queue();
                    while q.batches.is_empty() && !q.shutdown {
                        q = ctl.cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    if q.shutdown {
                        return;
                    }
                }
                let Some(inner) = weak.upgrade() else { return };
                // Pop under the applier lock (not in the wait above) so a
                // concurrent `sync()` can never apply a newer batch while
                // an older one sits popped-but-unapplied here.
                let _applying = inner.drain_lock.lock();
                let batches: Vec<Vec<SyncOp>> =
                    inner.drain.lock_queue().batches.drain(..).collect();
                for batch in batches {
                    inner.apply_ops(batch);
                }
            })
            .expect("spawn tdstore-sync drainer");
    }

    fn host_engine(&self, key: &[u8]) -> Result<RoutedEngine, StoreError> {
        let instance = self.inner.config_servers.instance_for(key);
        let route = self.inner.config_servers.route(instance)?;
        let engine = self.inner.servers[route.host as usize].replica(instance)?;
        Ok((instance, engine))
    }

    fn record_write(
        &self,
        instance: InstanceId,
        generation: u64,
        key: &[u8],
        value: Option<Vec<u8>>,
    ) {
        {
            let mut pending = self.inner.pending.lock();
            pending.push(SyncOp {
                instance,
                generation,
                key: key.to_vec(),
                value,
            });
        }
        let depth = self.inner.unreplicated.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.metrics.replication_queue.set(depth as f64);
        if self.inner.sync_every > 0
            && self.inner.writes_since_sync.fetch_add(1, Ordering::Relaxed) + 1
                >= self.inner.sync_every
        {
            // Hand the accumulated batch to the background drainer instead
            // of draining inline: the old inline `sync()` here made every
            // `sync_every`-th write pay the whole queue's replication cost
            // (a multi-millisecond p99 spike under load).
            self.inner.writes_since_sync.store(0, Ordering::Relaxed);
            let batch = std::mem::take(&mut *self.inner.pending.lock());
            if !batch.is_empty() {
                let mut q = self.inner.drain.lock_queue();
                q.batches.push_back(batch);
                self.inner.drain.cv.notify_one();
            }
        }
    }

    /// The shared write path. `mutate` applies the change to the host
    /// engine and returns the resulting value (`None` = deleted), which is
    /// then either replicated synchronously (write-through) or queued.
    fn write_op(&self, key: &[u8], mutate: &mut Mutation<'_>) -> Result<(), StoreError> {
        // Injected write failure: checked before any replica is touched,
        // so a failed write has had *no* effect and a retry/replay is safe.
        if self
            .inner
            .fault_plan
            .should_fault(tchaos::FaultSite::WriteFail)
        {
            return Err(StoreError::Injected);
        }
        let instance = self.inner.config_servers.instance_for(key);
        if self.inner.write_through {
            // Failover holds every instance lock while rerouting; seeing
            // a dead host here just means a failover is in progress — spin
            // until the promoted route is visible.
            let mut tries = 0u32;
            loop {
                {
                    let _guard = self.inner.write_locks[instance as usize].lock();
                    let route = self.inner.config_servers.route(instance)?;
                    match self.inner.servers[route.host as usize].replica(instance) {
                        Ok(engine) => {
                            let new = mutate(&engine);
                            if let Some(slave) = route.slave {
                                if let Ok(slave_engine) =
                                    self.inner.servers[slave as usize].replica(instance)
                                {
                                    match new {
                                        Some(v) => slave_engine.put(key, v),
                                        None => {
                                            slave_engine.delete(key);
                                        }
                                    }
                                }
                            }
                            break;
                        }
                        Err(StoreError::ServerDown(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                tries += 1;
                if tries > 100_000 {
                    return Err(StoreError::Io("write-through retry exhausted".into()));
                }
                std::thread::yield_now();
            }
        } else {
            let route = self.inner.config_servers.route(instance)?;
            let engine = self.inner.servers[route.host as usize].replica(instance)?;
            let new = mutate(&engine);
            self.record_write(instance, route.generation, key, new);
        }
        self.maybe_inject_failover();
        Ok(())
    }

    /// Injected failover: kills the highest-numbered live data server
    /// (deterministic given the fault schedule), provided enough servers
    /// remain for every instance to keep a replicated home.
    fn maybe_inject_failover(&self) {
        if !self
            .inner
            .fault_plan
            .should_fault(tchaos::FaultSite::Failover)
        {
            return;
        }
        let alive: Vec<ServerId> = self
            .inner
            .servers
            .iter()
            .filter(|s| s.is_alive())
            .map(|s| s.id())
            .collect();
        if alive.len() >= 3 {
            let victim = *alive.iter().max().expect("non-empty");
            let _ = self.kill_server(victim);
        }
    }

    /// Reads a value.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let (_, engine) = self.host_engine(key)?;
        self.inner.metrics.gets.inc();
        Ok(engine.get(key))
    }

    /// Writes a value.
    pub fn put(&self, key: &[u8], value: Vec<u8>) -> Result<(), StoreError> {
        self.write_op(key, &mut |engine| {
            engine.put(key, value.clone());
            Some(value.clone())
        })?;
        self.inner.metrics.writes.inc();
        Ok(())
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        let mut existed = false;
        self.write_op(key, &mut |engine| {
            existed = engine.delete(key);
            None
        })?;
        self.inner.metrics.deletes.inc();
        Ok(existed)
    }

    /// Atomic read-modify-write on one key; returns the new value.
    pub fn update(
        &self,
        key: &[u8],
        mut f: impl FnMut(Option<&[u8]>) -> Option<Vec<u8>>,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let mut new = None;
        self.write_op(key, &mut |engine| {
            new = engine.update(key, &mut f);
            new.clone()
        })?;
        self.inner.metrics.writes.inc();
        Ok(new)
    }

    /// Typed helper: reads a little-endian `f64`.
    pub fn get_f64(&self, key: &[u8]) -> Result<Option<f64>, StoreError> {
        Ok(self
            .get(key)?
            .and_then(|v| v.as_slice().try_into().ok().map(f64::from_le_bytes)))
    }

    /// Typed helper: atomically adds `delta` to an `f64` (missing = 0);
    /// returns the new value.
    pub fn incr_f64(&self, key: &[u8], delta: f64) -> Result<f64, StoreError> {
        let new = self.update(key, |old| {
            let cur = old
                .and_then(|v| v.try_into().ok().map(f64::from_le_bytes))
                .unwrap_or(0.0);
            Some((cur + delta).to_le_bytes().to_vec())
        })?;
        Ok(new
            .and_then(|v| v.as_slice().try_into().ok().map(f64::from_le_bytes))
            .expect("update always writes"))
    }

    /// Reads many keys in one call (the paper's data servers are sized
    /// for "the large amount of reads and writes"; batching amortises the
    /// routing work). Results align with `keys`; missing keys yield
    /// `None`.
    pub fn batch_get(&self, batch: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, StoreError> {
        batch.iter().map(|key| self.get(key)).collect()
    }

    /// Writes many `(key, value)` pairs in one call.
    pub fn batch_put(&self, batch: Vec<(Vec<u8>, Vec<u8>)>) -> Result<(), StoreError> {
        for (key, value) in batch {
            self.put(&key, value)?;
        }
        Ok(())
    }

    /// All `(key, value)` pairs with the given key prefix, across all
    /// instances (unordered).
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<KvPairs, StoreError> {
        let mut out = Vec::new();
        for instance in 0..self.inner.config_servers.instances() {
            let route = self.inner.config_servers.route(instance)?;
            let engine = self.inner.servers[route.host as usize].replica(instance)?;
            out.extend(engine.scan_prefix(prefix));
        }
        Ok(out)
    }

    /// Total number of live keys (host replicas).
    pub fn len(&self) -> Result<usize, StoreError> {
        let mut total = 0;
        for instance in 0..self.inner.config_servers.instances() {
            let route = self.inner.config_servers.route(instance)?;
            total += self.inner.servers[route.host as usize]
                .replica(instance)?
                .len();
        }
        Ok(total)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }

    /// Drains the replication queue synchronously: applies every recorded
    /// host write — batches already handed to the background drainer and
    /// everything still pending — to the corresponding slave replicas
    /// ("the slave data server will update its data when idle"). When this
    /// returns, every write recorded before the call is on its slave.
    pub fn sync(&self) {
        let _applying = self.inner.drain_lock.lock();
        let batches: Vec<Vec<SyncOp>> = self.inner.drain.lock_queue().batches.drain(..).collect();
        for batch in batches {
            self.inner.apply_ops(batch);
        }
        self.inner.writes_since_sync.store(0, Ordering::Relaxed);
        let ops: Vec<SyncOp> = std::mem::take(&mut *self.inner.pending.lock());
        self.inner.apply_ops(ops);
    }

    /// Number of writes not yet handed to the replication drainer.
    pub fn pending_sync_ops(&self) -> usize {
        self.inner.pending.lock().len()
    }

    /// Host writes not yet applied to a slave replica, including batches
    /// queued at the background drainer.
    pub fn unreplicated_ops(&self) -> usize {
        self.inner.unreplicated.load(Ordering::Relaxed)
    }

    /// Kills data server `id` and fails over every instance it hosted to
    /// its slave; new slaves are provisioned and re-seeded from the new
    /// hosts. Writes that were never synced are lost — exactly the
    /// real-world lazy-replication window.
    pub fn kill_server(&self, id: ServerId) -> Result<(), StoreError> {
        // Write-through: exclude every in-flight write while the routes
        // change and new slaves are seeded, so no write straddles the
        // failover half-applied. Locks are taken in index order; writers
        // hold at most one, so this cannot deadlock.
        let _guards: Vec<_> = if self.inner.write_through {
            self.inner.write_locks.iter().map(|l| l.lock()).collect()
        } else {
            Vec::new()
        };
        self.inner.servers[id as usize].kill();
        let alive: Vec<ServerId> = self
            .inner
            .servers
            .iter()
            .filter(|s| s.is_alive())
            .map(|s| s.id())
            .collect();
        if alive.is_empty() {
            return Err(StoreError::NoServers);
        }
        let changed = self.inner.config_servers.fail_server(id, &alive)?;
        // Re-seed new slaves from their (possibly just-promoted) hosts.
        for (instance, host, slave) in changed {
            let host_engine = self.inner.servers[host as usize].replica(instance)?;
            if let Some(slave) = slave {
                let server = &self.inner.servers[slave as usize];
                server.ensure_replica(instance, &self.inner.engine);
                let slave_engine = server.replica(instance)?;
                for (k, v) in host_engine.scan_prefix(b"") {
                    slave_engine.put(&k, v);
                }
            }
        }
        self.inner.metrics.failovers.inc();
        Ok(())
    }

    /// Attaches this store's metric handles to `registry` so they appear
    /// in its exposition: `tdstore_ops_total{op=...}`,
    /// `tdstore_replication_queue_depth`, `tdstore_failovers_total`.
    /// Idempotent; call once per registry.
    pub fn register_metrics(&self, registry: &obs::Registry) {
        let m = &self.inner.metrics;
        registry.register_counter(
            "tdstore_ops_total",
            &[("op", "get")],
            "Store operations by kind",
            &m.gets,
        );
        registry.register_counter(
            "tdstore_ops_total",
            &[("op", "write")],
            "Store operations by kind",
            &m.writes,
        );
        registry.register_counter(
            "tdstore_ops_total",
            &[("op", "delete")],
            "Store operations by kind",
            &m.deletes,
        );
        registry.register_gauge(
            "tdstore_replication_queue_depth",
            &[],
            "Host writes not yet applied to slave replicas",
            &m.replication_queue,
        );
        registry.register_counter(
            "tdstore_failovers_total",
            &[],
            "Data-server failovers (instances rerouted to slaves)",
            &m.failovers,
        );
    }

    /// Flushes every live replica engine.
    pub fn flush(&self) {
        for server in &self.inner.servers {
            if !server.is_alive() {
                continue;
            }
            for instance in 0..self.inner.config_servers.instances() {
                if let Ok(engine) = server.replica(instance) {
                    engine.flush();
                }
            }
        }
    }

    /// Number of data servers (alive or dead).
    pub fn server_count(&self) -> usize {
        self.inner.servers.len()
    }

    /// Number of failovers this deployment has performed. Monotonic; a
    /// change tells caches layered over the store that unsynced writes may
    /// have been lost (the lazy-replication window) and their copies must
    /// be re-read.
    pub fn failover_count(&self) -> u64 {
        self.inner.metrics.failovers.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TdStore {
        TdStore::new(StoreConfig::default())
    }

    #[test]
    fn basic_round_trip() {
        let s = store();
        assert!(s.get(b"k").unwrap().is_none());
        s.put(b"k", vec![1, 2]).unwrap();
        assert_eq!(s.get(b"k").unwrap(), Some(vec![1, 2]));
        assert!(s.delete(b"k").unwrap());
        assert!(!s.delete(b"k").unwrap());
        assert!(s.is_empty().unwrap());
    }

    #[test]
    fn f64_helpers() {
        let s = store();
        assert_eq!(s.incr_f64(b"c", 2.5).unwrap(), 2.5);
        assert_eq!(s.incr_f64(b"c", -1.0).unwrap(), 1.5);
        assert_eq!(s.get_f64(b"c").unwrap(), Some(1.5));
        assert_eq!(s.get_f64(b"missing").unwrap(), None);
    }

    #[test]
    fn scan_prefix_spans_instances() {
        let s = store();
        for i in 0..64u32 {
            s.put(format!("item:{i}").as_bytes(), vec![i as u8])
                .unwrap();
            s.put(format!("pair:{i}").as_bytes(), vec![i as u8])
                .unwrap();
        }
        assert_eq!(s.scan_prefix(b"item:").unwrap().len(), 64);
        assert_eq!(s.len().unwrap(), 128);
    }

    #[test]
    fn failover_after_sync_preserves_data() {
        let cfg = StoreConfig {
            sync_every: 0, // manual sync
            ..Default::default()
        };
        let s = TdStore::new(cfg);
        for i in 0..100u32 {
            s.put(format!("k{i}").as_bytes(), vec![i as u8]).unwrap();
        }
        s.sync();
        s.kill_server(0).unwrap();
        for i in 0..100u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(vec![i as u8]),
                "key k{i} lost after failover"
            );
        }
    }

    #[test]
    fn failover_without_sync_loses_only_unsynced_writes() {
        let cfg = StoreConfig {
            sync_every: 0,
            ..Default::default()
        };
        let s = TdStore::new(cfg);
        s.put(b"a", vec![1]).unwrap();
        s.sync();
        s.put(b"b", vec![2]).unwrap(); // never synced
        s.kill_server(0).unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(vec![1]));
    }

    #[test]
    fn double_failover_with_enough_servers() {
        let s = TdStore::new(StoreConfig {
            servers: 4,
            instances: 8,
            replicated: true,
            engine: EngineKind::Mdb,
            sync_every: 1,
            ..Default::default()
        });
        for i in 0..50u32 {
            s.put(format!("k{i}").as_bytes(), vec![i as u8]).unwrap();
        }
        // Auto-sync hands batches to the background drainer; force a
        // synchronous durable point before pulling servers out.
        s.sync();
        s.kill_server(0).unwrap();
        s.sync();
        s.kill_server(1).unwrap();
        for i in 0..50u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(vec![i as u8])
            );
        }
    }

    #[test]
    fn auto_sync_triggers() {
        let s = TdStore::new(StoreConfig {
            sync_every: 10,
            ..Default::default()
        });
        for i in 0..25u32 {
            s.put(format!("k{i}").as_bytes(), vec![0]).unwrap();
        }
        assert!(s.pending_sync_ops() < 10);
    }

    #[test]
    fn background_drainer_replicates_without_explicit_sync() {
        let s = TdStore::new(StoreConfig {
            sync_every: 8,
            ..Default::default()
        });
        for i in 0..100u32 {
            s.put(format!("k{i}").as_bytes(), vec![i as u8]).unwrap();
        }
        // The drainer applies handed-off batches off the write path; wait
        // for it to catch up, then only the tail past the last threshold
        // crossing can still be unreplicated.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while s.unreplicated_ops() > s.pending_sync_ops() {
            assert!(
                std::time::Instant::now() < deadline,
                "drainer never caught up: {} unreplicated",
                s.unreplicated_ops()
            );
            std::thread::yield_now();
        }
        assert!(s.pending_sync_ops() < 8);
        s.sync();
        assert_eq!(s.unreplicated_ops(), 0);
        s.kill_server(0).unwrap();
        for i in 0..100u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(vec![i as u8]),
                "key k{i} lost after drained failover"
            );
        }
    }

    #[test]
    fn works_with_ldb_engine() {
        let s = TdStore::new(StoreConfig {
            engine: EngineKind::Ldb,
            ..Default::default()
        });
        for i in 0..200u32 {
            s.incr_f64(format!("c{}", i % 10).as_bytes(), 1.0).unwrap();
        }
        assert_eq!(s.get_f64(b"c3").unwrap(), Some(20.0));
        s.flush();
        assert_eq!(s.get_f64(b"c3").unwrap(), Some(20.0));
    }

    #[test]
    fn batch_ops_round_trip() {
        let s = store();
        s.batch_put(vec![(b"a".to_vec(), vec![1]), (b"b".to_vec(), vec![2])])
            .unwrap();
        let got = s.batch_get(&[b"a", b"missing", b"b"]).unwrap();
        assert_eq!(got, vec![Some(vec![1]), None, Some(vec![2])]);
    }

    #[test]
    fn stale_replication_op_dropped_after_failover() {
        // Regression: a queued replication op recorded before a failover
        // must not be applied after it. The unsynced write v2 is lost with
        // its host — draining the queue afterwards used to push v2 onto
        // the freshly seeded slave, resurrecting it on the *next* failover.
        let s = TdStore::new(StoreConfig {
            servers: 4,
            instances: 8,
            sync_every: 0, // manual drain
            ..Default::default()
        });
        s.put(b"k", vec![1]).unwrap();
        s.sync(); // host and slave both hold v1
        s.put(b"k", vec![2]).unwrap(); // host only; op queued
        let instance = s.inner.config_servers.instance_for(b"k");
        let host = s.inner.config_servers.route(instance).unwrap().host;
        s.kill_server(host).unwrap(); // v2 lost; slave promoted with v1
        s.sync(); // stale op must be dropped, not applied to the new slave
        let new_host = s.inner.config_servers.route(instance).unwrap().host;
        s.kill_server(new_host).unwrap(); // promote the re-seeded slave
        assert_eq!(
            s.get(b"k").unwrap(),
            Some(vec![1]),
            "lost write resurrected by a stale replication op"
        );
    }

    #[test]
    fn write_through_failover_is_lossless() {
        let s = TdStore::new(StoreConfig {
            sync_every: 0,
            write_through: true,
            ..Default::default()
        });
        for i in 0..100u32 {
            s.put(format!("k{i}").as_bytes(), vec![i as u8]).unwrap();
        }
        // Never synced — write-through replicated every write eagerly.
        assert_eq!(s.pending_sync_ops(), 0);
        s.kill_server(0).unwrap();
        s.kill_server(1).unwrap();
        for i in 0..100u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(vec![i as u8]),
                "key k{i} lost despite write-through"
            );
        }
    }

    #[test]
    fn write_through_survives_failover_mid_drain() {
        // Writers keep hammering while a server dies under them; every
        // acknowledged write must be readable afterwards.
        let s = TdStore::new(StoreConfig {
            write_through: true,
            ..Default::default()
        });
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        s.put(format!("w{w}:{i}").as_bytes(), vec![w as u8, i as u8])
                            .unwrap();
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(1));
        s.kill_server(2).unwrap();
        for t in writers {
            t.join().unwrap();
        }
        for w in 0..4u32 {
            for i in 0..200u32 {
                assert_eq!(
                    s.get(format!("w{w}:{i}").as_bytes()).unwrap(),
                    Some(vec![w as u8, i as u8]),
                    "acknowledged write w{w}:{i} lost across mid-drain failover"
                );
            }
        }
    }

    #[test]
    fn injected_write_fail_has_no_effect() {
        let plan = tchaos::FaultPlan::builder(7)
            .site(tchaos::FaultSite::WriteFail, 1.0, 1)
            .build();
        let s = TdStore::new(StoreConfig {
            fault_plan: plan,
            ..Default::default()
        });
        assert!(matches!(s.put(b"k", vec![1]), Err(StoreError::Injected)));
        assert!(s.get(b"k").unwrap().is_none(), "failed write must not land");
        s.put(b"k", vec![2]).unwrap(); // budget of 1 exhausted
        assert_eq!(s.get(b"k").unwrap(), Some(vec![2]));
    }

    #[test]
    fn injected_failover_kills_one_server() {
        let plan = tchaos::FaultPlan::builder(7)
            .site(tchaos::FaultSite::Failover, 1.0, 1)
            .build();
        let s = TdStore::new(StoreConfig {
            write_through: true,
            fault_plan: plan,
            ..Default::default()
        });
        for i in 0..50u32 {
            s.put(format!("k{i}").as_bytes(), vec![i as u8]).unwrap();
        }
        let alive = s.inner.servers.iter().filter(|sv| sv.is_alive()).count();
        assert_eq!(alive, 3, "exactly one injected failover");
        for i in 0..50u32 {
            assert_eq!(
                s.get(format!("k{i}").as_bytes()).unwrap(),
                Some(vec![i as u8])
            );
        }
    }

    #[test]
    fn registry_tracks_ops_queue_and_failovers() {
        let s = TdStore::new(StoreConfig {
            sync_every: 0, // manual drain so the queue depth is observable
            ..Default::default()
        });
        let registry = obs::Registry::new();
        s.register_metrics(&registry);
        for i in 0..5u32 {
            s.put(format!("k{i}").as_bytes(), vec![i as u8]).unwrap();
        }
        s.get(b"k0").unwrap();
        s.delete(b"k4").unwrap();
        assert_eq!(
            registry.counter_value("tdstore_ops_total", &[("op", "write")]),
            Some(5)
        );
        assert_eq!(
            registry.counter_value("tdstore_ops_total", &[("op", "get")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("tdstore_ops_total", &[("op", "delete")]),
            Some(1)
        );
        assert_eq!(
            registry.gauge_value("tdstore_replication_queue_depth", &[]),
            Some(6.0),
            "5 puts + 1 delete queued for lazy replication"
        );
        s.sync();
        assert_eq!(
            registry.gauge_value("tdstore_replication_queue_depth", &[]),
            Some(0.0)
        );
        s.kill_server(0).unwrap();
        assert_eq!(
            registry.counter_value("tdstore_failovers_total", &[]),
            Some(1)
        );
        let text = registry.render();
        assert!(text.contains("tdstore_ops_total{op=\"write\"}"));
        assert!(text.contains("tdstore_replication_queue_depth"));
    }

    #[test]
    fn update_delete_via_none() {
        let s = store();
        s.put(b"k", vec![1]).unwrap();
        let new = s.update(b"k", |_| None).unwrap();
        assert!(new.is_none());
        assert!(s.get(b"k").unwrap().is_none());
    }
}
