//! FDB: append-only log file with an in-memory index.
//!
//! Every put/delete appends a framed record to the log; an in-memory map
//! tracks the latest offset per key. Reopening replays the log, so data
//! survives process restarts. `flush` rewrites the log keeping only live
//! records (compaction); the same rewrite also runs automatically when
//! overwrites and deletes have made more than half the log dead weight
//! (checkpoint blobs churn the same keys every round, which would grow an
//! append-only log without bound).
//!
//! Record framing: `key_len:u32 | key | val_len:i32 | value` where
//! `val_len = -1` marks a delete.

use super::StorageEngine;
use crate::error::StoreError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Auto-compaction floor: logs smaller than this never compact on their
/// own (the rewrite would cost more than the bytes it reclaims).
const COMPACT_MIN_BYTES: u64 = 64 * 1024;

struct FdbInner {
    file: File,
    /// key → (value offset, value length) into the log file.
    index: HashMap<Vec<u8>, (u64, u32)>,
    /// Current append position.
    end: u64,
    /// Bytes of the log occupied by *live* records (the latest put of each
    /// indexed key). `end - live` is dead weight: overwritten values and
    /// delete markers. Maintained incrementally on every append.
    live: u64,
}

/// Size on disk of one put record for `key` carrying `val_len` value bytes.
fn record_bytes(key: &[u8], val_len: u32) -> u64 {
    8 + key.len() as u64 + u64::from(val_len)
}

/// File-backed engine.
pub struct FdbEngine {
    path: PathBuf,
    inner: Mutex<FdbInner>,
}

impl FdbEngine {
    /// Opens (or creates) the log at `path`, replaying existing records.
    pub fn open(path: PathBuf) -> Result<Self, StoreError> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut index = HashMap::new();
        let mut pos = 0usize;
        while pos + 8 <= raw.len() {
            let key_len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + key_len + 4 > raw.len() {
                break; // truncated tail record: ignore
            }
            let key = raw[pos..pos + key_len].to_vec();
            pos += key_len;
            let val_len = i32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap());
            pos += 4;
            if val_len < 0 {
                index.remove(&key);
            } else {
                let val_len = val_len as usize;
                if pos + val_len > raw.len() {
                    break;
                }
                index.insert(key, (pos as u64, val_len as u32));
                pos += val_len;
            }
        }
        let end = pos as u64;
        // Drop any torn tail record so a shorter future append cannot
        // leave stale bytes that replay might misparse.
        file.set_len(end)?;
        file.seek(SeekFrom::Start(end))?;
        let live = index
            .iter()
            .map(|(k, &(_, len))| record_bytes(k, len))
            .sum();
        Ok(FdbEngine {
            path,
            inner: Mutex::new(FdbInner {
                file,
                index,
                end,
                live,
            }),
        })
    }

    fn append(inner: &mut FdbInner, key: &[u8], value: Option<&[u8]>) -> std::io::Result<()> {
        let mut rec = Vec::with_capacity(8 + key.len() + value.map_or(0, <[u8]>::len));
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        match value {
            None => rec.extend_from_slice(&(-1i32).to_le_bytes()),
            Some(v) => {
                rec.extend_from_slice(&(v.len() as i32).to_le_bytes());
                let value_offset = inner.end + rec.len() as u64;
                rec.extend_from_slice(v);
                let prev = inner
                    .index
                    .insert(key.to_vec(), (value_offset, v.len() as u32));
                if let Some((_, old_len)) = prev {
                    inner.live -= record_bytes(key, old_len);
                }
                inner.live += record_bytes(key, v.len() as u32);
            }
        }
        if value.is_none() {
            if let Some((_, old_len)) = inner.index.remove(key) {
                inner.live -= record_bytes(key, old_len);
            }
        }
        inner.file.write_all(&rec)?;
        inner.end += rec.len() as u64;
        Ok(())
    }

    /// Compacts when dead records (overwrites + delete markers) outweigh
    /// live ones and the log is big enough for the rewrite to pay off.
    fn maybe_compact(&self, inner: &mut FdbInner) {
        if inner.end >= COMPACT_MIN_BYTES && (inner.end - inner.live) * 2 > inner.end {
            self.compact(inner);
        }
    }

    /// Rewrites the log with only live records and swaps it in atomically.
    fn compact(&self, inner: &mut FdbInner) {
        let live: Vec<(Vec<u8>, Vec<u8>)> = {
            let keys: Vec<(Vec<u8>, (u64, u32))> = inner
                .index
                .iter()
                .map(|(k, &loc)| (k.clone(), loc))
                .collect();
            keys.into_iter()
                .filter_map(|(k, (off, len))| Self::read_at(inner, off, len).ok().map(|v| (k, v)))
                .collect()
        };
        let tmp = self.path.with_extension("compact");
        {
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .expect("create compact file");
            inner.file = file;
            inner.end = 0;
            inner.live = 0;
            inner.index.clear();
            for (k, v) in live {
                Self::append(inner, &k, Some(&v)).expect("fdb compact append");
            }
            inner.file.sync_all().ok();
        }
        std::fs::rename(&tmp, &self.path).expect("swap compacted log");
        // Reopen the renamed file for continued appends.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .expect("reopen compacted log");
        file.seek(SeekFrom::Start(inner.end)).expect("seek end");
        inner.file = file;
    }

    /// Forces appended records to disk (`fsync`). The write path is
    /// OS-buffered — enough for process-kill durability — so only
    /// ordering-critical writers (the snapshot store's blob-before-
    /// manifest protocol) pay for this.
    pub fn sync(&self) -> std::io::Result<()> {
        self.inner.lock().file.sync_data()
    }

    fn read_at(inner: &mut FdbInner, offset: u64, len: u32) -> std::io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        inner.file.seek(SeekFrom::Start(offset))?;
        inner.file.read_exact(&mut buf)?;
        inner.file.seek(SeekFrom::Start(inner.end))?;
        Ok(buf)
    }
}

impl StorageEngine for FdbEngine {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        let (off, len) = *inner.index.get(key)?;
        Self::read_at(&mut inner, off, len).ok()
    }

    fn put(&self, key: &[u8], value: Vec<u8>) {
        let mut inner = self.inner.lock();
        Self::append(&mut inner, key, Some(&value)).expect("fdb append");
        self.maybe_compact(&mut inner);
    }

    fn delete(&self, key: &[u8]) -> bool {
        let mut inner = self.inner.lock();
        let existed = inner.index.contains_key(key);
        if existed {
            Self::append(&mut inner, key, None).expect("fdb append");
            self.maybe_compact(&mut inner);
        }
        existed
    }

    fn update(&self, key: &[u8], f: &mut super::UpdateFn<'_>) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        let old = inner
            .index
            .get(key)
            .copied()
            .and_then(|(off, len)| Self::read_at(&mut inner, off, len).ok());
        let new = f(old.as_deref());
        Self::append(&mut inner, key, new.as_deref()).expect("fdb append");
        self.maybe_compact(&mut inner);
        new
    }

    fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut inner = self.inner.lock();
        let hits: Vec<(Vec<u8>, (u64, u32))> = inner
            .index
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &loc)| (k.clone(), loc))
            .collect();
        hits.into_iter()
            .filter_map(|(k, (off, len))| Self::read_at(&mut inner, off, len).ok().map(|v| (k, v)))
            .collect()
    }

    /// Compaction: rewrites the log with only live records.
    fn flush(&self) {
        let mut inner = self.inner.lock();
        self.compact(&mut inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::conformance;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fdb-test-{}-{}-{tag}.fdb",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-")
        ))
    }

    fn open(tag: &str) -> FdbEngine {
        let p = temp_path(tag);
        let _ = std::fs::remove_file(&p);
        FdbEngine::open(p).unwrap()
    }

    #[test]
    fn conformance_suite() {
        conformance::basic_crud(&open("crud"));
        conformance::update_semantics(&open("update"));
        conformance::prefix_scan(&open("scan"));
        conformance::many_keys(&open("many"));
    }

    #[test]
    fn reopen_replays_log() {
        let p = temp_path("reopen");
        let _ = std::fs::remove_file(&p);
        {
            let e = FdbEngine::open(p.clone()).unwrap();
            e.put(b"a", vec![1]);
            e.put(b"b", vec![2]);
            e.delete(b"a");
            e.put(b"c", vec![3, 3]);
        }
        let e = FdbEngine::open(p.clone()).unwrap();
        assert!(e.get(b"a").is_none());
        assert_eq!(e.get(b"b"), Some(vec![2]));
        assert_eq!(e.get(b"c"), Some(vec![3, 3]));
        assert_eq!(e.len(), 2);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn truncated_tail_record_is_ignored_on_reopen() {
        // A crash mid-append leaves a partial record at the log tail;
        // reopening must recover everything before it.
        let p = temp_path("torn");
        let _ = std::fs::remove_file(&p);
        {
            let e = FdbEngine::open(p.clone()).unwrap();
            e.put(b"a", vec![1]);
            e.put(b"b", vec![2, 2]);
        }
        // Simulate the torn write.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&(5u32).to_le_bytes()).unwrap(); // key_len
            f.write_all(b"par").unwrap(); // ...but only 3 key bytes
        }
        let e = FdbEngine::open(p.clone()).unwrap();
        assert_eq!(e.get(b"a"), Some(vec![1]));
        assert_eq!(e.get(b"b"), Some(vec![2, 2]));
        assert_eq!(e.len(), 2);
        // And the log remains appendable afterwards.
        e.put(b"c", vec![3]);
        drop(e);
        let e2 = FdbEngine::open(p.clone()).unwrap();
        assert_eq!(e2.get(b"c"), Some(vec![3]));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn churn_triggers_auto_compaction() {
        // Overwriting the same keys forever must not grow the log without
        // bound: once dead bytes outweigh live ones past the floor, the
        // engine compacts by itself — no explicit flush() call.
        let p = temp_path("auto");
        let _ = std::fs::remove_file(&p);
        let e = FdbEngine::open(p.clone()).unwrap();
        let val = vec![0xCD; 1024];
        for round in 0..400u32 {
            for i in 0..16u32 {
                e.put(&i.to_le_bytes(), val.clone());
            }
            // Deletes churn too: their markers are pure dead weight.
            e.put(b"tmp", vec![round as u8; 512]);
            e.delete(b"tmp");
        }
        let size = std::fs::metadata(&p).unwrap().len();
        let live = 16 * (8 + 4 + 1024) as u64;
        assert!(
            size < live * 3 + COMPACT_MIN_BYTES,
            "log should stay near its live size, got {size} for {live} live"
        );
        for i in 0..16u32 {
            assert_eq!(e.get(&i.to_le_bytes()), Some(val.clone()));
        }
        assert!(e.get(b"tmp").is_none());
        // Replay after auto-compaction still sees the same data.
        drop(e);
        let e2 = FdbEngine::open(p.clone()).unwrap();
        assert_eq!(e2.len(), 16);
        assert_eq!(e2.get(&3u32.to_le_bytes()), Some(val));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_data() {
        let p = temp_path("compact");
        let _ = std::fs::remove_file(&p);
        let e = FdbEngine::open(p.clone()).unwrap();
        for round in 0..10u8 {
            for i in 0..20u32 {
                e.put(&i.to_le_bytes(), vec![round; 32]);
            }
        }
        let before = std::fs::metadata(&p).unwrap().len();
        e.flush();
        let after = std::fs::metadata(&p).unwrap().len();
        assert!(after < before / 5, "compaction should drop dead records");
        for i in 0..20u32 {
            assert_eq!(e.get(&i.to_le_bytes()), Some(vec![9; 32]));
        }
        // Still writable after compaction, and replayable.
        e.put(b"post", vec![7]);
        drop(e);
        let e2 = FdbEngine::open(p.clone()).unwrap();
        assert_eq!(e2.get(b"post"), Some(vec![7]));
        assert_eq!(e2.len(), 21);
        let _ = std::fs::remove_file(p);
    }
}
