//! LDB: a log-structured engine (memtable + sorted immutable runs),
//! modelled after the LevelDB engine the paper's data servers support.
//!
//! Writes land in a sorted memtable; when it reaches its limit it is
//! frozen into an immutable sorted run. Deletes write tombstones. Reads
//! consult the memtable first, then runs newest-to-oldest. When the run
//! count exceeds a bound, a full compaction merges everything and drops
//! tombstones.

use super::StorageEngine;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tuning knobs for [`LdbEngine`].
#[derive(Debug, Clone)]
pub struct LdbConfig {
    /// Freeze the memtable into a run at this many entries.
    pub memtable_limit: usize,
    /// Compact when the number of runs exceeds this.
    pub max_runs: usize,
}

impl Default for LdbConfig {
    fn default() -> Self {
        LdbConfig {
            memtable_limit: 1024,
            max_runs: 6,
        }
    }
}

type Entry = (Vec<u8>, Option<Vec<u8>>);

struct LdbInner {
    /// `None` value = tombstone.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Immutable sorted runs, oldest first.
    runs: Vec<Arc<Vec<Entry>>>,
}

/// Log-structured merge engine.
pub struct LdbEngine {
    config: LdbConfig,
    inner: Mutex<LdbInner>,
}

impl LdbEngine {
    /// New empty engine.
    pub fn new(config: LdbConfig) -> Self {
        LdbEngine {
            config,
            inner: Mutex::new(LdbInner {
                memtable: BTreeMap::new(),
                runs: Vec::new(),
            }),
        }
    }

    /// Number of immutable runs currently held (for tests/inspection).
    pub fn run_count(&self) -> usize {
        self.inner.lock().runs.len()
    }

    fn lookup(inner: &LdbInner, key: &[u8]) -> Option<Option<Vec<u8>>> {
        if let Some(v) = inner.memtable.get(key) {
            return Some(v.clone());
        }
        for run in inner.runs.iter().rev() {
            if let Ok(i) = run.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                return Some(run[i].1.clone());
            }
        }
        None
    }

    fn maybe_freeze(&self, inner: &mut LdbInner) {
        if inner.memtable.len() < self.config.memtable_limit {
            return;
        }
        let run: Vec<Entry> = std::mem::take(&mut inner.memtable).into_iter().collect();
        inner.runs.push(Arc::new(run));
        if inner.runs.len() > self.config.max_runs {
            Self::compact(inner);
        }
    }

    /// Full compaction: newest-wins merge of every run, dropping
    /// tombstones (safe because all runs participate).
    fn compact(inner: &mut LdbInner) {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for run in &inner.runs {
            // Later runs overwrite earlier entries.
            for (k, v) in run.iter() {
                merged.insert(k.clone(), v.clone());
            }
        }
        let compacted: Vec<Entry> = merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        inner.runs.clear();
        if !compacted.is_empty() {
            inner.runs.push(Arc::new(compacted));
        }
    }

    /// Merged live view (memtable over runs), used by `len`/`scan_prefix`.
    fn merged(inner: &LdbInner) -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut out: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for run in &inner.runs {
            for (k, v) in run.iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in &inner.memtable {
            out.insert(k.clone(), v.clone());
        }
        out.into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }
}

impl StorageEngine for LdbEngine {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let inner = self.inner.lock();
        Self::lookup(&inner, key).flatten()
    }

    fn put(&self, key: &[u8], value: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.memtable.insert(key.to_vec(), Some(value));
        self.maybe_freeze(&mut inner);
    }

    fn delete(&self, key: &[u8]) -> bool {
        let mut inner = self.inner.lock();
        let existed = Self::lookup(&inner, key).flatten().is_some();
        inner.memtable.insert(key.to_vec(), None);
        self.maybe_freeze(&mut inner);
        existed
    }

    fn update(&self, key: &[u8], f: &mut super::UpdateFn<'_>) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        let old = Self::lookup(&inner, key).flatten();
        let new = f(old.as_deref());
        inner.memtable.insert(key.to_vec(), new.clone());
        self.maybe_freeze(&mut inner);
        new
    }

    fn len(&self) -> usize {
        let inner = self.inner.lock();
        Self::merged(&inner).len()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let inner = self.inner.lock();
        Self::merged(&inner)
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect()
    }

    fn flush(&self) {
        let mut inner = self.inner.lock();
        if !inner.memtable.is_empty() {
            let run: Vec<Entry> = std::mem::take(&mut inner.memtable).into_iter().collect();
            inner.runs.push(Arc::new(run));
        }
        Self::compact(&mut inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::conformance;

    fn tiny() -> LdbEngine {
        LdbEngine::new(LdbConfig {
            memtable_limit: 8,
            max_runs: 3,
        })
    }

    #[test]
    fn conformance_suite() {
        conformance::basic_crud(&tiny());
        conformance::update_semantics(&tiny());
        conformance::prefix_scan(&tiny());
        conformance::many_keys(&tiny());
    }

    #[test]
    fn freezes_and_compacts() {
        let e = tiny();
        for i in 0..100u32 {
            e.put(&i.to_le_bytes(), vec![i as u8]);
        }
        assert!(e.run_count() <= 4, "compaction should bound run count");
        for i in 0..100u32 {
            assert_eq!(e.get(&i.to_le_bytes()), Some(vec![i as u8]));
        }
    }

    #[test]
    fn newest_run_wins() {
        let e = tiny();
        for round in 0..5u8 {
            for i in 0..10u32 {
                e.put(&i.to_le_bytes(), vec![round]);
            }
        }
        for i in 0..10u32 {
            assert_eq!(e.get(&i.to_le_bytes()), Some(vec![4]));
        }
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn tombstones_survive_freezing() {
        let e = tiny();
        for i in 0..20u32 {
            e.put(&i.to_le_bytes(), vec![1]);
        }
        e.delete(&3u32.to_le_bytes());
        // Push the tombstone out of the memtable.
        for i in 100..130u32 {
            e.put(&i.to_le_bytes(), vec![2]);
        }
        assert!(e.get(&3u32.to_le_bytes()).is_none());
    }

    #[test]
    fn flush_compacts_to_single_run() {
        let e = tiny();
        for i in 0..50u32 {
            e.put(&i.to_le_bytes(), vec![0]);
        }
        e.delete(&1u32.to_le_bytes());
        e.flush();
        assert_eq!(e.run_count(), 1);
        assert_eq!(e.len(), 49);
    }
}
