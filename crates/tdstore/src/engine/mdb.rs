//! MDB: sharded in-memory hash map engine.
//!
//! The default engine for recommendation status data: the paper stores the
//! hot `itemCount`/`pairCount`/similar-items state in a "distributed
//! memory-based key-value storage". Sharding by key hash keeps lock
//! contention low under the many-writer access pattern of the topology.

use super::StorageEngine;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Sharded hash-map engine.
pub struct MdbEngine {
    shards: Vec<Mutex<HashMap<Vec<u8>, Vec<u8>>>>,
}

impl MdbEngine {
    /// Engine with `shards` independent locks (rounded up to a power of
    /// two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        MdbEngine {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<HashMap<Vec<u8>, Vec<u8>>> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }
}

impl StorageEngine for MdbEngine {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard(key).lock().get(key).cloned()
    }

    fn put(&self, key: &[u8], value: Vec<u8>) {
        self.shard(key).lock().insert(key.to_vec(), value);
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.shard(key).lock().remove(key).is_some()
    }

    fn update(&self, key: &[u8], f: &mut super::UpdateFn<'_>) -> Option<Vec<u8>> {
        let mut shard = self.shard(key).lock();
        let new = f(shard.get(key).map(Vec::as_slice));
        match new {
            Some(v) => {
                shard.insert(key.to_vec(), v.clone());
                Some(v)
            }
            None => {
                shard.remove(key);
                None
            }
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (k, v) in shard.iter() {
                if k.starts_with(prefix) {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::conformance;
    use std::sync::Arc;

    #[test]
    fn conformance_suite() {
        conformance::basic_crud(&MdbEngine::new(4));
        conformance::update_semantics(&MdbEngine::new(4));
        conformance::prefix_scan(&MdbEngine::new(4));
        conformance::many_keys(&MdbEngine::new(4));
    }

    #[test]
    fn single_shard_works() {
        conformance::basic_crud(&MdbEngine::new(1));
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let engine = Arc::new(MdbEngine::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        e.update(b"counter", &mut |old| {
                            let n = old
                                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                                .unwrap_or(0);
                            Some((n + 1).to_le_bytes().to_vec())
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let v = engine.get(b"counter").unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 8000);
    }
}
