//! Pluggable storage engines. The paper's data servers support MDB
//! (memory), LDB (LevelDB-style log-structured), RDB and FDB (file) — here
//! MDB, LDB and FDB are implemented from scratch behind one trait.

mod fdb;
mod ldb;
mod mdb;
mod rdb;

pub use fdb::FdbEngine;
pub use ldb::LdbEngine;
pub use mdb::MdbEngine;
pub use rdb::RdbEngine;

use std::path::PathBuf;
use std::sync::Arc;

/// The closure form used by [`StorageEngine::update`].
pub type UpdateFn<'a> = dyn FnMut(Option<&[u8]>) -> Option<Vec<u8>> + 'a;

/// Uniform engine interface. All methods are linearisable per key: an
/// engine must make `update` atomic with respect to concurrent access to
/// the same key.
pub trait StorageEngine: Send + Sync {
    /// Current value for `key`.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Stores `value` under `key`.
    fn put(&self, key: &[u8], value: Vec<u8>);

    /// Removes `key`; returns whether it was present.
    fn delete(&self, key: &[u8]) -> bool;

    /// Atomic read-modify-write: `f` maps the current value to the new one
    /// (`None` result deletes the key). Returns the new value.
    fn update(&self, key: &[u8], f: &mut UpdateFn<'_>) -> Option<Vec<u8>>;

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the engine holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, unordered.
    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// Flushes buffered state (no-op for pure-memory engines).
    fn flush(&self) {}
}

/// Which engine a store should use for its data instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineKind {
    /// Sharded in-memory hash map (the paper's Memory DataBase).
    Mdb,
    /// Memtable + sorted immutable runs with tombstones (Level DataBase).
    Ldb,
    /// Ordered in-memory map with range scans (Redis DataBase).
    Rdb,
    /// Append-only log file with in-memory index (File DataBase); files
    /// live under the given directory.
    Fdb(PathBuf),
}

impl EngineKind {
    /// Instantiates an engine for data instance `instance_id`.
    pub fn create(&self, instance_id: u32) -> Arc<dyn StorageEngine> {
        match self {
            EngineKind::Mdb => Arc::new(MdbEngine::new(16)),
            EngineKind::Ldb => Arc::new(LdbEngine::new(Default::default())),
            EngineKind::Rdb => Arc::new(RdbEngine::new()),
            EngineKind::Fdb(dir) => Arc::new(
                FdbEngine::open(dir.join(format!("instance-{instance_id}.fdb")))
                    .expect("open fdb log"),
            ),
        }
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared behavioural test-suite run against every engine.

    use super::StorageEngine;

    pub(crate) fn basic_crud(engine: &dyn StorageEngine) {
        assert!(engine.get(b"a").is_none());
        engine.put(b"a", vec![1]);
        assert_eq!(engine.get(b"a"), Some(vec![1]));
        engine.put(b"a", vec![2]);
        assert_eq!(engine.get(b"a"), Some(vec![2]));
        assert_eq!(engine.len(), 1);
        assert!(engine.delete(b"a"));
        assert!(!engine.delete(b"a"));
        assert!(engine.get(b"a").is_none());
        assert_eq!(engine.len(), 0);
        assert!(engine.is_empty());
    }

    pub(crate) fn update_semantics(engine: &dyn StorageEngine) {
        // Insert through update.
        let v = engine.update(b"ctr", &mut |old| {
            assert!(old.is_none());
            Some(vec![1])
        });
        assert_eq!(v, Some(vec![1]));
        // Increment through update.
        let v = engine.update(b"ctr", &mut |old| {
            let mut v = old.unwrap().to_vec();
            v[0] += 1;
            Some(v)
        });
        assert_eq!(v, Some(vec![2]));
        assert_eq!(engine.get(b"ctr"), Some(vec![2]));
        // Delete through update.
        let v = engine.update(b"ctr", &mut |_| None);
        assert_eq!(v, None);
        assert!(engine.get(b"ctr").is_none());
        assert_eq!(engine.len(), 0);
    }

    pub(crate) fn prefix_scan(engine: &dyn StorageEngine) {
        engine.put(b"item:1", vec![1]);
        engine.put(b"item:2", vec![2]);
        engine.put(b"pair:1", vec![3]);
        let mut items = engine.scan_prefix(b"item:");
        items.sort();
        assert_eq!(
            items,
            vec![(b"item:1".to_vec(), vec![1]), (b"item:2".to_vec(), vec![2])]
        );
        assert_eq!(engine.scan_prefix(b"zzz").len(), 0);
        assert_eq!(engine.scan_prefix(b"").len(), 3);
    }

    pub(crate) fn many_keys(engine: &dyn StorageEngine) {
        for i in 0..1000u32 {
            engine.put(&i.to_le_bytes(), i.to_le_bytes().to_vec());
        }
        assert_eq!(engine.len(), 1000);
        for i in (0..1000u32).step_by(7) {
            assert_eq!(engine.get(&i.to_le_bytes()), Some(i.to_le_bytes().to_vec()));
        }
        for i in (0..1000u32).step_by(2) {
            engine.delete(&i.to_le_bytes());
        }
        assert_eq!(engine.len(), 500);
        assert!(engine.get(&4u32.to_le_bytes()).is_none());
        assert!(engine.get(&5u32.to_le_bytes()).is_some());
    }
}
