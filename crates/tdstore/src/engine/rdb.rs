//! RDB: an ordered in-memory engine (the paper's Redis-backed option).
//!
//! Unlike the hashed [`super::MdbEngine`], keys are kept in a sorted map,
//! so prefix scans are range queries instead of full traversals — the
//! right engine for state that is read back by prefix (per-group hot
//! items, windowed session buckets) rather than point lookups.

use super::StorageEngine;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Ordered in-memory engine.
#[derive(Default)]
pub struct RdbEngine {
    map: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl RdbEngine {
    /// New empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// All `(key, value)` pairs with keys in `[lo, hi)`, ordered — the
    /// range primitive hash engines cannot offer.
    pub fn scan_range(&self, lo: &[u8], hi: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map
            .read()
            .range::<[u8], _>((Bound::Included(lo), Bound::Excluded(hi)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// The first key at or after `from`, if any.
    pub fn next_key(&self, from: &[u8]) -> Option<Vec<u8>> {
        self.map
            .read()
            .range::<[u8], _>((Bound::Included(from), Bound::Unbounded))
            .next()
            .map(|(k, _)| k.clone())
    }
}

/// Smallest byte string strictly greater than every string with prefix
/// `p` (None when p is all 0xFF).
fn prefix_end(p: &[u8]) -> Option<Vec<u8>> {
    let mut end = p.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

impl StorageEngine for RdbEngine {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.read().get(key).cloned()
    }

    fn put(&self, key: &[u8], value: Vec<u8>) {
        self.map.write().insert(key.to_vec(), value);
    }

    fn delete(&self, key: &[u8]) -> bool {
        self.map.write().remove(key).is_some()
    }

    fn update(&self, key: &[u8], f: &mut super::UpdateFn<'_>) -> Option<Vec<u8>> {
        let mut map = self.map.write();
        let new = f(map.get(key).map(Vec::as_slice));
        match new {
            Some(v) => {
                map.insert(key.to_vec(), v.clone());
                Some(v)
            }
            None => {
                map.remove(key);
                None
            }
        }
    }

    fn len(&self) -> usize {
        self.map.read().len()
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let map = self.map.read();
        match prefix_end(prefix) {
            Some(end) => map
                .range::<[u8], _>((Bound::Included(prefix), Bound::Excluded(end.as_slice())))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            None => map
                .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_crud(&RdbEngine::new());
        conformance::update_semantics(&RdbEngine::new());
        conformance::prefix_scan(&RdbEngine::new());
        conformance::many_keys(&RdbEngine::new());
    }

    #[test]
    fn scan_prefix_is_a_range_query() {
        let e = RdbEngine::new();
        e.put(b"a:1", vec![1]);
        e.put(b"a:2", vec![2]);
        e.put(b"b:1", vec![3]);
        let hits = e.scan_prefix(b"a:");
        assert_eq!(hits.len(), 2);
        // Ordered output — hash engines cannot promise this.
        assert_eq!(hits[0].0, b"a:1");
        assert_eq!(hits[1].0, b"a:2");
    }

    #[test]
    fn scan_range_half_open() {
        let e = RdbEngine::new();
        for i in 0..10u8 {
            e.put(&[i], vec![i]);
        }
        let hits = e.scan_range(&[3], &[7]);
        assert_eq!(
            hits.iter().map(|(k, _)| k[0]).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
    }

    #[test]
    fn next_key_walks_order() {
        let e = RdbEngine::new();
        e.put(b"b", vec![]);
        e.put(b"d", vec![]);
        assert_eq!(e.next_key(b"a"), Some(b"b".to_vec()));
        assert_eq!(e.next_key(b"c"), Some(b"d".to_vec()));
        assert_eq!(e.next_key(b"e"), None);
    }

    #[test]
    fn prefix_end_edge_cases() {
        assert_eq!(prefix_end(b"a"), Some(b"b".to_vec()));
        assert_eq!(prefix_end(&[0x01, 0xFF]), Some(vec![0x02]));
        assert_eq!(prefix_end(&[0xFF, 0xFF]), None);
        // All-0xFF prefix still scans correctly (unbounded fallback).
        let e = RdbEngine::new();
        e.put(&[0xFF, 0xFF, 0x01], vec![1]);
        assert_eq!(e.scan_prefix(&[0xFF, 0xFF]).len(), 1);
    }
}
