//! Data servers: hosts of data-instance replicas.

use crate::engine::{EngineKind, StorageEngine};
use crate::error::StoreError;
use crate::route::{InstanceId, ServerId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A data server holding engine replicas for the instances routed to it
/// (as host for some, slave for others).
pub struct DataServer {
    id: ServerId,
    alive: AtomicBool,
    replicas: RwLock<HashMap<InstanceId, Arc<dyn StorageEngine>>>,
}

impl DataServer {
    /// New empty server.
    pub fn new(id: ServerId) -> Self {
        DataServer {
            id,
            alive: AtomicBool::new(true),
            replicas: RwLock::new(HashMap::new()),
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Whether the server answers requests.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulates a crash. Replica data is dropped (memory engines lose
    /// state), which is exactly why the paper stores status data with
    /// per-instance backups.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        self.replicas.write().clear();
    }

    /// Restarts the server empty.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Creates (or keeps) the replica engine for `instance`.
    pub fn ensure_replica(&self, instance: InstanceId, kind: &EngineKind) {
        let mut replicas = self.replicas.write();
        replicas
            .entry(instance)
            .or_insert_with(|| kind.create(instance));
    }

    /// The replica engine for `instance`.
    pub fn replica(&self, instance: InstanceId) -> Result<Arc<dyn StorageEngine>, StoreError> {
        if !self.is_alive() {
            return Err(StoreError::ServerDown(self.id));
        }
        self.replicas
            .read()
            .get(&instance)
            .cloned()
            .ok_or(StoreError::UnknownInstance(instance))
    }

    /// Number of replicas this server holds.
    pub fn replica_count(&self) -> usize {
        self.replicas.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_created_on_demand() {
        let s = DataServer::new(1);
        s.ensure_replica(3, &EngineKind::Mdb);
        s.ensure_replica(3, &EngineKind::Mdb);
        assert_eq!(s.replica_count(), 1);
        let e = s.replica(3).unwrap();
        e.put(b"k", vec![9]);
        // ensure_replica must not clobber existing data
        s.ensure_replica(3, &EngineKind::Mdb);
        assert_eq!(s.replica(3).unwrap().get(b"k"), Some(vec![9]));
    }

    #[test]
    fn dead_server_refuses_requests_and_loses_data() {
        let s = DataServer::new(0);
        s.ensure_replica(0, &EngineKind::Mdb);
        s.replica(0).unwrap().put(b"k", vec![1]);
        s.kill();
        assert!(matches!(s.replica(0), Err(StoreError::ServerDown(0))));
        s.revive();
        assert!(matches!(s.replica(0), Err(StoreError::UnknownInstance(0))));
    }
}
