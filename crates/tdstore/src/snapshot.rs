//! The snapshot store: durable checkpoint blobs + manifest on one
//! [`FdbEngine`] log.
//!
//! Layout (all keys in one append-only fdb log):
//!
//! - `snap:<epoch:u64le>` → snapshot payload: the consistent offset
//!   vector over every spout partition, then the full bolt-state
//!   key/value set captured inside the drain/seal barrier.
//! - `manifest` → `epoch | created_ms | entries | bytes` of the newest
//!   *complete* snapshot.
//!
//! Atomicity falls out of the engine's replay rules. `publish` writes the
//! blob, fsyncs, then writes the manifest record and fsyncs again. A
//! crash before the manifest append leaves the previous manifest as the
//! latest key; a crash *during* it leaves a torn tail record that replay
//! truncates — again exposing the previous manifest. Either way restart
//! sees a manifest that points at a fully-written blob, never a partial
//! one. Superseded blobs are deleted by `retain`, and the engine's
//! dead-bytes compaction keeps the churned log near its live size.

use crate::engine::{FdbEngine, StorageEngine};
use crate::error::StoreError;
use std::path::PathBuf;

/// Key of the manifest record.
const MANIFEST_KEY: &[u8] = b"manifest";
/// Prefix of snapshot payload keys.
const SNAP_PREFIX: &[u8] = b"snap:";

/// Identity and size of one published snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Monotonic checkpoint epoch (1-based).
    pub epoch: u64,
    /// Coordinator clock time at the seal, in milliseconds.
    pub created_ms: u64,
    /// Number of state key/value pairs captured.
    pub entries: u64,
    /// Payload size in bytes (offset vector + state).
    pub bytes: u64,
}

/// Bolt-state key/value pairs as captured inside the barrier.
pub type StateEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// One decoded snapshot: what a restore replays forward from.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Identity of this snapshot.
    pub meta: SnapshotMeta,
    /// Opaque offset-vector blob (the topology layer encodes/decodes it;
    /// the store only guarantees it was sealed with `state`).
    pub offsets: Vec<u8>,
    /// Bolt-state key/value pairs captured inside the barrier.
    pub state: StateEntries,
}

/// File-backed checkpoint repository.
pub struct SnapshotStore {
    engine: FdbEngine,
}

fn snap_key(epoch: u64) -> Vec<u8> {
    let mut key = SNAP_PREFIX.to_vec();
    key.extend_from_slice(&epoch.to_le_bytes());
    key
}

fn encode_payload(offsets: &[u8], state: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        8 + offsets.len()
            + state
                .iter()
                .map(|(k, v)| 8 + k.len() + v.len())
                .sum::<usize>(),
    );
    out.extend_from_slice(&(offsets.len() as u32).to_le_bytes());
    out.extend_from_slice(offsets);
    out.extend_from_slice(&(state.len() as u32).to_le_bytes());
    for (k, v) in state {
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(k);
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v);
    }
    out
}

fn decode_payload(bytes: &[u8]) -> Option<(Vec<u8>, StateEntries)> {
    let mut pos = 0usize;
    let mut take = |n: usize| {
        let slice = bytes.get(pos..pos.checked_add(n)?)?;
        pos += n;
        Some(slice)
    };
    let off_len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    let offsets = take(off_len)?.to_vec();
    let count = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    let mut state = Vec::with_capacity(count.min(bytes.len() / 8 + 1));
    for _ in 0..count {
        let klen = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let k = take(klen)?.to_vec();
        let vlen = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let v = take(vlen)?.to_vec();
        state.push((k, v));
    }
    (pos == bytes.len()).then_some((offsets, state))
}

fn encode_manifest(meta: &SnapshotMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&meta.epoch.to_le_bytes());
    out.extend_from_slice(&meta.created_ms.to_le_bytes());
    out.extend_from_slice(&meta.entries.to_le_bytes());
    out.extend_from_slice(&meta.bytes.to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8]) -> Option<SnapshotMeta> {
    if bytes.len() != 32 {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
    Some(SnapshotMeta {
        epoch: word(0),
        created_ms: word(1),
        entries: word(2),
        bytes: word(3),
    })
}

impl SnapshotStore {
    /// Opens (or creates) the checkpoint log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(SnapshotStore {
            engine: FdbEngine::open(path.into())?,
        })
    }

    /// Publishes one sealed snapshot and returns its identity. The blob
    /// is fully on disk before the manifest names it, so a crash at any
    /// point leaves the previous snapshot restorable.
    pub fn publish(
        &self,
        created_ms: u64,
        offsets: &[u8],
        state: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<SnapshotMeta, StoreError> {
        let epoch = self.latest().map_or(1, |m| m.epoch + 1);
        let payload = encode_payload(offsets, state);
        let meta = SnapshotMeta {
            epoch,
            created_ms,
            entries: state.len() as u64,
            bytes: payload.len() as u64,
        };
        self.engine.put(&snap_key(epoch), payload);
        self.engine.sync()?;
        self.engine.put(MANIFEST_KEY, encode_manifest(&meta));
        self.engine.sync()?;
        Ok(meta)
    }

    /// The newest complete snapshot's identity, if any.
    pub fn latest(&self) -> Option<SnapshotMeta> {
        decode_manifest(&self.engine.get(MANIFEST_KEY)?)
    }

    /// Loads the snapshot of `epoch`. `None` when the blob is missing
    /// (retained out) or undecodable. Only the manifest records
    /// `created_ms`, so older epochs report it as zero.
    pub fn load(&self, epoch: u64) -> Option<Snapshot> {
        let raw = self.engine.get(&snap_key(epoch))?;
        let (offsets, state) = decode_payload(&raw)?;
        let created_ms = self
            .latest()
            .filter(|m| m.epoch == epoch)
            .map_or(0, |m| m.created_ms);
        Some(Snapshot {
            meta: SnapshotMeta {
                epoch,
                created_ms,
                entries: state.len() as u64,
                bytes: raw.len() as u64,
            },
            offsets,
            state,
        })
    }

    /// Loads the snapshot the manifest points at. This is the restore
    /// entry point: manifest → blob → seek offsets → replay the tail.
    pub fn load_latest(&self) -> Option<Snapshot> {
        let meta = self.latest()?;
        let raw = self.engine.get(&snap_key(meta.epoch))?;
        let (offsets, state) = decode_payload(&raw)?;
        Some(Snapshot {
            meta,
            offsets,
            state,
        })
    }

    /// Published epochs, oldest first.
    pub fn epochs(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .engine
            .scan_prefix(SNAP_PREFIX)
            .into_iter()
            .filter_map(|(k, _)| Some(u64::from_le_bytes(k.get(5..13)?.try_into().ok()?)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Deletes all but the newest `keep` snapshot blobs. The deletes make
    /// the superseded blobs dead weight, which the engine's dead-bytes
    /// compaction then reclaims.
    pub fn retain(&self, keep: usize) {
        let epochs = self.epochs();
        let cut = epochs.len().saturating_sub(keep.max(1));
        for &epoch in &epochs[..cut] {
            self.engine.delete(&snap_key(epoch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (SnapshotStore, PathBuf) {
        let p = std::env::temp_dir().join(format!("tsnap-test-{}-{tag}.fdb", std::process::id()));
        let _ = std::fs::remove_file(&p);
        (SnapshotStore::open(p.clone()).unwrap(), p)
    }

    fn state(n: u64, round: u8) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| (i.to_le_bytes().to_vec(), vec![round; 16]))
            .collect()
    }

    #[test]
    fn publish_load_round_trip() {
        let (s, p) = temp_store("roundtrip");
        assert!(s.latest().is_none());
        assert!(s.load_latest().is_none());
        let meta = s.publish(1_000, b"offsets-blob", &state(10, 1)).unwrap();
        assert_eq!(meta.epoch, 1);
        assert_eq!(meta.entries, 10);
        let snap = s.load_latest().unwrap();
        assert_eq!(snap.meta, meta);
        assert_eq!(snap.offsets, b"offsets-blob");
        assert_eq!(snap.state, state(10, 1));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn epochs_advance_and_survive_reopen() {
        let (s, p) = temp_store("reopen");
        for round in 1..=3u8 {
            let meta = s
                .publish(u64::from(round) * 100, b"off", &state(4, round))
                .unwrap();
            assert_eq!(meta.epoch, u64::from(round));
        }
        drop(s);
        let s = SnapshotStore::open(p.clone()).unwrap();
        let latest = s.latest().unwrap();
        assert_eq!(latest.epoch, 3);
        assert_eq!(latest.created_ms, 300);
        assert_eq!(s.load_latest().unwrap().state, state(4, 3));
        assert_eq!(s.epochs(), vec![1, 2, 3]);
        // Older epochs remain loadable until retained out.
        assert_eq!(s.load(2).unwrap().state, state(4, 2));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn retain_keeps_newest() {
        let (s, p) = temp_store("retain");
        for round in 1..=5u8 {
            s.publish(0, b"", &state(2, round)).unwrap();
        }
        s.retain(2);
        assert_eq!(s.epochs(), vec![4, 5]);
        assert!(s.load(1).is_none());
        assert_eq!(s.load_latest().unwrap().meta.epoch, 5);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn torn_manifest_tail_falls_back_to_previous_snapshot() {
        // Simulate a crash mid-manifest-append: everything up to and
        // including snapshot 2's blob is intact, but the manifest record
        // naming epoch 2 is torn. Reopen must see epoch 1.
        let (s, p) = temp_store("torn");
        s.publish(100, b"off-1", &state(3, 1)).unwrap();
        let file_after_first = std::fs::metadata(&p).unwrap().len();
        s.publish(200, b"off-2", &state(3, 2)).unwrap();
        drop(s);
        // The last record in the log is epoch 2's manifest. Tear it by
        // chopping bytes off the file tail (the manifest record is
        // 8 + len("manifest") + 4 + 32 = 52 bytes).
        let full = std::fs::metadata(&p).unwrap().len();
        assert!(full > file_after_first + 52);
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(full - 20).unwrap();
        drop(f);
        let s = SnapshotStore::open(p.clone()).unwrap();
        let latest = s.latest().unwrap();
        assert_eq!(latest.epoch, 1, "torn manifest must expose epoch 1");
        assert_eq!(s.load_latest().unwrap().offsets, b"off-1");
        // And publishing after the fallback continues from the manifest.
        let meta = s.publish(300, b"off-2b", &state(3, 3)).unwrap();
        assert_eq!(meta.epoch, 2);
        assert_eq!(s.load_latest().unwrap().offsets, b"off-2b");
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn payload_codec_rejects_malformed() {
        assert!(decode_payload(&[]).is_none());
        let good = encode_payload(b"off", &state(2, 7));
        let (off, st) = decode_payload(&good).unwrap();
        assert_eq!(off, b"off");
        assert_eq!(st, state(2, 7));
        assert!(decode_payload(&good[..good.len() - 1]).is_none());
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_payload(&padded).is_none());
    }
}
