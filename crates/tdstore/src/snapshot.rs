//! The snapshot store: durable checkpoint blobs + manifest on one
//! [`FdbEngine`] log.
//!
//! Layout (all keys in one append-only fdb log):
//!
//! - `snap:<epoch:u64le>` → **full** snapshot payload: a versioned
//!   header (`created_ms` travels inside the blob, so every epoch
//!   reports a truthful timestamp), the consistent offset vector over
//!   every spout partition, then the full bolt-state key/value set
//!   captured inside the drain/seal barrier.
//! - `delta:<epoch:u64le>` → **delta** payload: the same header plus
//!   the base epoch it patches, the sealed offset vector, then only
//!   the keys that changed since the base (puts and deletes).
//! - `manifest` → `epoch | created_ms | entries | bytes` of the newest
//!   *complete* record (full or delta).
//!
//! A delta always patches the immediately preceding epoch, so the
//! records form a chain: full base → delta → delta → …. Resolving an
//! epoch walks back to the nearest full record and applies the deltas
//! oldest-first; a missing link (gap) makes the whole chain
//! unresolvable and `load` returns `None` rather than a partial state.
//!
//! Atomicity falls out of the engine's replay rules. `publish` and
//! `publish_delta` write the record, fsync, then write the manifest
//! record and fsync again. A crash before the manifest append leaves
//! the previous manifest as the latest key; a crash *during* it leaves
//! a torn tail record that replay truncates — again exposing the
//! previous manifest. A torn **delta** tail behaves identically: the
//! record never became complete, so the manifest still names the
//! previous epoch, whose chain is intact on disk. Either way restart
//! sees a manifest that points at a fully-written, fully-resolvable
//! record. Superseded chains are deleted by `retain`, and the engine's
//! dead-bytes compaction keeps the churned log near its live size.

use crate::engine::{FdbEngine, StorageEngine};
use crate::error::StoreError;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Key of the manifest record.
const MANIFEST_KEY: &[u8] = b"manifest";
/// Prefix of full-snapshot payload keys.
const SNAP_PREFIX: &[u8] = b"snap:";
/// Prefix of delta payload keys.
const DELTA_PREFIX: &[u8] = b"delta:";
/// Payload format version (header `version:u32 | kind:u8 | created_ms:u64`).
const PAYLOAD_VERSION: u32 = 2;
/// Header `kind` byte of a full snapshot payload.
const KIND_FULL: u8 = 0;
/// Header `kind` byte of a delta payload.
const KIND_DELTA: u8 = 1;

/// Identity and size of one published record (full or delta).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Monotonic checkpoint epoch (1-based).
    pub epoch: u64,
    /// Coordinator clock time at the seal, in milliseconds.
    pub created_ms: u64,
    /// For a full record: state pairs captured. For a delta: changed
    /// keys (puts + deletes). For a resolved chain: resolved pairs.
    pub entries: u64,
    /// Payload size in bytes. For a resolved chain: total bytes read
    /// across base + deltas.
    pub bytes: u64,
}

/// Bolt-state key/value pairs as captured inside the barrier.
pub type StateEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// What kind of record an epoch published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Self-contained full state blob.
    Full,
    /// Patch against the named base epoch (always `epoch - 1`).
    Delta {
        /// The epoch this delta patches.
        base_epoch: u64,
    },
}

/// One raw on-disk record, as published (not chain-resolved).
#[derive(Debug, Clone)]
pub struct SnapshotRecord {
    /// Identity of this record.
    pub meta: SnapshotMeta,
    /// Full blob or delta against a base.
    pub kind: SnapshotKind,
    /// Opaque offset-vector blob sealed with this epoch.
    pub offsets: Vec<u8>,
    /// Full state (kind Full) or changed/inserted keys (kind Delta).
    pub puts: StateEntries,
    /// Keys removed since the base epoch (always empty for kind Full).
    pub deletes: Vec<Vec<u8>>,
}

/// One resolved snapshot: what a restore replays forward from. For a
/// delta epoch this is the base state with the whole delta chain
/// applied, byte-identical to what a full blob at that epoch would
/// have captured.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Identity of this snapshot (entries/bytes describe the resolved
    /// chain, see [`SnapshotMeta`]).
    pub meta: SnapshotMeta,
    /// Opaque offset-vector blob (the topology layer encodes/decodes it;
    /// the store only guarantees it was sealed with `state`).
    pub offsets: Vec<u8>,
    /// Bolt-state key/value pairs, sorted by key.
    pub state: StateEntries,
}

/// File-backed checkpoint repository.
pub struct SnapshotStore {
    engine: FdbEngine,
    read_only: bool,
}

fn snap_key(epoch: u64) -> Vec<u8> {
    let mut key = SNAP_PREFIX.to_vec();
    key.extend_from_slice(&epoch.to_le_bytes());
    key
}

fn delta_key(epoch: u64) -> Vec<u8> {
    let mut key = DELTA_PREFIX.to_vec();
    key.extend_from_slice(&epoch.to_le_bytes());
    key
}

fn checked_u32(n: usize, what: &str) -> Result<u32, StoreError> {
    u32::try_from(n).map_err(|_| StoreError::Io(format!("snapshot {what} {n} exceeds u32 range")))
}

fn push_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn push_pairs(out: &mut Vec<u8>, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), StoreError> {
    push_u32(out, checked_u32(pairs.len(), "entry count")?);
    for (k, v) in pairs {
        push_u32(out, checked_u32(k.len(), "key length")?);
        out.extend_from_slice(k);
        push_u32(out, checked_u32(v.len(), "value length")?);
        out.extend_from_slice(v);
    }
    Ok(())
}

fn encode_payload(
    created_ms: u64,
    offsets: &[u8],
    state: &[(Vec<u8>, Vec<u8>)],
) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(
        21 + offsets.len()
            + state
                .iter()
                .map(|(k, v)| 8 + k.len() + v.len())
                .sum::<usize>(),
    );
    push_u32(&mut out, PAYLOAD_VERSION);
    out.push(KIND_FULL);
    out.extend_from_slice(&created_ms.to_le_bytes());
    push_u32(
        &mut out,
        checked_u32(offsets.len(), "offset-vector length")?,
    );
    out.extend_from_slice(offsets);
    push_pairs(&mut out, state)?;
    Ok(out)
}

fn encode_delta(
    created_ms: u64,
    base_epoch: u64,
    offsets: &[u8],
    puts: &[(Vec<u8>, Vec<u8>)],
    deletes: &[Vec<u8>],
) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(
        33 + offsets.len()
            + puts
                .iter()
                .map(|(k, v)| 8 + k.len() + v.len())
                .sum::<usize>()
            + deletes.iter().map(|k| 4 + k.len()).sum::<usize>(),
    );
    push_u32(&mut out, PAYLOAD_VERSION);
    out.push(KIND_DELTA);
    out.extend_from_slice(&created_ms.to_le_bytes());
    out.extend_from_slice(&base_epoch.to_le_bytes());
    push_u32(
        &mut out,
        checked_u32(offsets.len(), "offset-vector length")?,
    );
    out.extend_from_slice(offsets);
    push_pairs(&mut out, puts)?;
    push_u32(&mut out, checked_u32(deletes.len(), "delete count")?);
    for k in deletes {
        push_u32(&mut out, checked_u32(k.len(), "key length")?);
        out.extend_from_slice(k);
    }
    Ok(out)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn pairs(&mut self) -> Option<StateEntries> {
        let count = self.u32()? as usize;
        let mut out = Vec::with_capacity(count.min(self.bytes.len() / 8 + 1));
        for _ in 0..count {
            let klen = self.u32()? as usize;
            let k = self.take(klen)?.to_vec();
            let vlen = self.u32()? as usize;
            let v = self.take(vlen)?.to_vec();
            out.push((k, v));
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decoded payload fields shared by both kinds.
struct Decoded {
    kind: SnapshotKind,
    created_ms: u64,
    offsets: Vec<u8>,
    puts: StateEntries,
    deletes: Vec<Vec<u8>>,
}

fn decode_record(bytes: &[u8]) -> Option<Decoded> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.u32()? != PAYLOAD_VERSION {
        return None;
    }
    let kind_byte = cur.take(1)?[0];
    let created_ms = cur.u64()?;
    let kind = match kind_byte {
        KIND_FULL => SnapshotKind::Full,
        KIND_DELTA => SnapshotKind::Delta {
            base_epoch: cur.u64()?,
        },
        _ => return None,
    };
    let off_len = cur.u32()? as usize;
    let offsets = cur.take(off_len)?.to_vec();
    let puts = cur.pairs()?;
    let deletes = match kind {
        SnapshotKind::Full => Vec::new(),
        SnapshotKind::Delta { .. } => {
            let count = cur.u32()? as usize;
            let mut out = Vec::with_capacity(count.min(bytes.len() / 4 + 1));
            for _ in 0..count {
                let klen = cur.u32()? as usize;
                out.push(cur.take(klen)?.to_vec());
            }
            out
        }
    };
    cur.done().then_some(Decoded {
        kind,
        created_ms,
        offsets,
        puts,
        deletes,
    })
}

/// Decodes a full payload: `(created_ms, offsets, state)`. Rejects
/// deltas, truncation, trailing garbage, and unknown versions.
#[cfg_attr(not(test), allow(dead_code))]
fn decode_payload(bytes: &[u8]) -> Option<(u64, Vec<u8>, StateEntries)> {
    let d = decode_record(bytes)?;
    matches!(d.kind, SnapshotKind::Full).then_some((d.created_ms, d.offsets, d.puts))
}

/// Decoded delta payload: `(created_ms, base_epoch, offsets, puts, deletes)`.
type DeltaParts = (u64, u64, Vec<u8>, StateEntries, Vec<Vec<u8>>);

/// Decodes a delta payload. Rejects fulls, truncation, trailing garbage,
/// and unknown versions.
fn decode_delta(bytes: &[u8]) -> Option<DeltaParts> {
    let d = decode_record(bytes)?;
    match d.kind {
        SnapshotKind::Delta { base_epoch } => {
            Some((d.created_ms, base_epoch, d.offsets, d.puts, d.deletes))
        }
        SnapshotKind::Full => None,
    }
}

fn encode_manifest(meta: &SnapshotMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&meta.epoch.to_le_bytes());
    out.extend_from_slice(&meta.created_ms.to_le_bytes());
    out.extend_from_slice(&meta.entries.to_le_bytes());
    out.extend_from_slice(&meta.bytes.to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8]) -> Option<SnapshotMeta> {
    if bytes.len() != 32 {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
    Some(SnapshotMeta {
        epoch: word(0),
        created_ms: word(1),
        entries: word(2),
        bytes: word(3),
    })
}

impl SnapshotStore {
    /// Opens (or creates) the checkpoint log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(SnapshotStore {
            engine: FdbEngine::open(path.into())?,
            read_only: false,
        })
    }

    /// Opens the checkpoint log for inspection only: `publish`,
    /// `publish_delta` and `retain` fail with a store error instead of
    /// touching the log. Restore paths work normally.
    pub fn open_read_only(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(SnapshotStore {
            engine: FdbEngine::open(path.into())?,
            read_only: true,
        })
    }

    fn write_record(
        &self,
        key: &[u8],
        payload: Vec<u8>,
        meta: &SnapshotMeta,
    ) -> Result<(), StoreError> {
        if self.read_only {
            return Err(StoreError::Io("snapshot store is read-only".into()));
        }
        self.engine.put(key, payload);
        self.engine.sync()?;
        self.engine.put(MANIFEST_KEY, encode_manifest(meta));
        self.engine.sync()?;
        Ok(())
    }

    /// Publishes one sealed full snapshot and returns its identity. The
    /// blob is fully on disk before the manifest names it, so a crash at
    /// any point leaves the previous snapshot restorable.
    pub fn publish(
        &self,
        created_ms: u64,
        offsets: &[u8],
        state: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<SnapshotMeta, StoreError> {
        let epoch = self.latest().map_or(1, |m| m.epoch + 1);
        let payload = encode_payload(created_ms, offsets, state)?;
        let meta = SnapshotMeta {
            epoch,
            created_ms,
            entries: state.len() as u64,
            bytes: payload.len() as u64,
        };
        self.write_record(&snap_key(epoch), payload, &meta)?;
        Ok(meta)
    }

    /// Publishes one sealed **delta** against `base_epoch`, which must be
    /// the newest published epoch (deltas always patch their immediate
    /// predecessor, so chains are contiguous by construction). `puts` are
    /// keys inserted or changed since the base, `deletes` keys removed.
    /// Same crash contract as `publish`: a torn delta tail is truncated
    /// on reopen and the manifest still names the base.
    pub fn publish_delta(
        &self,
        created_ms: u64,
        offsets: &[u8],
        base_epoch: u64,
        puts: &[(Vec<u8>, Vec<u8>)],
        deletes: &[Vec<u8>],
    ) -> Result<SnapshotMeta, StoreError> {
        let latest = self.latest().map_or(0, |m| m.epoch);
        if base_epoch != latest || latest == 0 {
            return Err(StoreError::Io(format!(
                "delta base epoch {base_epoch} is not the newest epoch {latest}"
            )));
        }
        let epoch = base_epoch + 1;
        let payload = encode_delta(created_ms, base_epoch, offsets, puts, deletes)?;
        let meta = SnapshotMeta {
            epoch,
            created_ms,
            entries: (puts.len() + deletes.len()) as u64,
            bytes: payload.len() as u64,
        };
        self.write_record(&delta_key(epoch), payload, &meta)?;
        Ok(meta)
    }

    /// The newest complete record's identity, if any.
    pub fn latest(&self) -> Option<SnapshotMeta> {
        decode_manifest(&self.engine.get(MANIFEST_KEY)?)
    }

    /// Loads the raw record of `epoch` without resolving its chain.
    /// `None` when missing (retained out) or undecodable.
    pub fn load_record(&self, epoch: u64) -> Option<SnapshotRecord> {
        if let Some(raw) = self.engine.get(&snap_key(epoch)) {
            let d = decode_record(&raw)?;
            if !matches!(d.kind, SnapshotKind::Full) {
                return None;
            }
            return Some(SnapshotRecord {
                meta: SnapshotMeta {
                    epoch,
                    created_ms: d.created_ms,
                    entries: d.puts.len() as u64,
                    bytes: raw.len() as u64,
                },
                kind: d.kind,
                offsets: d.offsets,
                puts: d.puts,
                deletes: d.deletes,
            });
        }
        let raw = self.engine.get(&delta_key(epoch))?;
        let d = decode_record(&raw)?;
        let SnapshotKind::Delta { .. } = d.kind else {
            return None;
        };
        Some(SnapshotRecord {
            meta: SnapshotMeta {
                epoch,
                created_ms: d.created_ms,
                entries: (d.puts.len() + d.deletes.len()) as u64,
                bytes: raw.len() as u64,
            },
            kind: d.kind,
            offsets: d.offsets,
            puts: d.puts,
            deletes: d.deletes,
        })
    }

    /// Loads the snapshot of `epoch`, resolving its delta chain: walks
    /// back to the nearest full record, then applies each delta
    /// oldest-first. `None` when any link is missing (retained out, gap)
    /// or undecodable — never a partial state. `created_ms` comes from
    /// the epoch's own payload header, so it is truthful for every
    /// epoch, not just the newest.
    pub fn load(&self, epoch: u64) -> Option<Snapshot> {
        // Walk back to the full base, newest link first.
        let mut chain = Vec::new();
        let mut at = epoch;
        loop {
            let rec = self.load_record(at)?;
            let kind = rec.kind;
            chain.push(rec);
            match kind {
                SnapshotKind::Full => break,
                SnapshotKind::Delta { base_epoch } => {
                    // Contiguity: a delta at E patches exactly E-1.
                    if base_epoch + 1 != at {
                        return None;
                    }
                    at = base_epoch;
                }
            }
        }
        let total_bytes: u64 = chain.iter().map(|r| r.meta.bytes).sum();
        let created_ms = chain[0].meta.created_ms;
        let offsets = chain[0].offsets.clone();
        // Apply base then deltas oldest-first.
        let mut state = BTreeMap::new();
        for rec in chain.into_iter().rev() {
            for (k, v) in rec.puts {
                state.insert(k, v);
            }
            for k in rec.deletes {
                state.remove(&k);
            }
        }
        let state: StateEntries = state.into_iter().collect();
        Some(Snapshot {
            meta: SnapshotMeta {
                epoch,
                created_ms,
                entries: state.len() as u64,
                bytes: total_bytes,
            },
            offsets,
            state,
        })
    }

    /// Loads the snapshot the manifest points at, resolving its delta
    /// chain. This is the restore entry point: manifest → full base →
    /// deltas → seek offsets → replay the tail.
    pub fn load_latest(&self) -> Option<Snapshot> {
        self.load(self.latest()?.epoch)
    }

    /// Published epochs (full and delta records), oldest first.
    pub fn epochs(&self) -> Vec<u64> {
        let decode = |prefix: &[u8], k: &[u8]| -> Option<u64> {
            Some(u64::from_le_bytes(
                k.get(prefix.len()..prefix.len() + 8)?.try_into().ok()?,
            ))
        };
        let mut out: Vec<u64> = self
            .engine
            .scan_prefix(SNAP_PREFIX)
            .into_iter()
            .filter_map(|(k, _)| decode(SNAP_PREFIX, &k))
            .chain(
                self.engine
                    .scan_prefix(DELTA_PREFIX)
                    .into_iter()
                    .filter_map(|(k, _)| decode(DELTA_PREFIX, &k)),
            )
            .collect();
        out.sort_unstable();
        out
    }

    /// The full-record epoch `epoch`'s chain resolves from, walking
    /// delta links backwards. `None` when the chain is broken.
    fn full_base(&self, epoch: u64) -> Option<u64> {
        let mut at = epoch;
        loop {
            if self.engine.get(&snap_key(at)).is_some() {
                return Some(at);
            }
            let raw = self.engine.get(&delta_key(at))?;
            let (_, base, ..) = decode_delta(&raw)?;
            if base + 1 != at {
                return None;
            }
            at = base;
        }
    }

    /// Deletes records so that only the newest `keep` epochs stay
    /// resolvable. Chain-aware: the cut point is the full base of the
    /// oldest epoch being kept, so no live delta loses its ancestry.
    /// `keep == 0` really deletes everything, including the manifest
    /// (the store is empty afterwards, as if freshly created). The
    /// deletes make superseded records dead weight, which the engine's
    /// dead-bytes compaction then reclaims.
    pub fn retain(&self, keep: usize) {
        if self.read_only {
            return;
        }
        let epochs = self.epochs();
        if keep == 0 {
            for &epoch in &epochs {
                self.engine.delete(&snap_key(epoch));
                self.engine.delete(&delta_key(epoch));
            }
            self.engine.delete(MANIFEST_KEY);
            return;
        }
        if epochs.len() <= keep {
            return;
        }
        let oldest_kept = epochs[epochs.len() - keep];
        let Some(base) = self.full_base(oldest_kept) else {
            return; // chain already broken; deleting more can't help
        };
        for &epoch in epochs.iter().filter(|&&e| e < base) {
            self.engine.delete(&snap_key(epoch));
            self.engine.delete(&delta_key(epoch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn temp_store(tag: &str) -> (SnapshotStore, PathBuf) {
        let p = std::env::temp_dir().join(format!("tsnap-test-{}-{tag}.fdb", std::process::id()));
        let _ = std::fs::remove_file(&p);
        (SnapshotStore::open(p.clone()).unwrap(), p)
    }

    fn state(n: u64, round: u8) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| (i.to_le_bytes().to_vec(), vec![round; 16]))
            .collect()
    }

    #[test]
    fn publish_load_round_trip() {
        let (s, p) = temp_store("roundtrip");
        assert!(s.latest().is_none());
        assert!(s.load_latest().is_none());
        let meta = s.publish(1_000, b"offsets-blob", &state(10, 1)).unwrap();
        assert_eq!(meta.epoch, 1);
        assert_eq!(meta.entries, 10);
        let snap = s.load_latest().unwrap();
        assert_eq!(snap.meta, meta);
        assert_eq!(snap.offsets, b"offsets-blob");
        assert_eq!(snap.state, state(10, 1));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn epochs_advance_and_survive_reopen() {
        let (s, p) = temp_store("reopen");
        for round in 1..=3u8 {
            let meta = s
                .publish(u64::from(round) * 100, b"off", &state(4, round))
                .unwrap();
            assert_eq!(meta.epoch, u64::from(round));
        }
        drop(s);
        let s = SnapshotStore::open(p.clone()).unwrap();
        let latest = s.latest().unwrap();
        assert_eq!(latest.epoch, 3);
        assert_eq!(latest.created_ms, 300);
        assert_eq!(s.load_latest().unwrap().state, state(4, 3));
        assert_eq!(s.epochs(), vec![1, 2, 3]);
        // Older epochs remain loadable until retained out, and report
        // their own created_ms from the payload header.
        let older = s.load(2).unwrap();
        assert_eq!(older.state, state(4, 2));
        assert_eq!(older.meta.created_ms, 200);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn retain_keeps_newest() {
        let (s, p) = temp_store("retain");
        for round in 1..=5u8 {
            s.publish(0, b"", &state(2, round)).unwrap();
        }
        s.retain(2);
        assert_eq!(s.epochs(), vec![4, 5]);
        assert!(s.load(1).is_none());
        assert_eq!(s.load_latest().unwrap().meta.epoch, 5);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn retain_zero_really_deletes_everything() {
        let (s, p) = temp_store("retain0");
        for round in 1..=3u8 {
            s.publish(0, b"", &state(2, round)).unwrap();
        }
        s.retain(0);
        assert!(s.epochs().is_empty());
        assert!(s.latest().is_none());
        assert!(s.load_latest().is_none());
        // Publishing after a full wipe starts over at epoch 1.
        assert_eq!(s.publish(9, b"", &state(1, 9)).unwrap().epoch, 1);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn delta_chain_resolves_byte_identical() {
        let (s, p) = temp_store("chain");
        // Base: keys 0..4 at round 1.
        s.publish(100, b"off-1", &state(4, 1)).unwrap();
        // Delta 2: rewrite key 0, insert key 9, delete key 3.
        let puts = vec![
            (0u64.to_le_bytes().to_vec(), vec![2u8; 16]),
            (9u64.to_le_bytes().to_vec(), vec![2u8; 16]),
        ];
        let dels = vec![3u64.to_le_bytes().to_vec()];
        let meta = s.publish_delta(200, b"off-2", 1, &puts, &dels).unwrap();
        assert_eq!(meta.epoch, 2);
        assert_eq!(meta.entries, 3);
        // Delta 3: delete key 9 again.
        let meta = s
            .publish_delta(300, b"off-3", 2, &[], &[9u64.to_le_bytes().to_vec()])
            .unwrap();
        assert_eq!(meta.epoch, 3);

        let snap = s.load_latest().unwrap();
        assert_eq!(snap.meta.epoch, 3);
        assert_eq!(snap.meta.created_ms, 300);
        assert_eq!(snap.offsets, b"off-3");
        let mut expect = state(4, 1);
        expect[0].1 = vec![2u8; 16]; // key 0 rewritten at epoch 2
        expect.remove(3); // key 3 deleted at epoch 2; key 9 gone again
        assert_eq!(snap.state, expect);

        // Mid-chain epoch resolves with its own offsets + timestamp.
        let mid = s.load(2).unwrap();
        assert_eq!(mid.offsets, b"off-2");
        assert_eq!(mid.meta.created_ms, 200);
        assert_eq!(mid.state.len(), 4); // 0,1,2,9 live; key 3 removed

        // Survives reopen.
        drop(s);
        let s = SnapshotStore::open(p.clone()).unwrap();
        assert_eq!(s.load_latest().unwrap().state, expect);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn delta_requires_newest_base() {
        let (s, p) = temp_store("deltabase");
        // No epochs at all: nothing to base on.
        assert!(s.publish_delta(1, b"", 0, &[], &[]).is_err());
        s.publish(1, b"", &state(2, 1)).unwrap();
        s.publish(2, b"", &state(2, 2)).unwrap();
        // Basing on a non-newest epoch would fork the chain.
        assert!(s.publish_delta(3, b"", 1, &[], &[]).is_err());
        assert!(s.publish_delta(3, b"", 2, &[], &[]).is_ok());
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn chain_gap_is_rejected_not_partial() {
        let (s, p) = temp_store("gap");
        s.publish(1, b"off", &state(4, 1)).unwrap();
        s.publish_delta(2, b"off", 1, &state(1, 2), &[]).unwrap();
        s.publish_delta(3, b"off", 2, &state(1, 3), &[]).unwrap();
        // Punch a hole: delete the mid-chain delta directly.
        s.engine.delete(&delta_key(2));
        assert!(s.load(3).is_none(), "gap must not resolve partially");
        assert!(s.load_latest().is_none());
        // The base itself still resolves.
        assert_eq!(s.load(1).unwrap().state, state(4, 1));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn retain_never_cuts_a_live_chain() {
        let (s, p) = temp_store("chainretain");
        s.publish(1, b"", &state(4, 1)).unwrap(); // epoch 1: full
        for e in 2..=4u64 {
            s.publish_delta(e, b"", e - 1, &state(1, e as u8), &[])
                .unwrap(); // epochs 2..4: deltas
        }
        // Keeping 2 epochs (3, 4) requires their full base (1), so the
        // whole chain survives.
        s.retain(2);
        assert_eq!(s.epochs(), vec![1, 2, 3, 4]);
        assert!(s.load_latest().is_some());
        // A rebase to full at epoch 5 doesn't free the chain yet: the
        // retain window (4, 5) still includes delta epoch 4, whose
        // ancestry reaches back to the full base at 1.
        s.publish(5, b"", &state(4, 5)).unwrap();
        s.retain(2);
        assert_eq!(s.epochs(), vec![1, 2, 3, 4, 5]);
        assert_eq!(s.load(4).unwrap().state.len(), 4);
        // Once the window moves wholly past the rebase, the old chain
        // is cut at the new full base.
        s.publish_delta(6, b"", 5, &state(1, 6), &[]).unwrap();
        s.retain(2);
        assert_eq!(s.epochs(), vec![5, 6]);
        assert!(s.load(4).is_none(), "pre-rebase chain reclaimed");
        assert!(s.load_latest().is_some());
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn torn_manifest_tail_falls_back_to_previous_snapshot() {
        // Simulate a crash mid-manifest-append: everything up to and
        // including snapshot 2's blob is intact, but the manifest record
        // naming epoch 2 is torn. Reopen must see epoch 1.
        let (s, p) = temp_store("torn");
        s.publish(100, b"off-1", &state(3, 1)).unwrap();
        let file_after_first = std::fs::metadata(&p).unwrap().len();
        s.publish(200, b"off-2", &state(3, 2)).unwrap();
        drop(s);
        // The last record in the log is epoch 2's manifest. Tear it by
        // chopping bytes off the file tail (the manifest record is
        // 8 + len("manifest") + 4 + 32 = 52 bytes).
        let full = std::fs::metadata(&p).unwrap().len();
        assert!(full > file_after_first + 52);
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(full - 20).unwrap();
        drop(f);
        let s = SnapshotStore::open(p.clone()).unwrap();
        let latest = s.latest().unwrap();
        assert_eq!(latest.epoch, 1, "torn manifest must expose epoch 1");
        assert_eq!(s.load_latest().unwrap().offsets, b"off-1");
        // And publishing after the fallback continues from the manifest.
        let meta = s.publish(300, b"off-2b", &state(3, 3)).unwrap();
        assert_eq!(meta.epoch, 2);
        assert_eq!(s.load_latest().unwrap().offsets, b"off-2b");
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn torn_delta_tail_falls_back_to_chain_base() {
        // Crash mid-delta-append: epoch 2's delta record itself is torn.
        // Reopen truncates it; the manifest (written after the delta
        // sync, so also gone) names epoch 1, whose chain is intact.
        let (s, p) = temp_store("torndelta");
        s.publish(100, b"off-1", &state(3, 1)).unwrap();
        let file_after_first = std::fs::metadata(&p).unwrap().len();
        s.publish_delta(200, b"off-2", 1, &state(2, 2), &[])
            .unwrap();
        drop(s);
        let full = std::fs::metadata(&p).unwrap().len();
        // Chop into the delta record itself (beyond the 52-byte
        // manifest record at the tail).
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(file_after_first + 10).unwrap();
        drop(f);
        assert!(full > file_after_first + 62);
        let s = SnapshotStore::open(p.clone()).unwrap();
        assert_eq!(s.latest().unwrap().epoch, 1);
        let snap = s.load_latest().unwrap();
        assert_eq!(snap.offsets, b"off-1");
        assert_eq!(snap.state, state(3, 1));
        // Re-publishing the delta continues the chain cleanly.
        let meta = s
            .publish_delta(201, b"off-2b", 1, &state(2, 2), &[])
            .unwrap();
        assert_eq!(meta.epoch, 2);
        assert_eq!(s.load_latest().unwrap().offsets, b"off-2b");
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn read_only_store_rejects_writes_but_loads() {
        let (s, p) = temp_store("readonly");
        s.publish(100, b"off", &state(3, 1)).unwrap();
        drop(s);
        let s = SnapshotStore::open_read_only(p.clone()).unwrap();
        assert_eq!(s.load_latest().unwrap().state, state(3, 1));
        assert!(s.publish(200, b"off", &state(3, 2)).is_err());
        assert!(s.publish_delta(200, b"off", 1, &[], &[]).is_err());
        s.retain(0); // no-op, must not delete anything
        drop(s);
        let s = SnapshotStore::open(p.clone()).unwrap();
        assert_eq!(s.latest().unwrap().epoch, 1);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn payload_codec_rejects_malformed() {
        assert!(decode_payload(&[]).is_none());
        let good = encode_payload(77, b"off", &state(2, 7)).unwrap();
        let (created, off, st) = decode_payload(&good).unwrap();
        assert_eq!(created, 77);
        assert_eq!(off, b"off");
        assert_eq!(st, state(2, 7));
        assert!(decode_payload(&good[..good.len() - 1]).is_none());
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_payload(&padded).is_none());
        // Wrong version word.
        let mut vers = good.clone();
        vers[0] = 99;
        assert!(decode_payload(&vers).is_none());
        // A full payload is not a delta and vice versa.
        assert!(decode_delta(&good).is_none());
        let delta = encode_delta(1, 1, b"off", &state(1, 1), &[b"k".to_vec()]).unwrap();
        assert!(decode_payload(&delta).is_none());
        assert!(decode_delta(&delta).is_some());
    }

    #[test]
    fn decoder_rejects_huge_declared_counts_without_allocating() {
        // A crafted header declaring u32::MAX entries must error out
        // (truncation detected), not allocate 4 billion slots or
        // silently succeed.
        let mut evil = Vec::new();
        push_u32(&mut evil, PAYLOAD_VERSION);
        evil.push(KIND_FULL);
        evil.extend_from_slice(&7u64.to_le_bytes());
        push_u32(&mut evil, 0); // empty offsets
        push_u32(&mut evil, u32::MAX); // entry count
        assert!(decode_payload(&evil).is_none());
        // Same for a declared key length near u32::MAX.
        let mut evil = Vec::new();
        push_u32(&mut evil, PAYLOAD_VERSION);
        evil.push(KIND_FULL);
        evil.extend_from_slice(&7u64.to_le_bytes());
        push_u32(&mut evil, 0);
        push_u32(&mut evil, 1);
        push_u32(&mut evil, u32::MAX - 3); // klen
        evil.extend_from_slice(b"tiny");
        assert!(decode_payload(&evil).is_none());
        // Delta side: huge delete count.
        let mut evil = Vec::new();
        push_u32(&mut evil, PAYLOAD_VERSION);
        evil.push(KIND_DELTA);
        evil.extend_from_slice(&7u64.to_le_bytes());
        evil.extend_from_slice(&1u64.to_le_bytes());
        push_u32(&mut evil, 0);
        push_u32(&mut evil, 0);
        push_u32(&mut evil, u32::MAX);
        assert!(decode_delta(&evil).is_none());
    }

    fn arb_pairs() -> impl Strategy<Value = StateEntries> {
        proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..24),
                proptest::collection::vec(any::<u8>(), 0..48),
            ),
            0..12,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn full_payload_roundtrips(
            created in any::<u64>(),
            offsets in proptest::collection::vec(any::<u8>(), 0..64),
            state in arb_pairs(),
        ) {
            let enc = encode_payload(created, &offsets, &state).unwrap();
            let (c, off, st) = decode_payload(&enc).unwrap();
            prop_assert_eq!(c, created);
            prop_assert_eq!(off, offsets);
            prop_assert_eq!(st, state);
        }

        #[test]
        fn delta_payload_roundtrips(
            created in any::<u64>(),
            base in 1u64..u64::MAX,
            offsets in proptest::collection::vec(any::<u8>(), 0..64),
            puts in arb_pairs(),
            deletes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 0..8),
        ) {
            let enc = encode_delta(created, base, &offsets, &puts, &deletes).unwrap();
            let (c, b, off, p, d) = decode_delta(&enc).unwrap();
            prop_assert_eq!(c, created);
            prop_assert_eq!(b, base);
            prop_assert_eq!(off, offsets);
            prop_assert_eq!(p, puts);
            prop_assert_eq!(d, deletes);
        }

        #[test]
        fn truncated_payloads_never_decode(
            offsets in proptest::collection::vec(any::<u8>(), 0..32),
            state in arb_pairs(),
            cut in 0usize..200,
        ) {
            let enc = encode_payload(5, &offsets, &state).unwrap();
            let cut = cut % enc.len();
            prop_assert!(decode_payload(&enc[..cut]).is_none());
        }

        #[test]
        fn truncated_deltas_never_decode(
            puts in arb_pairs(),
            deletes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 0..8),
            cut in 0usize..200,
        ) {
            let enc = encode_delta(5, 3, b"off", &puts, &deletes).unwrap();
            let cut = cut % enc.len();
            prop_assert!(decode_delta(&enc[..cut]).is_none());
        }

        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_payload(&bytes);
            let _ = decode_delta(&bytes);
        }
    }
}
