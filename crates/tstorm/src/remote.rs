//! Process-boundary support: flattened tuples and topology slicing.
//!
//! A cluster worker runs only a *slice* of the topology: components named
//! in [`SliceSpec::local`] get real task threads; every other component
//! is assumed to run in some other process. Tuples routed to a remote
//! component are flattened into [`WireTuple`]s and handed to the
//! [`SliceSpec::egress`] callback (the cluster layer ships them over
//! TCP); tuples arriving from other processes are re-hydrated by
//! [`crate::executor::TopologyHandle::inject`].
//!
//! Acker traffic flows through the spec's [`SliceSpec::acker`] sender
//! instead of a local acker thread — a cluster runs exactly one XOR
//! acker (hosted by the supervisor), so tuple trees span processes while
//! keeping the single-process completion semantics: an edge lost on the
//! wire is an edge never acked, the tree times out at the global acker,
//! and the owning spout replays it.

use crate::ack::AckerMsg;
use crate::tuple::{Tuple, Value};
use crossbeam::channel::Sender;
use std::collections::HashSet;
use std::sync::Arc;

/// Callback receiving flattened tuples bound for a remote component:
/// `(dest_component, dest_task, tuples)`. Invoked from per-task egress
/// pump threads, so implementations may block (backpressure propagates
/// into the topology's bounded queues).
pub type EgressFn = Arc<dyn Fn(&str, usize, Vec<WireTuple>) + Send + Sync>;

/// A [`Tuple`] flattened for transport across a process boundary.
///
/// The schema is not carried: every process builds the same topology, so
/// the destination re-attaches the schema declared for the
/// `(src_component, stream)` pair. Anchors travel verbatim — the tuple
/// stays tied to its original trees, which is what makes remote loss
/// replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple {
    /// Stream the tuple was emitted on.
    pub stream: String,
    /// Component that emitted it.
    pub src_component: String,
    /// Task index within the source component.
    pub src_task: usize,
    /// Field values in schema order.
    pub values: Vec<Value>,
    /// `(root, edge)` anchor pairs from the XOR ack tracker.
    pub anchors: Vec<(u64, u64)>,
}

impl WireTuple {
    /// Flattens a runtime tuple for the wire.
    pub fn from_tuple(t: &Tuple) -> Self {
        WireTuple {
            stream: t.stream().to_string(),
            src_component: t.src_component().to_string(),
            src_task: t.src_task(),
            values: t.values().to_vec(),
            anchors: t.anchors.pairs().to_vec(),
        }
    }
}

/// Which part of a topology this process runs, and how the rest of the
/// cluster is reached. Passed to [`crate::topology::Topology::launch_slice`].
pub struct SliceSpec {
    /// Components that get real task threads in this process. Placement
    /// is component-granular — all tasks of a component stay together —
    /// so fields groupings keep their key→task contract without any
    /// cross-process coordination.
    pub local: HashSet<String>,
    /// For the i-th local spout task (counting local spouts in topology
    /// definition order), its *global* acker slot. `InitEntry::slot`
    /// carries the global slot; notifications come back through
    /// [`crate::executor::TopologyHandle::spout_notify`].
    pub slot_map: Vec<usize>,
    /// Destination for all acker traffic. No local acker thread runs; the
    /// cluster layer drains this channel into the supervisor's global
    /// acker (treating [`AckerMsg::Shutdown`] as end-of-stream).
    pub acker: Sender<AckerMsg>,
    /// Receives every tuple routed to a non-local component.
    pub egress: EgressFn,
}
