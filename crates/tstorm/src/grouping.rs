//! Stream groupings: how tuples on an edge are partitioned over the
//! consumer's tasks.

use crate::tuple::Value;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Partitioning strategy for one subscription edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grouping {
    /// Round-robin over the consumer's tasks (even load, no key affinity).
    Shuffle,
    /// Hash of the named fields decides the task: all tuples with equal key
    /// values reach the same task. This is what makes keyed state safe to
    /// scale (§4.1.3 of the paper: "by the key grouping, only a single
    /// worker node should operate over a specific item pair").
    Fields(Vec<String>),
    /// Every task receives a copy.
    All,
    /// All tuples go to task 0.
    Global,
}

impl Grouping {
    /// Convenience constructor for a fields grouping.
    pub fn fields<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Grouping::Fields(names.into_iter().map(Into::into).collect())
    }
}

/// Deterministic 64-bit FNV-1a, used for fields grouping so task placement
/// is stable across runs (unlike `DefaultHasher`, which is seeded).
#[derive(Default)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Hasher seeded with the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Resolved grouping with cached field indices and round-robin state.
pub(crate) struct RoutingRule {
    grouping: Grouping,
    /// Pre-resolved positions of the grouping fields within the stream
    /// schema, so routing is index lookups, not string compares.
    field_indices: Vec<usize>,
    rr: AtomicUsize,
}

impl RoutingRule {
    /// `schema_index_of` resolves a field name to its position in the
    /// subscribed stream's schema.
    pub(crate) fn new(
        grouping: Grouping,
        schema_index_of: impl Fn(&str) -> Option<usize>,
    ) -> Result<Self, String> {
        let field_indices = match &grouping {
            Grouping::Fields(names) => names
                .iter()
                .map(|n| {
                    schema_index_of(n)
                        .ok_or_else(|| format!("grouping field `{n}` not in stream schema"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(RoutingRule {
            grouping,
            field_indices,
            rr: AtomicUsize::new(0),
        })
    }

    /// Chooses target task indices out of `n_tasks` for a tuple with the
    /// given `values`. Returns either a single task or, for `All`, a
    /// broadcast marker.
    pub(crate) fn route(&self, values: &[Value], n_tasks: usize) -> Route {
        debug_assert!(n_tasks > 0);
        match &self.grouping {
            Grouping::Shuffle => Route::One(self.rr.fetch_add(1, Ordering::Relaxed) % n_tasks),
            Grouping::Fields(_) => {
                let mut h = Fnv1a::new();
                for &idx in &self.field_indices {
                    values[idx].hash_into(&mut h);
                }
                Route::One((h.finish() % n_tasks as u64) as usize)
            }
            Grouping::All => Route::All,
            Grouping::Global => Route::One(0),
        }
    }

    /// Batch-aware routing: identical to [`RoutingRule::route`] except that
    /// shuffle holds one round-robin pick (`sticky`) for a whole batch
    /// epoch, so consecutive tuples fill one downstream buffer instead of
    /// spraying singleton batches over every task. The emitter resets
    /// `sticky` whenever it flushes, advancing the round-robin by whole
    /// batches. Keyed, broadcast and global groupings are unaffected —
    /// per-key placement never depends on batching.
    pub(crate) fn route_buffered(
        &self,
        values: &[Value],
        n_tasks: usize,
        sticky: &mut Option<usize>,
    ) -> Route {
        match &self.grouping {
            Grouping::Shuffle => Route::One(
                *sticky.get_or_insert_with(|| self.rr.fetch_add(1, Ordering::Relaxed) % n_tasks),
            ),
            _ => self.route(values, n_tasks),
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Route {
    One(usize),
    All,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Schema;

    fn make_tuple(user: u64, item: u64) -> Vec<Value> {
        vec![Value::U64(user), Value::U64(item)]
    }

    fn rule(g: Grouping) -> RoutingRule {
        let schema = Schema::new(["user", "item"]);
        RoutingRule::new(g, |n| schema.index_of(n)).unwrap()
    }

    #[test]
    fn shuffle_round_robins() {
        let r = rule(Grouping::Shuffle);
        let t = make_tuple(1, 2);
        let picks: Vec<_> = (0..6)
            .map(|_| match r.route(&t, 3) {
                Route::One(i) => i,
                Route::All => panic!(),
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn buffered_shuffle_round_robins_whole_batches() {
        let r = rule(Grouping::Shuffle);
        let t = make_tuple(1, 2);
        let mut sticky = None;
        let mut picks = Vec::new();
        for epoch in 0..3 {
            for _ in 0..4 {
                match r.route_buffered(&t, 3, &mut sticky) {
                    Route::One(i) => picks.push(i),
                    Route::All => panic!(),
                }
            }
            sticky = None; // what the emitter does on flush
            let _ = epoch;
        }
        assert_eq!(picks, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn buffered_fields_grouping_ignores_sticky() {
        let r = rule(Grouping::fields(["user"]));
        let mut sticky = Some(3); // a stale shuffle pick must never leak
        let direct = r.route(&make_tuple(7, 1), 4);
        let buffered = r.route_buffered(&make_tuple(7, 1), 4, &mut sticky);
        assert_eq!(direct, buffered);
    }

    #[test]
    fn fields_grouping_is_sticky_per_key() {
        let r = rule(Grouping::fields(["user"]));
        let a1 = r.route(&make_tuple(7, 1), 4);
        let a2 = r.route(&make_tuple(7, 999), 4);
        assert_eq!(a1, a2, "same user must route to same task");
    }

    #[test]
    fn fields_grouping_spreads_keys() {
        let r = rule(Grouping::fields(["user"]));
        let mut seen = std::collections::HashSet::new();
        for u in 0..64 {
            if let Route::One(i) = r.route(&make_tuple(u, 0), 8) {
                seen.insert(i);
            }
        }
        assert!(
            seen.len() >= 6,
            "64 keys over 8 tasks should hit most tasks"
        );
    }

    #[test]
    fn global_always_task_zero() {
        let r = rule(Grouping::Global);
        for u in 0..10 {
            assert_eq!(r.route(&make_tuple(u, 0), 5), Route::One(0));
        }
    }

    #[test]
    fn all_broadcasts() {
        let r = rule(Grouping::All);
        assert_eq!(r.route(&make_tuple(1, 1), 5), Route::All);
    }

    #[test]
    fn unknown_grouping_field_is_an_error() {
        let schema = Schema::new(["user"]);
        let err = RoutingRule::new(Grouping::fields(["nope"]), |n| schema.index_of(n));
        assert!(err.is_err());
    }

    #[test]
    fn multi_field_key_combines_fields() {
        let r = rule(Grouping::fields(["user", "item"]));
        let same1 = r.route(&make_tuple(3, 4), 1024);
        let same2 = r.route(&make_tuple(3, 4), 1024);
        assert_eq!(same1, same2);
    }
}
