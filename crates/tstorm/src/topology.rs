//! Topology definition and validation.
//!
//! A topology is a DAG of spouts and bolts connected by subscriptions, each
//! with a [`Grouping`]. Building validates the graph (names, streams,
//! grouping fields, acyclicity); [`Topology::launch`] starts the threads.

use crate::component::{Bolt, Spout, StreamDef};
use crate::grouping::Grouping;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Duration;

/// Factory producing one spout instance per task.
pub type SpoutFactory = std::sync::Arc<dyn Fn() -> Box<dyn Spout> + Send + Sync>;
/// Factory producing one bolt instance per task (shared so the runtime
/// can rebuild a bolt after a panic).
pub type BoltFactory = std::sync::Arc<dyn Fn() -> Box<dyn Bolt> + Send + Sync>;

/// Errors detected while building a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two components share a name.
    DuplicateComponent(String),
    /// A subscription references an unknown source component.
    UnknownSource {
        /// The subscribing bolt.
        bolt: String,
        /// The missing source.
        src: String,
    },
    /// A subscription references a stream the source does not declare.
    UnknownStream {
        /// The subscribing bolt.
        bolt: String,
        /// The source component.
        src: String,
        /// The undeclared stream.
        stream: String,
    },
    /// A fields grouping names a field absent from the stream schema.
    BadGroupingField {
        /// The subscribing bolt.
        bolt: String,
        /// The source component.
        src: String,
        /// The subscribed stream.
        stream: String,
        /// The unknown field.
        field: String,
    },
    /// The component graph has a cycle.
    Cycle(String),
    /// The topology has no spouts.
    NoSpouts,
    /// A component has zero parallelism.
    ZeroParallelism(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateComponent(n) => write!(f, "duplicate component `{n}`"),
            TopologyError::UnknownSource { bolt, src } => {
                write!(f, "bolt `{bolt}` subscribes to unknown component `{src}`")
            }
            TopologyError::UnknownStream { bolt, src, stream } => write!(
                f,
                "bolt `{bolt}` subscribes to undeclared stream `{src}:{stream}`"
            ),
            TopologyError::BadGroupingField {
                bolt,
                src,
                stream,
                field,
            } => write!(
                f,
                "bolt `{bolt}`: grouping field `{field}` is not in schema of `{src}:{stream}`"
            ),
            TopologyError::Cycle(n) => write!(f, "topology contains a cycle through `{n}`"),
            TopologyError::NoSpouts => write!(f, "topology has no spouts"),
            TopologyError::ZeroParallelism(n) => {
                write!(f, "component `{n}` has parallelism 0")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Runtime knobs.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Bounded capacity of each task's input queue; full queues block
    /// producers (backpressure).
    pub queue_capacity: usize,
    /// Tuple trees older than this are failed back to their spout.
    pub message_timeout: Duration,
    /// Fault-injection schedule (executor panics, tuple drops/delays).
    /// [`tchaos::FaultPlan::none`] — the default — injects nothing.
    pub fault_plan: tchaos::FaultPlan,
    /// Clock driving the acker's timeout sweep; a mock clock lets tests
    /// expire tuple trees in logical time.
    pub clock: tchaos::Clock,
    /// Batch transport knob: the maximum tuples per emit buffer before it
    /// flushes to the downstream queue, and the maximum run handed to one
    /// bolt invocation. `1` disables batching (every emit is delivered
    /// immediately, every tuple executes alone) — the pre-batching
    /// behaviour.
    pub batch_size: usize,
    /// Upper bound on how long a spout-side emit buffer may age before it
    /// is flushed even when below `batch_size`. Bolt-side buffers flush at
    /// the end of every execute run and on ticks, so this interval is the
    /// extra latency batching can add to a trickle of tuples.
    pub flush_interval: Duration,
    /// Exposition registry every runtime metric attaches to (component
    /// counters, queue depths, backpressure stalls, batch sizes, pipeline
    /// latency). Share one registry across topologies and other subsystems
    /// to render a single combined text exposition.
    pub registry: obs::Registry,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            queue_capacity: 1024,
            message_timeout: Duration::from_secs(30),
            fault_plan: tchaos::FaultPlan::none(),
            clock: tchaos::Clock::system(),
            batch_size: 64,
            flush_interval: Duration::from_millis(1),
            registry: obs::Registry::new(),
        }
    }
}

pub(crate) struct Subscription {
    pub(crate) src: String,
    pub(crate) stream: String,
    pub(crate) grouping: Grouping,
}

pub(crate) struct SpoutDef {
    pub(crate) name: String,
    pub(crate) factory: SpoutFactory,
    pub(crate) parallelism: usize,
    pub(crate) outputs: Vec<StreamDef>,
}

pub(crate) struct BoltDef {
    pub(crate) name: String,
    pub(crate) factory: BoltFactory,
    pub(crate) parallelism: usize,
    pub(crate) subscriptions: Vec<Subscription>,
    pub(crate) tick: Option<Duration>,
    pub(crate) outputs: Vec<StreamDef>,
}

/// Incrementally assembles a topology. See the crate docs for an example.
pub struct TopologyBuilder {
    pub(crate) config: TopologyConfig,
    pub(crate) spouts: Vec<SpoutDef>,
    pub(crate) bolts: Vec<BoltDef>,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Empty builder with default config.
    pub fn new() -> Self {
        TopologyBuilder {
            config: TopologyConfig::default(),
            spouts: Vec::new(),
            bolts: Vec::new(),
        }
    }

    /// Overrides the runtime configuration.
    pub fn with_config(mut self, config: TopologyConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers a spout. `factory` is invoked once per task.
    pub fn set_spout<S, F>(&mut self, name: &str, factory: F, parallelism: usize)
    where
        S: Spout + 'static,
        F: Fn() -> S + Send + Sync + 'static,
    {
        let probe = factory();
        let outputs = probe.declare_outputs();
        self.spouts.push(SpoutDef {
            name: name.to_string(),
            factory: std::sync::Arc::new(move || Box::new(factory())),
            parallelism,
            outputs,
        });
    }

    /// Registers a bolt and returns a declarer for its subscriptions.
    pub fn set_bolt<B, F>(&mut self, name: &str, factory: F, parallelism: usize) -> BoltDeclarer<'_>
    where
        B: Bolt + 'static,
        F: Fn() -> B + Send + Sync + 'static,
    {
        let probe = factory();
        let outputs = probe.declare_outputs();
        self.bolts.push(BoltDef {
            name: name.to_string(),
            factory: std::sync::Arc::new(move || Box::new(factory())),
            parallelism,
            subscriptions: Vec::new(),
            tick: None,
            outputs,
        });
        let idx = self.bolts.len() - 1;
        BoltDeclarer { builder: self, idx }
    }

    /// Validates and freezes the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.spouts.is_empty() {
            return Err(TopologyError::NoSpouts);
        }
        let mut names: HashSet<&str> = HashSet::new();
        let mut outputs_of: HashMap<&str, &[StreamDef]> = HashMap::new();
        for s in &self.spouts {
            if s.parallelism == 0 {
                return Err(TopologyError::ZeroParallelism(s.name.clone()));
            }
            if !names.insert(&s.name) {
                return Err(TopologyError::DuplicateComponent(s.name.clone()));
            }
            outputs_of.insert(&s.name, &s.outputs);
        }
        for b in &self.bolts {
            if b.parallelism == 0 {
                return Err(TopologyError::ZeroParallelism(b.name.clone()));
            }
            if !names.insert(&b.name) {
                return Err(TopologyError::DuplicateComponent(b.name.clone()));
            }
            outputs_of.insert(&b.name, &b.outputs);
        }
        for b in &self.bolts {
            for sub in &b.subscriptions {
                let Some(streams) = outputs_of.get(sub.src.as_str()) else {
                    return Err(TopologyError::UnknownSource {
                        bolt: b.name.clone(),
                        src: sub.src.clone(),
                    });
                };
                let Some(def) = streams.iter().find(|d| d.id == sub.stream) else {
                    return Err(TopologyError::UnknownStream {
                        bolt: b.name.clone(),
                        src: sub.src.clone(),
                        stream: sub.stream.clone(),
                    });
                };
                if let Grouping::Fields(fields) = &sub.grouping {
                    for field in fields {
                        if def.schema.index_of(field).is_none() {
                            return Err(TopologyError::BadGroupingField {
                                bolt: b.name.clone(),
                                src: sub.src.clone(),
                                stream: sub.stream.clone(),
                                field: field.clone(),
                            });
                        }
                    }
                }
            }
        }
        // Cycle detection over the component graph (DFS three-colour).
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for b in &self.bolts {
            for sub in &b.subscriptions {
                adj.entry(sub.src.as_str()).or_default().push(&b.name);
            }
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: HashMap<&str, Colour> = names.iter().map(|&n| (n, Colour::White)).collect();
        fn dfs<'a>(
            node: &'a str,
            adj: &HashMap<&'a str, Vec<&'a str>>,
            colour: &mut HashMap<&'a str, Colour>,
        ) -> Result<(), String> {
            colour.insert(node, Colour::Grey);
            for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
                match colour[next] {
                    Colour::Grey => return Err(next.to_string()),
                    Colour::White => dfs(next, adj, colour)?,
                    Colour::Black => {}
                }
            }
            colour.insert(node, Colour::Black);
            Ok(())
        }
        let all: Vec<&str> = names.iter().copied().collect();
        for n in all {
            if colour[n] == Colour::White {
                dfs(n, &adj, &mut colour).map_err(TopologyError::Cycle)?;
            }
        }
        Ok(Topology {
            config: self.config,
            spouts: self.spouts,
            bolts: self.bolts,
        })
    }
}

/// Fluent subscription declaration for one bolt.
pub struct BoltDeclarer<'a> {
    builder: &'a mut TopologyBuilder,
    idx: usize,
}

impl BoltDeclarer<'_> {
    fn push(&mut self, src: &str, stream: &str, grouping: Grouping) -> &mut Self {
        self.builder.bolts[self.idx]
            .subscriptions
            .push(Subscription {
                src: src.to_string(),
                stream: stream.to_string(),
                grouping,
            });
        self
    }

    /// Subscribe to `src`'s default stream with shuffle grouping.
    pub fn shuffle_grouping(&mut self, src: &str) -> &mut Self {
        self.push(src, crate::tuple::DEFAULT_STREAM, Grouping::Shuffle)
    }

    /// Subscribe to `src`'s default stream with fields grouping.
    pub fn fields_grouping<I, S>(&mut self, src: &str, fields: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push(src, crate::tuple::DEFAULT_STREAM, Grouping::fields(fields))
    }

    /// Subscribe to `src`'s default stream with all (broadcast) grouping.
    pub fn all_grouping(&mut self, src: &str) -> &mut Self {
        self.push(src, crate::tuple::DEFAULT_STREAM, Grouping::All)
    }

    /// Subscribe to `src`'s default stream with global grouping (task 0).
    pub fn global_grouping(&mut self, src: &str) -> &mut Self {
        self.push(src, crate::tuple::DEFAULT_STREAM, Grouping::Global)
    }

    /// Subscribe to a named stream with an explicit grouping.
    pub fn grouping_on(&mut self, src: &str, stream: &str, grouping: Grouping) -> &mut Self {
        self.push(src, stream, grouping)
    }

    /// Enables tick callbacks at the given interval for this bolt.
    pub fn tick_interval(&mut self, interval: Duration) -> &mut Self {
        self.builder.bolts[self.idx].tick = Some(interval);
        self
    }
}

/// A validated topology, ready to launch.
pub struct Topology {
    pub(crate) config: TopologyConfig,
    pub(crate) spouts: Vec<SpoutDef>,
    pub(crate) bolts: Vec<BoltDef>,
}

/// One row of [`Topology::components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentInfo {
    /// Component name.
    pub name: String,
    /// Number of parallel tasks.
    pub parallelism: usize,
    /// Whether the component is a spout.
    pub is_spout: bool,
}

impl Topology {
    /// Components in definition order, spouts first. Spout tasks own
    /// acker slots in exactly this order (slot 0 is the first task of the
    /// first spout), so a placement layer can compute global slot
    /// assignments from this listing alone.
    pub fn components(&self) -> Vec<ComponentInfo> {
        self.spouts
            .iter()
            .map(|s| ComponentInfo {
                name: s.name.clone(),
                parallelism: s.parallelism,
                is_spout: true,
            })
            .chain(self.bolts.iter().map(|b| ComponentInfo {
                name: b.name.clone(),
                parallelism: b.parallelism,
                is_spout: false,
            }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{BoltCollector, SpoutCollector};
    use crate::tuple::Tuple;

    struct NullSpout;
    impl Spout for NullSpout {
        fn next_tuple(&mut self, _c: &mut SpoutCollector) -> bool {
            false
        }
        fn declare_outputs(&self) -> Vec<StreamDef> {
            vec![StreamDef::new("default", ["user", "item"])]
        }
    }

    struct NullBolt;
    impl Bolt for NullBolt {
        fn execute(&mut self, _t: &Tuple, _c: &mut BoltCollector) -> Result<(), String> {
            Ok(())
        }
        fn declare_outputs(&self) -> Vec<StreamDef> {
            vec![StreamDef::new("default", ["user", "item"])]
        }
    }

    #[test]
    fn valid_topology_builds() {
        let mut b = TopologyBuilder::new();
        b.set_spout("spout", || NullSpout, 2);
        b.set_bolt("bolt", || NullBolt, 3)
            .fields_grouping("spout", ["user"]);
        assert!(b.build().is_ok());
    }

    #[test]
    fn no_spouts_rejected() {
        let mut b = TopologyBuilder::new();
        b.set_bolt("bolt", || NullBolt, 1);
        assert_eq!(b.build().err(), Some(TopologyError::NoSpouts));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = TopologyBuilder::new();
        b.set_spout("x", || NullSpout, 1);
        b.set_bolt("x", || NullBolt, 1).shuffle_grouping("x");
        assert_eq!(
            b.build().err(),
            Some(TopologyError::DuplicateComponent("x".into()))
        );
    }

    #[test]
    fn unknown_source_rejected() {
        let mut b = TopologyBuilder::new();
        b.set_spout("spout", || NullSpout, 1);
        b.set_bolt("bolt", || NullBolt, 1).shuffle_grouping("ghost");
        assert!(matches!(
            b.build().err(),
            Some(TopologyError::UnknownSource { .. })
        ));
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut b = TopologyBuilder::new();
        b.set_spout("spout", || NullSpout, 1);
        b.set_bolt("bolt", || NullBolt, 1)
            .grouping_on("spout", "sidestream", Grouping::Shuffle);
        assert!(matches!(
            b.build().err(),
            Some(TopologyError::UnknownStream { .. })
        ));
    }

    #[test]
    fn bad_grouping_field_rejected() {
        let mut b = TopologyBuilder::new();
        b.set_spout("spout", || NullSpout, 1);
        b.set_bolt("bolt", || NullBolt, 1)
            .fields_grouping("spout", ["nonexistent"]);
        assert!(matches!(
            b.build().err(),
            Some(TopologyError::BadGroupingField { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = TopologyBuilder::new();
        b.set_spout("spout", || NullSpout, 1);
        b.set_bolt("a", || NullBolt, 1)
            .shuffle_grouping("spout")
            .shuffle_grouping("b");
        b.set_bolt("b", || NullBolt, 1).shuffle_grouping("a");
        assert!(matches!(b.build().err(), Some(TopologyError::Cycle(_))));
    }

    #[test]
    fn zero_parallelism_rejected() {
        let mut b = TopologyBuilder::new();
        b.set_spout("spout", || NullSpout, 0);
        assert!(matches!(
            b.build().err(),
            Some(TopologyError::ZeroParallelism(_))
        ));
    }
}
