#![warn(missing_docs)]
//! # tstorm — a Storm-model stream processor in a single process
//!
//! `tstorm` reproduces the Apache Storm programming model that TencentRec
//! (SIGMOD 2015) is built on: **spouts** produce unbounded streams of
//! **tuples**, **bolts** transform them, and **stream groupings** decide how
//! tuples are partitioned over a component's parallel tasks. The paper's
//! algorithms rely only on these semantics — in particular on *fields
//! grouping* guaranteeing that all updates for one key reach one task — so a
//! multi-threaded single-process runtime preserves the behaviour of the
//! production cluster while staying runnable on a laptop.
//!
//! Features:
//!
//! * bounded per-task input queues (producers block → backpressure),
//! * shuffle / fields / all / global groupings with deterministic FNV
//!   hashing,
//! * tick tuples for time-driven flushing (combiners, windows),
//! * Storm's XOR **acker** giving at-least-once tracking with message
//!   timeouts,
//! * per-component metrics,
//! * topology construction from an XML config (the paper's Fig. 7) via a
//!   built-in minimal XML parser and a component registry,
//! * a simulated Nimbus/Supervisor cluster model for placement and
//!   failure-recovery reasoning (Fig. 1).
//!
//! ## Example
//!
//! ```
//! use tstorm::prelude::*;
//! use std::sync::{Arc, Mutex};
//! use std::time::Duration;
//!
//! struct CounterSpout(u64);
//! impl Spout for CounterSpout {
//!     fn next_tuple(&mut self, c: &mut SpoutCollector) -> bool {
//!         if self.0 == 0 { return false; }
//!         self.0 -= 1;
//!         c.emit(vec![Value::U64(self.0 % 3)], Some(self.0));
//!         true
//!     }
//!     fn declare_outputs(&self) -> Vec<StreamDef> {
//!         vec![StreamDef::new("default", ["key"])]
//!     }
//! }
//!
//! let seen = Arc::new(Mutex::new(0u64));
//! let seen2 = Arc::clone(&seen);
//! let mut b = TopologyBuilder::new();
//! b.set_spout("numbers", || CounterSpout(30), 1);
//! b.set_bolt("count", move || {
//!     let seen = Arc::clone(&seen2);
//!     move |_t: &Tuple, _c: &mut BoltCollector| {
//!         *seen.lock().unwrap() += 1;
//!         Ok(())
//!     }
//! }, 2).fields_grouping("numbers", ["key"]);
//! let handle = b.build().unwrap().launch();
//! assert!(handle.wait_idle(Duration::from_secs(5)));
//! handle.shutdown(Duration::from_secs(1));
//! assert_eq!(*seen.lock().unwrap(), 30);
//! ```

pub mod ack;
pub(crate) mod channel;
pub mod cluster;
pub mod collector;
pub mod component;
pub mod config;
pub mod executor;
pub mod grouping;
pub mod metrics;
pub mod planner;
pub mod remote;
pub mod topology;
pub mod tuple;
pub mod xml;

/// Common imports for building topologies.
pub mod prelude {
    pub use crate::collector::{BoltCollector, SpoutCollector};
    pub use crate::component::{Bolt, Spout, StreamDef, TaskContext};
    pub use crate::executor::TopologyHandle;
    pub use crate::grouping::Grouping;
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::topology::{TopologyBuilder, TopologyConfig, TopologyError};
    pub use crate::tuple::{Schema, Tuple, Value, DEFAULT_STREAM};
}

pub use prelude::*;
