//! XOR ack tracking, after Storm's acker design.
//!
//! Every root message emitted by a spout with a message id owns an entry in
//! the acker. Each tuple-tree edge is a random 64-bit id; the entry keeps
//! the XOR of all edge ids seen so far. Creating an edge and acking it each
//! XOR the same id into the entry, so the entry reaches zero exactly when
//! every edge has been both created and acked — regardless of arrival
//! order. A sweep fails entries older than the message timeout.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use obs::LatencyHistogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tchaos::Clock;

/// Control messages delivered to spout tasks.
///
/// Public because a cluster runtime hosts the acker in another process:
/// notifications come back over the wire and are re-injected through
/// [`crate::executor::TopologyHandle::spout_notify`].
#[derive(Debug)]
pub enum SpoutMsg {
    /// The tree rooted at this message id completed.
    Ack(u64),
    /// Acks for every tree completed by one acker message: one channel
    /// message (one wake) instead of one per tree.
    AckBatch(Vec<u64>),
    /// The tree rooted at this message id failed or timed out.
    Fail(u64),
    /// Stop emitting new tuples but keep servicing acks.
    Deactivate,
    /// Resume emitting after a [`SpoutMsg::Deactivate`] (e.g. once a
    /// checkpoint has sealed its snapshot).
    Activate,
    /// Close the spout and exit the task thread.
    Shutdown,
}

/// One root registration: what `AckerMsg::Init` carries, batchable.
#[derive(Debug)]
pub struct InitEntry {
    /// Random 64-bit root id of the tuple tree.
    pub root: u64,
    /// XOR of the edge ids of the initial deliveries.
    pub xor: u64,
    /// Acker slot of the owning spout task (global across the cluster).
    pub slot: usize,
    /// User-supplied message id, echoed in ack/fail notifications.
    pub msg_id: u64,
    /// Spout emit time in clock milliseconds; the acker measures whole-
    /// pipeline (spout emit -> tree complete) latency from this stamp.
    pub emit_ms: u64,
}

/// Messages consumed by the acker loop. Public so a cluster worker can
/// forward its emitters' acker traffic to a supervisor-hosted acker.
#[derive(Debug)]
pub enum AckerMsg {
    /// Root created by spout `slot` with user message id `msg_id`;
    /// `xor` folds the edge ids of the initial deliveries and `emit_ms`
    /// stamps the spout emit time for pipeline-latency tracking.
    Init {
        /// Random 64-bit root id of the tuple tree.
        root: u64,
        /// XOR of the edge ids of the initial deliveries.
        xor: u64,
        /// Global acker slot of the owning spout task.
        slot: usize,
        /// User-supplied message id.
        msg_id: u64,
        /// Spout emit time in clock milliseconds.
        emit_ms: u64,
    },
    /// Roots registered since the spout's last flush, shipped together with
    /// the flushed deliveries: one acker message per flush instead of one
    /// per emitted tuple.
    InitBatch(Vec<InitEntry>),
    /// XOR delta from a bolt completing an execute.
    Xor {
        /// Root id the delta applies to.
        root: u64,
        /// XOR of the edge ids acked and created by the execute.
        xor: u64,
    },
    /// Pre-folded XOR deltas for a whole execute run: one delta per root,
    /// one channel message for the lot. Equivalent to sending each pair as
    /// an [`AckerMsg::Xor`] — XOR folding is order-independent — but the
    /// acker queue sees one message per batch instead of one per tuple.
    XorBatch(Vec<(u64, u64)>),
    /// Explicit failure of a tree.
    Fail {
        /// Root id of the failed tree.
        root: u64,
    },
    /// Stop the acker loop (or, on a forwarded channel, the forwarder).
    Shutdown,
}

/// Pass-through hasher for the root-keyed entry map. Roots are uniform
/// random u64s drawn from the emitters' RNGs, so they need no further
/// mixing — SipHash here costs two hashes per tuple for nothing.
#[derive(Default)]
struct RootHasher(u64);

impl std::hash::Hasher for RootHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only reached if the key type ever changes away from u64.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type RootMap = HashMap<u64, Entry, std::hash::BuildHasherDefault<RootHasher>>;

struct Entry {
    pending: u64,
    init: bool,
    /// A `Fail` arrived before `Init` (a bolt can fail a tuple before the
    /// spout's Init message reaches the acker, since Init is sent after
    /// the deliveries). The failure is held until Init names the spout to
    /// notify — dropping it would strand the tree until the timeout sweep.
    failed: bool,
    slot: usize,
    msg_id: u64,
    /// Creation time in clock milliseconds (logical under a mock clock).
    created: u64,
    /// Spout emit time in clock milliseconds (set by Init; completion can
    /// only happen after Init, so a placeholder before that is harmless).
    emit_ms: u64,
}

/// Folds one XOR delta into `root`'s entry; a completed tree is pushed
/// onto `completed` instead of notified immediately, so all trees finished
/// by one incoming message ack the spout in one batched send (shared by
/// the single and batched delta messages).
fn apply_xor(
    entries: &mut RootMap,
    pending_gauge: &AtomicI64,
    clock: &Clock,
    pipeline: &LatencyHistogram,
    completed: &mut Vec<(usize, u64)>,
    root: u64,
    xor: u64,
) {
    let e = entries.entry(root).or_insert_with(|| {
        pending_gauge.fetch_add(1, Ordering::Relaxed);
        let now = clock.now_ms();
        Entry {
            pending: 0,
            init: false,
            failed: false,
            slot: 0,
            msg_id: 0,
            created: now,
            emit_ms: now,
        }
    });
    e.pending ^= xor;
    if e.init && !e.failed && e.pending == 0 {
        let e = entries.remove(&root).expect("entry just updated");
        pending_gauge.fetch_sub(1, Ordering::Relaxed);
        record_pipeline(pipeline, clock, e.emit_ms);
        completed.push((e.slot, e.msg_id));
    }
}

/// Records one spout-emit -> tree-complete latency. The clock ticks in
/// milliseconds, so the histogram's nanosecond buckets see ms precision.
fn record_pipeline(pipeline: &LatencyHistogram, clock: &Clock, emit_ms: u64) {
    let ms = clock.now_ms().saturating_sub(emit_ms);
    pipeline.record_nanos(ms.saturating_mul(1_000_000));
}

/// Registers one root (shared by the single and batched Init messages).
fn apply_init(
    entries: &mut RootMap,
    spouts: &[Sender<SpoutMsg>],
    pending_gauge: &AtomicI64,
    clock: &Clock,
    pipeline: &LatencyHistogram,
    completed: &mut Vec<(usize, u64)>,
    init: InitEntry,
) {
    let InitEntry {
        root,
        xor,
        slot,
        msg_id,
        emit_ms,
    } = init;
    let e = entries.entry(root).or_insert_with(|| {
        pending_gauge.fetch_add(1, Ordering::Relaxed);
        Entry {
            pending: 0,
            init: false,
            failed: false,
            slot,
            msg_id,
            created: clock.now_ms(),
            emit_ms,
        }
    });
    e.init = true;
    e.slot = slot;
    e.msg_id = msg_id;
    e.emit_ms = emit_ms;
    e.pending ^= xor;
    if e.failed {
        let e = entries.remove(&root).expect("entry just inserted");
        pending_gauge.fetch_sub(1, Ordering::Relaxed);
        let _ = spouts[e.slot].send(SpoutMsg::Fail(e.msg_id));
    } else if e.pending == 0 {
        let e = entries.remove(&root).expect("entry just inserted");
        pending_gauge.fetch_sub(1, Ordering::Relaxed);
        record_pipeline(pipeline, clock, e.emit_ms);
        completed.push((e.slot, e.msg_id));
    }
}

/// Ships the acks accumulated while processing one acker message: one
/// `Ack` for a lone completion, one `AckBatch` per spout slot otherwise.
fn flush_acks(completed: &mut Vec<(usize, u64)>, spouts: &[Sender<SpoutMsg>]) {
    if completed.len() == 1 {
        let (slot, msg_id) = completed.pop().expect("len checked");
        let _ = spouts[slot].send(SpoutMsg::Ack(msg_id));
        return;
    }
    while !completed.is_empty() {
        let slot = completed[0].0;
        let mut ids = Vec::with_capacity(completed.len());
        // `retain` keeps arrival order for the remaining slots.
        completed.retain(|&(s, id)| {
            if s == slot {
                ids.push(id);
                false
            } else {
                true
            }
        });
        let _ = spouts[slot].send(SpoutMsg::AckBatch(ids));
    }
}

/// Runs the acker loop until shutdown. `pending_gauge` mirrors the number of
/// live entries so the topology can detect quiescence. Entry ages are
/// measured on `clock`, so a mock clock can expire trees in logical time.
/// `pipeline` collects spout-emit -> tree-complete latencies.
///
/// Public so a cluster supervisor can host the one global acker for a
/// topology whose spouts and bolts are spread over worker processes:
/// `spouts` is then a vector of forwarding channels, one per global
/// spout slot.
pub fn run_acker(
    rx: Receiver<AckerMsg>,
    spouts: Vec<Sender<SpoutMsg>>,
    timeout: Duration,
    pending_gauge: Arc<AtomicI64>,
    clock: Clock,
    pipeline: Arc<LatencyHistogram>,
) {
    let mut entries = RootMap::default();
    let timeout_ms = timeout.as_millis() as u64;
    // The sweep wakes on real time even under a mock clock (something has
    // to poll); with mock time it polls fast so an `advance()` past the
    // timeout is noticed promptly without sleeping the timeout for real.
    let sweep_every = if clock.is_mock() {
        Duration::from_millis(5)
    } else {
        timeout
            .min(Duration::from_millis(500))
            .max(Duration::from_millis(10))
    };
    let mut next_sweep = Instant::now() + sweep_every;
    // (slot, msg_id) of trees completed by the message being processed;
    // drained into batched spout notifications after each message.
    let mut completed: Vec<(usize, u64)> = Vec::new();
    loop {
        let wait = next_sweep.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(AckerMsg::Init {
                root,
                xor,
                slot,
                msg_id,
                emit_ms,
            }) => {
                apply_init(
                    &mut entries,
                    &spouts,
                    &pending_gauge,
                    &clock,
                    &pipeline,
                    &mut completed,
                    InitEntry {
                        root,
                        xor,
                        slot,
                        msg_id,
                        emit_ms,
                    },
                );
            }
            Ok(AckerMsg::InitBatch(inits)) => {
                for init in inits {
                    apply_init(
                        &mut entries,
                        &spouts,
                        &pending_gauge,
                        &clock,
                        &pipeline,
                        &mut completed,
                        init,
                    );
                }
            }
            Ok(AckerMsg::Xor { root, xor }) => {
                apply_xor(
                    &mut entries,
                    &pending_gauge,
                    &clock,
                    &pipeline,
                    &mut completed,
                    root,
                    xor,
                );
            }
            Ok(AckerMsg::XorBatch(pairs)) => {
                for (root, xor) in pairs {
                    apply_xor(
                        &mut entries,
                        &pending_gauge,
                        &clock,
                        &pipeline,
                        &mut completed,
                        root,
                        xor,
                    );
                }
            }
            Ok(AckerMsg::Fail { root }) => match entries.entry(root) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    if o.get().init {
                        let e = o.remove();
                        pending_gauge.fetch_sub(1, Ordering::Relaxed);
                        let _ = spouts[e.slot].send(SpoutMsg::Fail(e.msg_id));
                    } else {
                        // Init not seen yet: hold the failure until it
                        // arrives and identifies the owning spout.
                        o.into_mut().failed = true;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    pending_gauge.fetch_add(1, Ordering::Relaxed);
                    let now = clock.now_ms();
                    v.insert(Entry {
                        pending: 0,
                        init: false,
                        failed: true,
                        slot: 0,
                        msg_id: 0,
                        created: now,
                        emit_ms: now,
                    });
                }
            },
            Ok(AckerMsg::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if !completed.is_empty() {
            flush_acks(&mut completed, &spouts);
        }
        if Instant::now() >= next_sweep {
            let now = Instant::now();
            let now_ms = clock.now_ms();
            let expired: Vec<u64> = entries
                .iter()
                .filter(|(_, e)| now_ms.saturating_sub(e.created) > timeout_ms)
                .map(|(&r, _)| r)
                .collect();
            for root in expired {
                if let Some(e) = entries.remove(&root) {
                    pending_gauge.fetch_sub(1, Ordering::Relaxed);
                    if e.init {
                        let _ = spouts[e.slot].send(SpoutMsg::Fail(e.msg_id));
                    }
                }
            }
            next_sweep = now + sweep_every;
        }
    }
    pending_gauge.fetch_sub(entries.len() as i64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn setup_with_clock(
        timeout: Duration,
        clock: Clock,
    ) -> (
        Sender<AckerMsg>,
        Receiver<SpoutMsg>,
        Arc<AtomicI64>,
        std::thread::JoinHandle<()>,
    ) {
        let (tx, rx) = unbounded();
        let (stx, srx) = unbounded();
        let gauge = Arc::new(AtomicI64::new(0));
        let g = Arc::clone(&gauge);
        let pipeline = Arc::new(LatencyHistogram::new());
        let h = std::thread::spawn(move || run_acker(rx, vec![stx], timeout, g, clock, pipeline));
        (tx, srx, gauge, h)
    }

    fn setup(
        timeout: Duration,
    ) -> (
        Sender<AckerMsg>,
        Receiver<SpoutMsg>,
        Arc<AtomicI64>,
        std::thread::JoinHandle<()>,
    ) {
        setup_with_clock(timeout, Clock::system())
    }

    #[test]
    fn simple_tree_completes() {
        let (tx, srx, gauge, h) = setup(Duration::from_secs(5));
        // spout emits root 7 with one edge id 0xAB, msg id 42
        tx.send(AckerMsg::Init {
            root: 7,
            xor: 0xAB,
            slot: 0,
            msg_id: 42,
            emit_ms: 0,
        })
        .unwrap();
        // bolt acks the edge (no children)
        tx.send(AckerMsg::Xor { root: 7, xor: 0xAB }).unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(42) => {}
            other => panic!("expected Ack(42), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn out_of_order_xor_before_init() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        tx.send(AckerMsg::Xor { root: 1, xor: 0x10 }).unwrap();
        tx.send(AckerMsg::Init {
            root: 1,
            xor: 0x10,
            slot: 0,
            msg_id: 9,
            emit_ms: 0,
        })
        .unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(9) => {}
            other => panic!("expected Ack(9), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn multi_edge_tree() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        // root with two initial edges
        tx.send(AckerMsg::Init {
            root: 3,
            xor: 0xA ^ 0xB,
            slot: 0,
            msg_id: 1,
            emit_ms: 0,
        })
        .unwrap();
        // first bolt acks edge 0xA and creates child edge 0xC
        tx.send(AckerMsg::Xor {
            root: 3,
            xor: 0xA ^ 0xC,
        })
        .unwrap();
        assert!(srx.try_recv().is_err(), "tree not complete yet");
        // second bolt acks 0xB; third acks 0xC
        tx.send(AckerMsg::Xor { root: 3, xor: 0xB }).unwrap();
        tx.send(AckerMsg::Xor { root: 3, xor: 0xC }).unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(1) => {}
            other => panic!("expected Ack(1), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn xor_batch_completes_trees() {
        // One XorBatch message carries the pre-folded deltas of a whole
        // execute run spanning two roots; both trees must complete.
        let (tx, srx, gauge, h) = setup(Duration::from_secs(5));
        for (root, msg_id) in [(21u64, 1u64), (22, 2)] {
            tx.send(AckerMsg::Init {
                root,
                xor: 0xEE,
                slot: 0,
                msg_id,
                emit_ms: 0,
            })
            .unwrap();
        }
        tx.send(AckerMsg::XorBatch(vec![(21, 0xEE), (22, 0xEE)]))
            .unwrap();
        // Both trees complete while processing one message, so the spout
        // hears about them in one batched notification.
        let mut acked = match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::AckBatch(ids) => ids,
            other => panic!("expected AckBatch, got {other:?}"),
        };
        acked.sort_unstable();
        assert_eq!(acked, vec![1, 2]);
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn init_batch_registers_all_roots() {
        // One InitBatch registers three roots (as a spout flush would);
        // XorBatch then completes them all in one AckBatch.
        let (tx, srx, gauge, h) = setup(Duration::from_secs(5));
        tx.send(AckerMsg::InitBatch(
            (0..3u64)
                .map(|i| InitEntry {
                    root: 30 + i,
                    xor: 0x40 + i,
                    slot: 0,
                    msg_id: 100 + i,
                    emit_ms: 0,
                })
                .collect(),
        ))
        .unwrap();
        tx.send(AckerMsg::XorBatch(
            (0..3u64).map(|i| (30 + i, 0x40 + i)).collect(),
        ))
        .unwrap();
        let mut acked = match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::AckBatch(ids) => ids,
            other => panic!("expected AckBatch, got {other:?}"),
        };
        acked.sort_unstable();
        assert_eq!(acked, vec![100, 101, 102]);
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn explicit_fail_notifies_spout() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        tx.send(AckerMsg::Init {
            root: 5,
            xor: 0x1,
            slot: 0,
            msg_id: 77,
            emit_ms: 0,
        })
        .unwrap();
        tx.send(AckerMsg::Fail { root: 5 }).unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Fail(77) => {}
            other => panic!("expected Fail(77), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn fail_before_init_notifies_spout() {
        // Init is sent after the tuple deliveries, so a fast bolt can fail
        // a tree before the acker ever saw its Init. The failure must be
        // held and delivered when Init arrives — not dropped (which would
        // strand the tree until the timeout sweep).
        let (tx, srx, gauge, h) = setup(Duration::from_secs(60));
        tx.send(AckerMsg::Fail { root: 12 }).unwrap();
        tx.send(AckerMsg::Init {
            root: 12,
            xor: 0x5,
            slot: 0,
            msg_id: 33,
            emit_ms: 0,
        })
        .unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Fail(33) => {}
            other => panic!("expected Fail(33), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn timeout_fails_stale_tree() {
        // A mock clock drives the expiry: the logical timeout is an hour,
        // but the test advances past it instantly instead of sleeping.
        let clock = Clock::mock();
        let (tx, srx, _g, h) = setup_with_clock(Duration::from_secs(3_600), clock.clone());
        tx.send(AckerMsg::Init {
            root: 8,
            xor: 0x2,
            slot: 0,
            msg_id: 11,
            emit_ms: 0,
        })
        .unwrap();
        assert!(
            srx.recv_timeout(Duration::from_millis(30)).is_err(),
            "tree must not expire before the clock advances"
        );
        clock.advance(3_600_001);
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Fail(11) => {}
            other => panic!("expected timeout Fail(11), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn zero_edge_init_acks_immediately() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        tx.send(AckerMsg::Init {
            root: 9,
            xor: 0,
            slot: 0,
            msg_id: 5,
            emit_ms: 0,
        })
        .unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(5) => {}
            other => panic!("expected Ack(5), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }
}
