//! XOR ack tracking, after Storm's acker design.
//!
//! Every root message emitted by a spout with a message id owns an entry in
//! the acker. Each tuple-tree edge is a random 64-bit id; the entry keeps
//! the XOR of all edge ids seen so far. Creating an edge and acking it each
//! XOR the same id into the entry, so the entry reaches zero exactly when
//! every edge has been both created and acked — regardless of arrival
//! order. A sweep fails entries older than the message timeout.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tchaos::Clock;

/// Control messages delivered to spout tasks.
#[derive(Debug)]
pub(crate) enum SpoutMsg {
    Ack(u64),
    Fail(u64),
    /// Stop emitting new tuples but keep servicing acks.
    Deactivate,
    Shutdown,
}

#[derive(Debug)]
pub(crate) enum AckerMsg {
    /// Root created by spout `slot` with user message id `msg_id`;
    /// `xor` folds the edge ids of the initial deliveries.
    Init {
        root: u64,
        xor: u64,
        slot: usize,
        msg_id: u64,
    },
    /// XOR delta from a bolt completing an execute.
    Xor {
        root: u64,
        xor: u64,
    },
    /// Explicit failure of a tree.
    Fail {
        root: u64,
    },
    Shutdown,
}

struct Entry {
    pending: u64,
    init: bool,
    /// A `Fail` arrived before `Init` (a bolt can fail a tuple before the
    /// spout's Init message reaches the acker, since Init is sent after
    /// the deliveries). The failure is held until Init names the spout to
    /// notify — dropping it would strand the tree until the timeout sweep.
    failed: bool,
    slot: usize,
    msg_id: u64,
    /// Creation time in clock milliseconds (logical under a mock clock).
    created: u64,
}

/// Runs the acker loop until shutdown. `pending_gauge` mirrors the number of
/// live entries so the topology can detect quiescence. Entry ages are
/// measured on `clock`, so a mock clock can expire trees in logical time.
pub(crate) fn run_acker(
    rx: Receiver<AckerMsg>,
    spouts: Vec<Sender<SpoutMsg>>,
    timeout: Duration,
    pending_gauge: Arc<AtomicI64>,
    clock: Clock,
) {
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    let timeout_ms = timeout.as_millis() as u64;
    // The sweep wakes on real time even under a mock clock (something has
    // to poll); with mock time it polls fast so an `advance()` past the
    // timeout is noticed promptly without sleeping the timeout for real.
    let sweep_every = if clock.is_mock() {
        Duration::from_millis(5)
    } else {
        timeout
            .min(Duration::from_millis(500))
            .max(Duration::from_millis(10))
    };
    let mut next_sweep = Instant::now() + sweep_every;
    loop {
        let wait = next_sweep.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(AckerMsg::Init {
                root,
                xor,
                slot,
                msg_id,
            }) => {
                let e = entries.entry(root).or_insert_with(|| {
                    pending_gauge.fetch_add(1, Ordering::Relaxed);
                    Entry {
                        pending: 0,
                        init: false,
                        failed: false,
                        slot,
                        msg_id,
                        created: clock.now_ms(),
                    }
                });
                e.init = true;
                e.slot = slot;
                e.msg_id = msg_id;
                e.pending ^= xor;
                if e.failed {
                    let e = entries.remove(&root).expect("entry just inserted");
                    pending_gauge.fetch_sub(1, Ordering::Relaxed);
                    let _ = spouts[e.slot].send(SpoutMsg::Fail(e.msg_id));
                } else if e.pending == 0 {
                    let e = entries.remove(&root).expect("entry just inserted");
                    pending_gauge.fetch_sub(1, Ordering::Relaxed);
                    let _ = spouts[e.slot].send(SpoutMsg::Ack(e.msg_id));
                }
            }
            Ok(AckerMsg::Xor { root, xor }) => {
                let e = entries.entry(root).or_insert_with(|| {
                    pending_gauge.fetch_add(1, Ordering::Relaxed);
                    Entry {
                        pending: 0,
                        init: false,
                        failed: false,
                        slot: 0,
                        msg_id: 0,
                        created: clock.now_ms(),
                    }
                });
                e.pending ^= xor;
                if e.init && !e.failed && e.pending == 0 {
                    let e = entries.remove(&root).expect("entry just updated");
                    pending_gauge.fetch_sub(1, Ordering::Relaxed);
                    let _ = spouts[e.slot].send(SpoutMsg::Ack(e.msg_id));
                }
            }
            Ok(AckerMsg::Fail { root }) => match entries.entry(root) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    if o.get().init {
                        let e = o.remove();
                        pending_gauge.fetch_sub(1, Ordering::Relaxed);
                        let _ = spouts[e.slot].send(SpoutMsg::Fail(e.msg_id));
                    } else {
                        // Init not seen yet: hold the failure until it
                        // arrives and identifies the owning spout.
                        o.into_mut().failed = true;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    pending_gauge.fetch_add(1, Ordering::Relaxed);
                    v.insert(Entry {
                        pending: 0,
                        init: false,
                        failed: true,
                        slot: 0,
                        msg_id: 0,
                        created: clock.now_ms(),
                    });
                }
            },
            Ok(AckerMsg::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if Instant::now() >= next_sweep {
            let now = Instant::now();
            let now_ms = clock.now_ms();
            let expired: Vec<u64> = entries
                .iter()
                .filter(|(_, e)| now_ms.saturating_sub(e.created) > timeout_ms)
                .map(|(&r, _)| r)
                .collect();
            for root in expired {
                if let Some(e) = entries.remove(&root) {
                    pending_gauge.fetch_sub(1, Ordering::Relaxed);
                    if e.init {
                        let _ = spouts[e.slot].send(SpoutMsg::Fail(e.msg_id));
                    }
                }
            }
            next_sweep = now + sweep_every;
        }
    }
    pending_gauge.fetch_sub(entries.len() as i64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn setup_with_clock(
        timeout: Duration,
        clock: Clock,
    ) -> (
        Sender<AckerMsg>,
        Receiver<SpoutMsg>,
        Arc<AtomicI64>,
        std::thread::JoinHandle<()>,
    ) {
        let (tx, rx) = unbounded();
        let (stx, srx) = unbounded();
        let gauge = Arc::new(AtomicI64::new(0));
        let g = Arc::clone(&gauge);
        let h = std::thread::spawn(move || run_acker(rx, vec![stx], timeout, g, clock));
        (tx, srx, gauge, h)
    }

    fn setup(
        timeout: Duration,
    ) -> (
        Sender<AckerMsg>,
        Receiver<SpoutMsg>,
        Arc<AtomicI64>,
        std::thread::JoinHandle<()>,
    ) {
        setup_with_clock(timeout, Clock::system())
    }

    #[test]
    fn simple_tree_completes() {
        let (tx, srx, gauge, h) = setup(Duration::from_secs(5));
        // spout emits root 7 with one edge id 0xAB, msg id 42
        tx.send(AckerMsg::Init {
            root: 7,
            xor: 0xAB,
            slot: 0,
            msg_id: 42,
        })
        .unwrap();
        // bolt acks the edge (no children)
        tx.send(AckerMsg::Xor { root: 7, xor: 0xAB }).unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(42) => {}
            other => panic!("expected Ack(42), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn out_of_order_xor_before_init() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        tx.send(AckerMsg::Xor { root: 1, xor: 0x10 }).unwrap();
        tx.send(AckerMsg::Init {
            root: 1,
            xor: 0x10,
            slot: 0,
            msg_id: 9,
        })
        .unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(9) => {}
            other => panic!("expected Ack(9), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn multi_edge_tree() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        // root with two initial edges
        tx.send(AckerMsg::Init {
            root: 3,
            xor: 0xA ^ 0xB,
            slot: 0,
            msg_id: 1,
        })
        .unwrap();
        // first bolt acks edge 0xA and creates child edge 0xC
        tx.send(AckerMsg::Xor {
            root: 3,
            xor: 0xA ^ 0xC,
        })
        .unwrap();
        assert!(srx.try_recv().is_err(), "tree not complete yet");
        // second bolt acks 0xB; third acks 0xC
        tx.send(AckerMsg::Xor { root: 3, xor: 0xB }).unwrap();
        tx.send(AckerMsg::Xor { root: 3, xor: 0xC }).unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(1) => {}
            other => panic!("expected Ack(1), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn explicit_fail_notifies_spout() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        tx.send(AckerMsg::Init {
            root: 5,
            xor: 0x1,
            slot: 0,
            msg_id: 77,
        })
        .unwrap();
        tx.send(AckerMsg::Fail { root: 5 }).unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Fail(77) => {}
            other => panic!("expected Fail(77), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn fail_before_init_notifies_spout() {
        // Init is sent after the tuple deliveries, so a fast bolt can fail
        // a tree before the acker ever saw its Init. The failure must be
        // held and delivered when Init arrives — not dropped (which would
        // strand the tree until the timeout sweep).
        let (tx, srx, gauge, h) = setup(Duration::from_secs(60));
        tx.send(AckerMsg::Fail { root: 12 }).unwrap();
        tx.send(AckerMsg::Init {
            root: 12,
            xor: 0x5,
            slot: 0,
            msg_id: 33,
        })
        .unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Fail(33) => {}
            other => panic!("expected Fail(33), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn timeout_fails_stale_tree() {
        // A mock clock drives the expiry: the logical timeout is an hour,
        // but the test advances past it instantly instead of sleeping.
        let clock = Clock::mock();
        let (tx, srx, _g, h) = setup_with_clock(Duration::from_secs(3_600), clock.clone());
        tx.send(AckerMsg::Init {
            root: 8,
            xor: 0x2,
            slot: 0,
            msg_id: 11,
        })
        .unwrap();
        assert!(
            srx.recv_timeout(Duration::from_millis(30)).is_err(),
            "tree must not expire before the clock advances"
        );
        clock.advance(3_600_001);
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Fail(11) => {}
            other => panic!("expected timeout Fail(11), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn zero_edge_init_acks_immediately() {
        let (tx, srx, _g, h) = setup(Duration::from_secs(5));
        tx.send(AckerMsg::Init {
            root: 9,
            xor: 0,
            slot: 0,
            msg_id: 5,
        })
        .unwrap();
        match srx.recv_timeout(Duration::from_secs(2)).unwrap() {
            SpoutMsg::Ack(5) => {}
            other => panic!("expected Ack(5), got {other:?}"),
        }
        tx.send(AckerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }
}
