//! Spout and bolt traits — the user-facing programming model.

use crate::collector::{BoltCollector, SpoutCollector};
use crate::tuple::{Schema, Tuple};

/// Declaration of one output stream of a component.
#[derive(Debug, Clone)]
pub struct StreamDef {
    /// Stream id (`"default"` for the main stream).
    pub id: String,
    /// Field names of tuples emitted on this stream.
    pub schema: Schema,
}

impl StreamDef {
    /// Declares a stream `id` with the given field names.
    pub fn new<I, S>(id: &str, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        StreamDef {
            id: id.to_string(),
            schema: Schema::new(fields),
        }
    }
}

/// Per-task information handed to `open`/`prepare`.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// Component name in the topology.
    pub component: String,
    /// Index of this task within the component, `0..n_tasks`.
    pub task_index: usize,
    /// Total parallelism of the component.
    pub n_tasks: usize,
}

/// A source of tuples. One instance is created per task via the registered
/// factory, so implementations may keep mutable per-task state freely.
pub trait Spout: Send {
    /// Called once before the first `next_tuple`.
    fn open(&mut self, _ctx: &TaskContext) {}

    /// Emits zero or more tuples. Returns `false` when there was nothing to
    /// emit, in which case the runtime backs off briefly before polling
    /// again.
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool;

    /// A tuple tree rooted at the message emitted with `msg_id` completed.
    fn ack(&mut self, _msg_id: u64) {}

    /// A tuple tree rooted at `msg_id` failed (explicitly or by timeout).
    fn fail(&mut self, _msg_id: u64) {}

    /// Called on shutdown.
    fn close(&mut self) {}

    /// Output stream declarations; consumers can only subscribe to declared
    /// streams.
    fn declare_outputs(&self) -> Vec<StreamDef>;
}

/// A processing node. `execute` is invoked for every incoming tuple; tuples
/// emitted from within `execute` are automatically anchored to the input
/// (at-least-once semantics), and the input is acked when `execute` returns
/// `Ok` and failed when it returns `Err`.
pub trait Bolt: Send {
    /// Called once before the first `execute`.
    fn prepare(&mut self, _ctx: &TaskContext) {}

    /// Processes one input tuple.
    fn execute(&mut self, tuple: &Tuple, collector: &mut BoltCollector) -> Result<(), String>;

    /// Whether the runtime should hand this bolt whole runs of tuples via
    /// [`Bolt::execute_batch`]. The default (`false`) keeps per-tuple
    /// `execute` calls with per-tuple ack/fail. Opt in when the bolt can
    /// merge same-key work across a batch (e.g. summing counter deltas
    /// before touching the store); completion then becomes all-or-nothing
    /// per run, which is safe under at-least-once replay and exact under
    /// the per-(source, key) dedup layer.
    fn supports_batch(&self) -> bool {
        false
    }

    /// Processes a run of input tuples in one call (only invoked when
    /// [`Bolt::supports_batch`] returns `true`). `Ok` acks every tuple in
    /// the run; `Err` (or a panic) fails the whole run and each tuple
    /// replays. Implementations that emit should call
    /// [`BoltCollector::anchor_to`] with the relevant input before each
    /// emit so the tuple tree stays connected; the runtime pre-anchors the
    /// collector to the union of the run's anchors as a conservative
    /// default.
    fn execute_batch(
        &mut self,
        tuples: &[Tuple],
        collector: &mut BoltCollector,
    ) -> Result<(), String> {
        for t in tuples {
            collector.anchor_to(t);
            self.execute(t, collector)?;
        }
        Ok(())
    }

    /// Called at the configured tick interval (see
    /// [`crate::topology::BoltDeclarer::tick_interval`]); used by windowed
    /// state and combiners to flush on time rather than on data.
    fn tick(&mut self, _collector: &mut BoltCollector) {}

    /// Called on shutdown.
    fn cleanup(&mut self) {}

    /// Output stream declarations (empty for terminal bolts).
    fn declare_outputs(&self) -> Vec<StreamDef> {
        Vec::new()
    }
}

impl Spout for Box<dyn Spout> {
    fn open(&mut self, ctx: &TaskContext) {
        (**self).open(ctx)
    }
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        (**self).next_tuple(collector)
    }
    fn ack(&mut self, msg_id: u64) {
        (**self).ack(msg_id)
    }
    fn fail(&mut self, msg_id: u64) {
        (**self).fail(msg_id)
    }
    fn close(&mut self) {
        (**self).close()
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        (**self).declare_outputs()
    }
}

impl Bolt for Box<dyn Bolt> {
    fn prepare(&mut self, ctx: &TaskContext) {
        (**self).prepare(ctx)
    }
    fn execute(&mut self, tuple: &Tuple, collector: &mut BoltCollector) -> Result<(), String> {
        (**self).execute(tuple, collector)
    }
    fn supports_batch(&self) -> bool {
        (**self).supports_batch()
    }
    fn execute_batch(
        &mut self,
        tuples: &[Tuple],
        collector: &mut BoltCollector,
    ) -> Result<(), String> {
        (**self).execute_batch(tuples, collector)
    }
    fn tick(&mut self, collector: &mut BoltCollector) {
        (**self).tick(collector)
    }
    fn cleanup(&mut self) {
        (**self).cleanup()
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        (**self).declare_outputs()
    }
}

impl<F> Bolt for F
where
    F: FnMut(&Tuple, &mut BoltCollector) -> Result<(), String> + Send,
{
    fn execute(&mut self, tuple: &Tuple, collector: &mut BoltCollector) -> Result<(), String> {
        self(tuple, collector)
    }
}
