//! Lightweight per-component runtime metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for one component (all of its tasks update the same
/// instance; contention is acceptable because these are plain relaxed
/// atomics).
#[derive(Debug, Default)]
pub struct ComponentMetrics {
    /// Tuples emitted on any stream.
    pub emitted: AtomicU64,
    /// Tuples executed (bolts) or emitted root messages (spouts).
    pub executed: AtomicU64,
    /// Completed tuple trees (spouts) / successful executes (bolts).
    pub acked: AtomicU64,
    /// Failed tuple trees / failed executes.
    pub failed: AtomicU64,
    /// Total nanoseconds spent inside `execute`.
    pub exec_nanos: AtomicU64,
}

impl ComponentMetrics {
    pub(crate) fn record_exec(&self, nanos: u64, ok: bool) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.exec_nanos.fetch_add(nanos, Ordering::Relaxed);
        if ok {
            self.acked.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self, component: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            component: component.to_string(),
            emitted: self.emitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            acked: self.acked.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            exec_nanos: self.exec_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of one component's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Component name.
    pub component: String,
    /// Tuples emitted on any stream.
    pub emitted: u64,
    /// Tuples executed (bolts) / root messages emitted (spouts).
    pub executed: u64,
    /// Successful executes / completed trees.
    pub acked: u64,
    /// Failed executes / failed trees.
    pub failed: u64,
    /// Total nanoseconds spent in `execute`.
    pub exec_nanos: u64,
}

impl MetricsSnapshot {
    /// Mean `execute` latency in microseconds, or 0 when nothing executed.
    pub fn mean_exec_micros(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.exec_nanos as f64 / self.executed as f64 / 1_000.0
        }
    }
}

/// Registry of the metrics of every component in a topology.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    entries: Vec<(String, Arc<ComponentMetrics>)>,
}

impl MetricsRegistry {
    pub(crate) fn register(&mut self, component: &str) -> Arc<ComponentMetrics> {
        let m = Arc::new(ComponentMetrics::default());
        self.entries.push((component.to_string(), Arc::clone(&m)));
        m
    }

    /// Snapshots all components.
    pub fn snapshot(&self) -> Vec<MetricsSnapshot> {
        self.entries
            .iter()
            .map(|(name, m)| m.snapshot(name))
            .collect()
    }

    /// Snapshot of one component, if it exists.
    pub fn component(&self, name: &str) -> Option<MetricsSnapshot> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, m)| m.snapshot(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let mut reg = MetricsRegistry::default();
        let m = reg.register("bolt");
        m.record_exec(1_000, true);
        m.record_exec(3_000, false);
        let snap = reg.component("bolt").unwrap();
        assert_eq!(snap.executed, 2);
        assert_eq!(snap.acked, 1);
        assert_eq!(snap.failed, 1);
        assert!((snap.mean_exec_micros() - 2.0).abs() < 1e-9);
        assert!(reg.component("missing").is_none());
    }

    #[test]
    fn empty_snapshot_zero_latency() {
        let mut reg = MetricsRegistry::default();
        reg.register("a");
        assert_eq!(reg.snapshot()[0].mean_exec_micros(), 0.0);
    }
}
