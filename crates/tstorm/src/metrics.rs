//! Lightweight per-component runtime metrics.
//!
//! The latency histogram lives in the `obs` crate (re-exported here so
//! downstream crates keep importing it from `tstorm::metrics`); this
//! module keeps the per-component counter bundle and the topology's
//! registry of them, attaching every handle to the topology's
//! [`obs::Registry`] so the same counters show up in the text exposition.

pub use obs::{LatencyHistogram, LatencySnapshot};

use obs::Counter;
use std::sync::Arc;

/// Shared counters for one component (all of its tasks update the same
/// instance; contention is acceptable because these are plain relaxed
/// atomics).
#[derive(Debug, Default)]
pub struct ComponentMetrics {
    /// Tuples emitted on any stream.
    pub emitted: Counter,
    /// Tuples executed (bolts) or emitted root messages (spouts).
    pub executed: Counter,
    /// Completed tuple trees (spouts) / successful executes (bolts).
    pub acked: Counter,
    /// Failed tuple trees / failed executes.
    pub failed: Counter,
    /// Total nanoseconds spent inside `execute`.
    pub exec_nanos: Counter,
    /// Distribution of per-`execute` latency (mean alone hides tails).
    pub exec_latency: Arc<LatencyHistogram>,
}

impl ComponentMetrics {
    pub(crate) fn record_exec(&self, nanos: u64, ok: bool) {
        self.executed.inc();
        self.exec_nanos.add(nanos);
        self.exec_latency.record_nanos(nanos);
        if ok {
            self.acked.inc();
        } else {
            self.failed.inc();
        }
    }

    /// Records one `execute_batch` invocation covering `count` tuples.
    /// The histogram is fed the per-tuple share of the batch, so its
    /// percentiles stay comparable with the unbatched path. The integer
    /// division's remainder is distributed over `total_nanos % count`
    /// tuples (one extra nanosecond each), so the histogram's sum equals
    /// `exec_nanos` exactly instead of drifting low on every batch.
    pub(crate) fn record_exec_batch(&self, total_nanos: u64, count: u64, ok: bool) {
        if count == 0 {
            return;
        }
        self.executed.add(count);
        self.exec_nanos.add(total_nanos);
        let share = total_nanos / count;
        let rem = total_nanos % count;
        self.exec_latency.record_nanos_n(share, count - rem);
        self.exec_latency.record_nanos_n(share + 1, rem);
        if ok {
            self.acked.add(count);
        } else {
            self.failed.add(count);
        }
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self, component: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            component: component.to_string(),
            emitted: self.emitted.get(),
            executed: self.executed.get(),
            acked: self.acked.get(),
            failed: self.failed.get(),
            exec_nanos: self.exec_nanos.get(),
            exec_latency: self.exec_latency.snapshot(),
        }
    }
}

/// Immutable snapshot of one component's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Component name.
    pub component: String,
    /// Tuples emitted on any stream.
    pub emitted: u64,
    /// Tuples executed (bolts) / root messages emitted (spouts).
    pub executed: u64,
    /// Successful executes / completed trees.
    pub acked: u64,
    /// Failed executes / failed trees.
    pub failed: u64,
    /// Total nanoseconds spent in `execute`.
    pub exec_nanos: u64,
    /// Distribution of per-`execute` latency.
    pub exec_latency: LatencySnapshot,
}

impl MetricsSnapshot {
    /// Mean `execute` latency in microseconds, or 0 when nothing executed.
    pub fn mean_exec_micros(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.exec_nanos as f64 / self.executed as f64 / 1_000.0
        }
    }
}

/// Registry of the metrics of every component in a topology.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    entries: Vec<(String, Arc<ComponentMetrics>)>,
}

impl MetricsRegistry {
    /// Creates the component's counter bundle and attaches each handle to
    /// the topology's exposition registry under a `component` label.
    pub(crate) fn register(
        &mut self,
        component: &str,
        obs: &obs::Registry,
    ) -> Arc<ComponentMetrics> {
        let m = Arc::new(ComponentMetrics::default());
        let labels: &[(&str, &str)] = &[("component", component)];
        obs.register_counter(
            "tstorm_emitted_total",
            labels,
            "Tuples emitted on any stream.",
            &m.emitted,
        );
        obs.register_counter(
            "tstorm_executed_total",
            labels,
            "Tuples executed (bolts) or root messages emitted (spouts).",
            &m.executed,
        );
        obs.register_counter(
            "tstorm_acked_total",
            labels,
            "Successful executes / completed tuple trees.",
            &m.acked,
        );
        obs.register_counter(
            "tstorm_failed_total",
            labels,
            "Failed executes / failed tuple trees.",
            &m.failed,
        );
        obs.register_histogram_nanos(
            "tstorm_exec_latency_seconds",
            labels,
            "Per-execute latency distribution.",
            &m.exec_latency,
        );
        self.entries.push((component.to_string(), Arc::clone(&m)));
        m
    }

    /// Snapshots all components.
    pub fn snapshot(&self) -> Vec<MetricsSnapshot> {
        self.entries
            .iter()
            .map(|(name, m)| m.snapshot(name))
            .collect()
    }

    /// Snapshot of one component, if it exists.
    pub fn component(&self, name: &str) -> Option<MetricsSnapshot> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, m)| m.snapshot(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let mut reg = MetricsRegistry::default();
        let obs = obs::Registry::new();
        let m = reg.register("bolt", &obs);
        m.record_exec(1_000, true);
        m.record_exec(3_000, false);
        let snap = reg.component("bolt").unwrap();
        assert_eq!(snap.executed, 2);
        assert_eq!(snap.acked, 1);
        assert_eq!(snap.failed, 1);
        assert!((snap.mean_exec_micros() - 2.0).abs() < 1e-9);
        assert!(reg.component("missing").is_none());
        // The same counters are visible through the exposition registry.
        assert_eq!(
            obs.counter_value("tstorm_executed_total", &[("component", "bolt")]),
            Some(2)
        );
        assert_eq!(
            obs.histogram_snapshot("tstorm_exec_latency_seconds", &[("component", "bolt")])
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    fn empty_snapshot_zero_latency() {
        let mut reg = MetricsRegistry::default();
        reg.register("a", &obs::Registry::new());
        assert_eq!(reg.snapshot()[0].mean_exec_micros(), 0.0);
    }

    #[test]
    fn batch_histogram_sum_matches_exec_nanos() {
        // 10 tuples sharing 1007ns: the naive per-tuple share (100ns) would
        // record 1000ns total, silently dropping 7ns per batch. The
        // remainder must be distributed so both sums agree exactly.
        let m = ComponentMetrics::default();
        m.record_exec_batch(1_007, 10, true);
        m.record_exec_batch(999, 4, false);
        m.record_exec_batch(5, 7, true); // more tuples than nanos
        let snap = m.snapshot("b");
        assert_eq!(snap.exec_nanos, 1_007 + 999 + 5);
        assert_eq!(
            snap.exec_latency.sum_nanos(),
            snap.exec_nanos,
            "histogram sum must equal exec_nanos for non-divisible batches"
        );
        assert_eq!(snap.exec_latency.count(), 10 + 4 + 7);
        assert_eq!(snap.executed, 21);
        assert_eq!(snap.acked, 17);
        assert_eq!(snap.failed, 4);
    }
}
