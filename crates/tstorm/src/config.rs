//! Declarative topology construction from XML configuration files — the
//! paper's Fig. 7 mechanism ("to generate topology for a specific
//! application, we just need to rewrite the XML file").
//!
//! Classes referenced by the XML are resolved against a
//! [`ComponentRegistry`] populated by the application. Expected document
//! shape (attributes `parallelism` and elements `<source>`,
//! `<tick_interval_ms>` are optional):
//!
//! ```xml
//! <topology name="cf-test">
//!   <spout name="spout" class="Spout" parallelism="2"/>
//!   <bolts>
//!     <bolt name="pretreatment" class="Pretreatment" parallelism="4">
//!       <grouping type="field">
//!         <source>spout</source>
//!         <stream_id>default</stream_id>
//!         <fields>user</fields>
//!       </grouping>
//!     </bolt>
//!   </bolts>
//! </topology>
//! ```
//!
//! When `<source>` is omitted the previously declared component is used,
//! matching the linear pipelines of the paper's examples.

use crate::component::{Bolt, Spout};
use crate::grouping::Grouping;
use crate::topology::{Topology, TopologyBuilder, TopologyError};
use crate::tuple::DEFAULT_STREAM;
use crate::xml::{self, XmlError, XmlNode};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors from building a topology out of XML.
#[derive(Debug)]
pub enum ConfigError {
    /// The document failed to parse.
    Xml(XmlError),
    /// A required attribute or element is missing.
    Missing {
        /// The element lacking it.
        element: String,
        /// What was expected.
        what: String,
    },
    /// A `class` attribute does not match any registered component.
    UnknownClass(String),
    /// A grouping `type` attribute is not recognised.
    BadGroupingType(String),
    /// A numeric attribute failed to parse.
    BadNumber {
        /// The element carrying the value.
        element: String,
        /// The unparseable text.
        value: String,
    },
    /// The assembled topology failed validation.
    Topology(TopologyError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Xml(e) => write!(f, "{e}"),
            ConfigError::Missing { element, what } => {
                write!(f, "element `{element}` is missing {what}")
            }
            ConfigError::UnknownClass(c) => write!(f, "unregistered component class `{c}`"),
            ConfigError::BadGroupingType(t) => write!(f, "unknown grouping type `{t}`"),
            ConfigError::BadNumber { element, value } => {
                write!(f, "element `{element}` has non-numeric value `{value}`")
            }
            ConfigError::Topology(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<XmlError> for ConfigError {
    fn from(e: XmlError) -> Self {
        ConfigError::Xml(e)
    }
}
impl From<TopologyError> for ConfigError {
    fn from(e: TopologyError) -> Self {
        ConfigError::Topology(e)
    }
}

type ErasedSpoutFactory = Arc<dyn Fn() -> Box<dyn Spout> + Send + Sync>;
type ErasedBoltFactory = Arc<dyn Fn() -> Box<dyn Bolt> + Send + Sync>;

/// Maps `class` names from XML to component factories.
#[derive(Default, Clone)]
pub struct ComponentRegistry {
    spouts: HashMap<String, ErasedSpoutFactory>,
    bolts: HashMap<String, ErasedBoltFactory>,
}

impl ComponentRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a spout class.
    pub fn register_spout<S, F>(&mut self, class: &str, factory: F)
    where
        S: Spout + 'static,
        F: Fn() -> S + Send + Sync + 'static,
    {
        self.spouts
            .insert(class.to_string(), Arc::new(move || Box::new(factory())));
    }

    /// Registers a bolt class.
    pub fn register_bolt<B, F>(&mut self, class: &str, factory: F)
    where
        B: Bolt + 'static,
        F: Fn() -> B + Send + Sync + 'static,
    {
        self.bolts
            .insert(class.to_string(), Arc::new(move || Box::new(factory())));
    }
}

fn parallelism_of(node: &XmlNode) -> Result<usize, ConfigError> {
    match node.attr("parallelism") {
        None => Ok(1),
        Some(v) => v.parse().map_err(|_| ConfigError::BadNumber {
            element: node.name.clone(),
            value: v.to_string(),
        }),
    }
}

fn required_attr<'a>(node: &'a XmlNode, name: &str) -> Result<&'a str, ConfigError> {
    node.attr(name).ok_or_else(|| ConfigError::Missing {
        element: node.name.clone(),
        what: format!("attribute `{name}`"),
    })
}

fn split_fields(text: &str) -> Vec<String> {
    text.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Runtime knobs configurable as optional attributes on `<topology>`:
/// `queue_capacity`, `batch_size` and `flush_interval_ms` (the batch
/// transport knobs), plus `message_timeout_ms`.
fn config_from_attrs(doc: &XmlNode) -> Result<crate::topology::TopologyConfig, ConfigError> {
    let mut config = crate::topology::TopologyConfig::default();
    let parse_u64 = |name: &str| -> Result<Option<u64>, ConfigError> {
        match doc.attr(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| ConfigError::BadNumber {
                element: format!("topology attribute `{name}`"),
                value: v.to_string(),
            }),
        }
    };
    if let Some(v) = parse_u64("queue_capacity")? {
        config.queue_capacity = (v as usize).max(1);
    }
    if let Some(v) = parse_u64("batch_size")? {
        config.batch_size = (v as usize).max(1);
    }
    if let Some(v) = parse_u64("flush_interval_ms")? {
        config.flush_interval = Duration::from_millis(v);
    }
    if let Some(v) = parse_u64("message_timeout_ms")? {
        config.message_timeout = Duration::from_millis(v);
    }
    Ok(config)
}

/// Builds a [`Topology`] from an XML document and a registry.
pub fn topology_from_xml(
    input: &str,
    registry: &ComponentRegistry,
) -> Result<Topology, ConfigError> {
    let doc = xml::parse(input)?;
    let mut builder = TopologyBuilder::new().with_config(config_from_attrs(&doc)?);
    let mut previous: Option<String> = None;

    // Spouts: direct <spout> children of <topology>.
    for spout_node in doc.children_named("spout") {
        let name = required_attr(spout_node, "name")?;
        let class = required_attr(spout_node, "class")?;
        let factory = registry
            .spouts
            .get(class)
            .ok_or_else(|| ConfigError::UnknownClass(class.to_string()))?
            .clone();
        let parallelism = parallelism_of(spout_node)?;
        builder.set_spout(name, move || factory(), parallelism);
        previous = Some(name.to_string());
    }

    // Bolts: either inside <bolts> or direct children.
    let bolt_nodes: Vec<&XmlNode> = match doc.child("bolts") {
        Some(bolts) => bolts.children_named("bolt").collect(),
        None => doc.children_named("bolt").collect(),
    };
    for bolt_node in bolt_nodes {
        let name = required_attr(bolt_node, "name")?.to_string();
        let class = required_attr(bolt_node, "class")?;
        let factory = registry
            .bolts
            .get(class)
            .ok_or_else(|| ConfigError::UnknownClass(class.to_string()))?
            .clone();
        let parallelism = parallelism_of(bolt_node)?;
        let mut declarer = builder.set_bolt(&name, move || factory(), parallelism);
        let groupings: Vec<&XmlNode> = bolt_node.children_named("grouping").collect();
        if groupings.is_empty() {
            // Implicit: shuffle from the previous component.
            let src = previous.clone().ok_or_else(|| ConfigError::Missing {
                element: name.clone(),
                what: "a <grouping> or a preceding component".to_string(),
            })?;
            declarer.shuffle_grouping(&src);
        }
        for g in groupings {
            let src = g
                .child_text("source")
                .map(str::to_string)
                .or_else(|| previous.clone())
                .ok_or_else(|| ConfigError::Missing {
                    element: name.clone(),
                    what: "<source> (and no preceding component)".to_string(),
                })?;
            let stream = g
                .child_text("stream_id")
                .unwrap_or(DEFAULT_STREAM)
                .to_string();
            let gtype = g.attr("type").unwrap_or("shuffle");
            let grouping = match gtype {
                "shuffle" => Grouping::Shuffle,
                "field" | "fields" => {
                    let fields = g.child_text("fields").ok_or_else(|| ConfigError::Missing {
                        element: name.clone(),
                        what: "<fields> for field grouping".to_string(),
                    })?;
                    Grouping::Fields(split_fields(fields))
                }
                "all" => Grouping::All,
                "global" => Grouping::Global,
                other => return Err(ConfigError::BadGroupingType(other.to_string())),
            };
            declarer.grouping_on(&src, &stream, grouping);
        }
        if let Some(ms) = bolt_node.child_text("tick_interval_ms") {
            let ms: u64 = ms.parse().map_err(|_| ConfigError::BadNumber {
                element: "tick_interval_ms".to_string(),
                value: ms.to_string(),
            })?;
            declarer.tick_interval(Duration::from_millis(ms));
        }
        previous = Some(name);
    }

    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{BoltCollector, SpoutCollector};
    use crate::component::StreamDef;
    use crate::tuple::{Tuple, Value};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct OneShotSpout {
        left: u64,
    }
    impl Spout for OneShotSpout {
        fn next_tuple(&mut self, c: &mut SpoutCollector) -> bool {
            if self.left == 0 {
                return false;
            }
            self.left -= 1;
            c.emit(vec![Value::U64(self.left)], Some(self.left));
            true
        }
        fn declare_outputs(&self) -> Vec<StreamDef> {
            vec![StreamDef::new(DEFAULT_STREAM, ["user"])]
        }
    }

    struct CountBolt(Arc<AtomicU64>);
    impl Bolt for CountBolt {
        fn execute(&mut self, _t: &Tuple, _c: &mut BoltCollector) -> Result<(), String> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    fn registry(counter: Arc<AtomicU64>) -> ComponentRegistry {
        let mut reg = ComponentRegistry::new();
        reg.register_spout("OneShot", || OneShotSpout { left: 10 });
        reg.register_bolt("Count", move || CountBolt(Arc::clone(&counter)));
        reg
    }

    #[test]
    fn builds_and_runs_from_xml() {
        let counter = Arc::new(AtomicU64::new(0));
        let reg = registry(Arc::clone(&counter));
        let xml = r#"
            <topology name="t">
              <spout name="spout" class="OneShot" parallelism="1"/>
              <bolts>
                <bolt name="count" class="Count" parallelism="2">
                  <grouping type="field">
                    <fields>user</fields>
                  </grouping>
                </bolt>
              </bolts>
            </topology>"#;
        let topo = topology_from_xml(xml, &reg).unwrap();
        let handle = topo.launch();
        assert!(handle.wait_idle(std::time::Duration::from_secs(5)));
        handle.shutdown(std::time::Duration::from_secs(1));
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn implicit_source_chains_components() {
        let counter = Arc::new(AtomicU64::new(0));
        let reg = registry(Arc::clone(&counter));
        let xml = r#"
            <topology name="t">
              <spout name="s" class="OneShot"/>
              <bolt name="c" class="Count"/>
            </topology>"#;
        assert!(topology_from_xml(xml, &reg).is_ok());
    }

    #[test]
    fn unknown_class_rejected() {
        let reg = ComponentRegistry::new();
        let xml = r#"<topology><spout name="s" class="Ghost"/></topology>"#;
        assert!(matches!(
            topology_from_xml(xml, &reg),
            Err(ConfigError::UnknownClass(_))
        ));
    }

    #[test]
    fn missing_name_rejected() {
        let counter = Arc::new(AtomicU64::new(0));
        let reg = registry(counter);
        let xml = r#"<topology><spout class="OneShot"/></topology>"#;
        assert!(matches!(
            topology_from_xml(xml, &reg),
            Err(ConfigError::Missing { .. })
        ));
    }

    #[test]
    fn bad_grouping_type_rejected() {
        let counter = Arc::new(AtomicU64::new(0));
        let reg = registry(counter);
        let xml = r#"
            <topology>
              <spout name="s" class="OneShot"/>
              <bolt name="c" class="Count">
                <grouping type="mystery"/>
              </bolt>
            </topology>"#;
        assert!(matches!(
            topology_from_xml(xml, &reg),
            Err(ConfigError::BadGroupingType(_))
        ));
    }

    #[test]
    fn bad_parallelism_rejected() {
        let counter = Arc::new(AtomicU64::new(0));
        let reg = registry(counter);
        let xml = r#"<topology><spout name="s" class="OneShot" parallelism="lots"/></topology>"#;
        assert!(matches!(
            topology_from_xml(xml, &reg),
            Err(ConfigError::BadNumber { .. })
        ));
    }

    #[test]
    fn tick_interval_parsed() {
        let counter = Arc::new(AtomicU64::new(0));
        let reg = registry(counter);
        let xml = r#"
            <topology>
              <spout name="s" class="OneShot"/>
              <bolt name="c" class="Count">
                <tick_interval_ms>250</tick_interval_ms>
              </bolt>
            </topology>"#;
        assert!(topology_from_xml(xml, &reg).is_ok());
    }
}
