//! Batch-aware bounded MPSC channel for bolt input queues.
//!
//! The transport cost model this exists for: with a plain bounded channel
//! every tuple pays one lock acquisition and one condvar wake per hop.
//! Here a producer hands the queue a whole batch under a single lock and a
//! single wake, and the consumer drains up to a budget of messages per
//! lock. Capacity is accounted in *weight* units — a message's [`Weigh`]
//! value, which for bolt traffic is its tuple count — so backpressure
//! behaves exactly as it did pre-batching: a producer blocks once
//! `capacity` tuples are queued, however they were grouped into messages
//! in flight.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// How many capacity slots a message occupies. Batch messages weigh their
/// tuple count so that queue depth, backpressure, and drain budgets all
/// keep counting tuples regardless of how tuples are grouped in flight.
pub(crate) trait Weigh {
    fn weight(&self) -> usize {
        1
    }
}

/// Locks ignoring poisoning: a panicking bolt thread is already handled at
/// the executor layer (the bolt is rebuilt, the tree failed), so a poisoned
/// queue mutex carries no extra information.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

struct State<T> {
    buf: VecDeque<T>,
    /// Sum of `weight()` over `buf` (maintained incrementally; recomputing
    /// it would walk the queue under the lock).
    weight: usize,
    senders: usize,
    receiver_alive: bool,
}

/// Observability handles for one queue: current depth in weight units (set
/// under the queue mutex at every push/drain, so it is exact) and the
/// number of backpressure stall episodes (a producer arriving to a full
/// queue counts once per blocking send, not once per condvar wake).
#[derive(Clone)]
pub(crate) struct ChannelStats {
    pub(crate) depth: obs::Gauge,
    pub(crate) stalls: obs::Counter,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
    stats: Option<ChannelStats>,
}

impl<T> Shared<T> {
    #[inline]
    fn note_depth(&self, depth: usize) {
        if let Some(s) = &self.stats {
            s.depth.set(depth as f64);
        }
    }
}

/// Creates a bounded batch channel with `capacity` weight slots.
#[cfg(test)]
pub(crate) fn batch_channel<T>(capacity: usize) -> (BatchSender<T>, BatchReceiver<T>) {
    batch_channel_with_stats(capacity, None)
}

/// [`batch_channel`] with optional depth/stall instrumentation.
pub(crate) fn batch_channel_with_stats<T>(
    capacity: usize,
    stats: Option<ChannelStats>,
) -> (BatchSender<T>, BatchReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            weight: 0,
            senders: 1,
            receiver_alive: true,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        stats,
    });
    (
        BatchSender {
            shared: Arc::clone(&shared),
        },
        BatchReceiver { shared },
    )
}

/// The receiver dropped; carries the rejected message.
#[derive(Debug)]
pub(crate) struct SendError<T>(pub(crate) T);

/// The receiver dropped mid-batch; `undelivered` *weight units* (tuples)
/// were never enqueued (earlier chunks of the same batch may have been).
#[derive(Debug)]
pub(crate) struct SendBatchError {
    pub(crate) undelivered: usize,
}

/// Outcome of [`BatchReceiver::recv_batch`].
pub(crate) enum RecvBatch {
    /// `out` gained this many messages.
    Msgs(usize),
    /// Deadline passed with the queue still empty.
    TimedOut,
    /// Queue empty and every sender dropped.
    Disconnected,
}

pub(crate) struct BatchSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BatchSender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared.state).senders += 1;
        BatchSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for BatchSender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Lock released before notify: a receiver waking here must be
            // able to re-take the lock immediately.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T: Weigh> BatchSender<T> {
    /// Blocks until the queue has spare weight, then enqueues one message.
    /// A message heavier than the remaining capacity still enqueues whole
    /// (messages are indivisible); the queue briefly overshoots and
    /// producers block until the overshoot drains.
    pub(crate) fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.shared.state);
        let mut stalled = false;
        while st.weight >= self.shared.capacity {
            if !st.receiver_alive {
                return Err(SendError(msg));
            }
            if !stalled {
                stalled = true;
                if let Some(s) = &self.shared.stats {
                    s.stalls.inc();
                }
            }
            st = wait(&self.shared.not_full, st);
        }
        if !st.receiver_alive {
            return Err(SendError(msg));
        }
        st.weight += msg.weight();
        st.buf.push_back(msg);
        self.shared.note_depth(st.weight);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues a whole batch: one lock acquisition and one wake per chunk
    /// of free capacity, not per message. A batch heavier than the channel
    /// capacity is delivered in chunks as the consumer drains, so it can
    /// never deadlock against a small queue.
    pub(crate) fn send_batch(&self, msgs: Vec<T>) -> Result<(), SendBatchError> {
        let mut remaining_weight: usize = msgs.iter().map(Weigh::weight).sum();
        let mut it = msgs.into_iter().peekable();
        let mut stalled = false;
        while it.peek().is_some() {
            let mut st = lock(&self.shared.state);
            while st.weight >= self.shared.capacity {
                if !st.receiver_alive {
                    return Err(SendBatchError {
                        undelivered: remaining_weight,
                    });
                }
                if !stalled {
                    stalled = true;
                    if let Some(s) = &self.shared.stats {
                        s.stalls.inc();
                    }
                }
                st = wait(&self.shared.not_full, st);
            }
            if !st.receiver_alive {
                return Err(SendBatchError {
                    undelivered: remaining_weight,
                });
            }
            while st.weight < self.shared.capacity {
                let Some(msg) = it.next() else { break };
                let w = msg.weight();
                st.weight += w;
                remaining_weight -= w;
                st.buf.push_back(msg);
            }
            self.shared.note_depth(st.weight);
            drop(st);
            self.shared.not_empty.notify_one();
        }
        Ok(())
    }
}

pub(crate) struct BatchReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Drop for BatchReceiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.receiver_alive = false;
        drop(st);
        self.shared.not_full.notify_all();
    }
}

impl<T: Weigh> BatchReceiver<T> {
    /// Blocks until at least one message is available (or `deadline`
    /// passes, or all senders drop), then drains messages into `out` under
    /// a single lock until their summed weight reaches `max`. At least one
    /// message is always delivered, even when it alone exceeds the budget.
    pub(crate) fn recv_batch(
        &self,
        out: &mut Vec<T>,
        max: usize,
        deadline: Option<Instant>,
    ) -> RecvBatch {
        let mut st = lock(&self.shared.state);
        while st.buf.is_empty() {
            if st.senders == 0 {
                return RecvBatch::Disconnected;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return RecvBatch::TimedOut;
                    }
                    let (g, _res) = self
                        .shared
                        .not_empty
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = g;
                    // Loop re-checks emptiness and the deadline; a spurious
                    // or timed-out wake with data present still delivers.
                }
                None => st = wait(&self.shared.not_empty, st),
            }
        }
        let budget = max.max(1);
        let mut n = 0usize;
        let mut drained = 0usize;
        while let Some(front) = st.buf.front() {
            let w = front.weight();
            if n > 0 && drained + w > budget {
                break;
            }
            drained += w;
            n += 1;
            let msg = st.buf.pop_front().expect("front checked");
            out.push(msg);
            if drained >= budget {
                break;
            }
        }
        st.weight -= drained.min(st.weight);
        self.shared.note_depth(st.weight);
        drop(st);
        // Producers may be parked on distinct batches; wake them all and
        // let them race for the freed slots.
        self.shared.not_full.notify_all();
        RecvBatch::Msgs(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    impl Weigh for u32 {}

    /// Test message with an explicit weight, standing in for a tuple batch.
    #[derive(Debug, PartialEq)]
    struct Heavy(usize);
    impl Weigh for Heavy {
        fn weight(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn batch_roundtrip() {
        let (tx, rx) = batch_channel::<u32>(8);
        tx.send_batch((0..5).collect()).unwrap();
        let mut out = Vec::new();
        match rx.recv_batch(&mut out, 16, None) {
            RecvBatch::Msgs(5) => {}
            _ => panic!("expected 5 messages"),
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn oversized_batch_chunks_through_small_queue() {
        let (tx, rx) = batch_channel::<u32>(4);
        let producer = std::thread::spawn(move || tx.send_batch((0..100).collect()).unwrap());
        let mut got = Vec::new();
        while got.len() < 100 {
            match rx.recv_batch(&mut got, 8, None) {
                RecvBatch::Msgs(_) => {}
                _ => panic!("producer still alive"),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_counted_in_messages() {
        let (tx, rx) = batch_channel::<u32>(4);
        tx.send_batch(vec![1, 2, 3, 4]).unwrap();
        // A fifth message must block: capacity is per message, not per batch.
        let tx2 = tx.clone();
        let blocked = std::thread::spawn(move || tx2.send(5).is_ok());
        std::thread::sleep(Duration::from_millis(50));
        assert!(!blocked.is_finished(), "5th tuple must wait for a slot");
        let mut out = Vec::new();
        match rx.recv_batch(&mut out, 1, None) {
            RecvBatch::Msgs(1) => {}
            _ => panic!(),
        }
        assert!(blocked.join().unwrap());
        drop(tx);
        while let RecvBatch::Msgs(_) = rx.recv_batch(&mut out, 16, None) {}
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn capacity_counted_in_weight_units() {
        // Two 40-tuple batches fit a 64-slot queue only because messages
        // are indivisible (the second overshoots); a third must block.
        let (tx, rx) = batch_channel::<Heavy>(64);
        tx.send(Heavy(40)).unwrap();
        tx.send(Heavy(40)).unwrap();
        let tx2 = tx.clone();
        let blocked = std::thread::spawn(move || tx2.send(Heavy(1)).is_ok());
        std::thread::sleep(Duration::from_millis(50));
        assert!(!blocked.is_finished(), "queue is over weight capacity");
        // Drain budget is also in weight units: max=64 takes only the
        // first 40-tuple batch.
        let mut out = Vec::new();
        match rx.recv_batch(&mut out, 64, None) {
            RecvBatch::Msgs(1) => {}
            _ => panic!("expected exactly one heavy message"),
        }
        assert_eq!(out, vec![Heavy(40)]);
        assert!(blocked.join().unwrap());
        drop(tx);
        out.clear();
        while let RecvBatch::Msgs(_) = rx.recv_batch(&mut out, 1000, None) {}
        assert_eq!(out, vec![Heavy(40), Heavy(1)]);
    }

    #[test]
    fn deadline_times_out_then_delivers() {
        let (tx, rx) = batch_channel::<u32>(4);
        let mut out = Vec::new();
        let deadline = Instant::now() + Duration::from_millis(20);
        match rx.recv_batch(&mut out, 4, Some(deadline)) {
            RecvBatch::TimedOut => {}
            _ => panic!("expected timeout"),
        }
        tx.send(9).unwrap();
        match rx.recv_batch(&mut out, 4, Some(Instant::now() + Duration::from_secs(5))) {
            RecvBatch::Msgs(1) => {}
            _ => panic!("expected delivery"),
        }
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn stats_track_depth_and_stalls() {
        let stats = ChannelStats {
            depth: obs::Gauge::new(),
            stalls: obs::Counter::new(),
        };
        let (tx, rx) = batch_channel_with_stats::<u32>(2, Some(stats.clone()));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(stats.depth.get(), 2.0);
        assert_eq!(stats.stalls.get(), 0);
        let tx2 = tx.clone();
        let blocked = std::thread::spawn(move || tx2.send(3).is_ok());
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.stalls.get() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(stats.stalls.get(), 1, "one stall episode per blocked send");
        let mut out = Vec::new();
        match rx.recv_batch(&mut out, 16, None) {
            RecvBatch::Msgs(2) => {}
            _ => panic!("expected both queued messages"),
        }
        assert!(blocked.join().unwrap());
        while out.len() < 3 {
            match rx.recv_batch(&mut out, 16, None) {
                RecvBatch::Msgs(_) => {}
                _ => panic!("sender still alive"),
            }
        }
        assert_eq!(stats.depth.get(), 0.0, "drained queue reports depth 0");
        assert_eq!(stats.stalls.get(), 1, "unblocked send does not re-stall");
    }

    #[test]
    fn disconnect_wakes_receiver_and_senders() {
        let (tx, rx) = batch_channel::<u32>(2);
        let h = std::thread::spawn(move || {
            let mut out = Vec::new();
            matches!(rx.recv_batch(&mut out, 4, None), RecvBatch::Disconnected)
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert!(h.join().unwrap());

        let (tx, rx) = batch_channel::<u32>(1);
        tx.send(1).unwrap();
        let blocked = std::thread::spawn(move || tx.send_batch(vec![2, 3]));
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        let err = blocked.join().unwrap().unwrap_err();
        assert_eq!(err.undelivered, 2);
    }
}
