//! Automatic parallelism planning — the paper's first future-work item:
//! "the parallelism of the spouts and bolts in Storm topology is set
//! manually at present. It is desirable for TencentRec to set the
//! parallelism automatically according to the data size of specific
//! applications."
//!
//! The planner works from measured [`MetricsSnapshot`]s of a profiling
//! run: for each component it derives the *tuple amplification* (executed
//! tuples per source action) and the mean service time, then sizes the
//! task count so the component sustains a target source rate with
//! headroom:
//!
//! ```text
//! tasks(c) = ceil(target_rate · amplification(c) · service_time(c) · headroom)
//! ```

use crate::metrics::MetricsSnapshot;

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Capacity multiplier above the bare requirement (absorbs bursts;
    /// the paper's peak-to-average ratio motivates ≥ 1.5).
    pub headroom: f64,
    /// Lower bound per component.
    pub min_tasks: usize,
    /// Upper bound per component (machine core budget).
    pub max_tasks: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            headroom: 1.5,
            min_tasks: 1,
            max_tasks: 64,
        }
    }
}

/// A component's sizing decision and the numbers behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPlan {
    /// Component name.
    pub component: String,
    /// Executed tuples per source action observed in the profile.
    pub amplification: f64,
    /// Mean service time per tuple, seconds.
    pub service_time_s: f64,
    /// Recommended task count.
    pub tasks: usize,
}

/// A full parallelism plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelismPlan {
    /// Source rate the plan is sized for (actions per second).
    pub target_rate: f64,
    /// Per-component decisions.
    pub components: Vec<ComponentPlan>,
}

impl ParallelismPlan {
    /// Recommended task count for one component (`None` if the component
    /// was not in the profile).
    pub fn tasks_for(&self, component: &str) -> Option<usize> {
        self.components
            .iter()
            .find(|c| c.component == component)
            .map(|c| c.tasks)
    }

    /// Total tasks across the topology.
    pub fn total_tasks(&self) -> usize {
        self.components.iter().map(|c| c.tasks).sum()
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The named source component is missing from the metrics.
    UnknownSource(String),
    /// The profile has no executed source tuples to normalise by.
    EmptyProfile,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownSource(s) => write!(f, "source component `{s}` not in metrics"),
            PlanError::EmptyProfile => write!(f, "profile contains no source tuples"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans parallelism from a profiling run's metrics.
///
/// `source` names the spout whose `executed` count defines "one action";
/// `target_rate` is the production rate (actions/second) to size for.
pub fn plan_from_metrics(
    metrics: &[MetricsSnapshot],
    source: &str,
    target_rate: f64,
    config: &PlannerConfig,
) -> Result<ParallelismPlan, PlanError> {
    let source_snapshot = metrics
        .iter()
        .find(|m| m.component == source)
        .ok_or_else(|| PlanError::UnknownSource(source.to_string()))?;
    let source_actions = source_snapshot.executed as f64;
    if source_actions <= 0.0 {
        return Err(PlanError::EmptyProfile);
    }
    let components = metrics
        .iter()
        .map(|m| {
            let amplification = m.executed as f64 / source_actions;
            let service_time_s = m.mean_exec_micros() / 1e6;
            let required = target_rate * amplification * service_time_s * config.headroom;
            let tasks = (required.ceil() as usize)
                .max(config.min_tasks)
                .min(config.max_tasks);
            ComponentPlan {
                component: m.component.clone(),
                amplification,
                service_time_s,
                tasks,
            }
        })
        .collect();
    Ok(ParallelismPlan {
        target_rate,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(component: &str, executed: u64, exec_nanos: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            component: component.to_string(),
            emitted: executed,
            executed,
            acked: executed,
            failed: 0,
            exec_nanos,
            exec_latency: Default::default(),
        }
    }

    #[test]
    fn sizes_scale_with_cost_and_amplification() {
        // 10k source actions; history executes 10k at 2µs; pairs execute
        // 50k (5x amplification) at 10µs.
        let metrics = vec![
            snapshot("spout", 10_000, 10_000 * 1_000),
            snapshot("history", 10_000, 10_000 * 2_000),
            snapshot("pairs", 50_000, 50_000 * 10_000),
        ];
        let plan = plan_from_metrics(
            &metrics,
            "spout",
            100_000.0,
            &PlannerConfig {
                headroom: 1.0,
                min_tasks: 1,
                max_tasks: 1_000,
            },
        )
        .unwrap();
        // history: 100k/s × 1 × 2µs = 0.2 cores → 1 task.
        assert_eq!(plan.tasks_for("history"), Some(1));
        // pairs: 100k/s × 5 × 10µs = 5 cores → 5 tasks.
        assert_eq!(plan.tasks_for("pairs"), Some(5));
        assert!(plan.total_tasks() >= 7);
    }

    #[test]
    fn headroom_multiplies() {
        let metrics = vec![snapshot("spout", 1_000, 1_000 * 10_000)]; // 10µs
        let base = plan_from_metrics(
            &metrics,
            "spout",
            200_000.0,
            &PlannerConfig {
                headroom: 1.0,
                min_tasks: 1,
                max_tasks: 100,
            },
        )
        .unwrap();
        let padded = plan_from_metrics(
            &metrics,
            "spout",
            200_000.0,
            &PlannerConfig {
                headroom: 2.0,
                min_tasks: 1,
                max_tasks: 100,
            },
        )
        .unwrap();
        assert_eq!(base.tasks_for("spout"), Some(2));
        assert_eq!(padded.tasks_for("spout"), Some(4));
    }

    #[test]
    fn bounds_respected() {
        let metrics = vec![
            snapshot("spout", 1_000, 1_000),            // ~free
            snapshot("heavy", 1_000_000, u64::MAX / 2), // absurdly slow
        ];
        let plan = plan_from_metrics(
            &metrics,
            "spout",
            1e6,
            &PlannerConfig {
                headroom: 1.5,
                min_tasks: 2,
                max_tasks: 16,
            },
        )
        .unwrap();
        assert_eq!(plan.tasks_for("spout"), Some(2), "min bound");
        assert_eq!(plan.tasks_for("heavy"), Some(16), "max bound");
    }

    #[test]
    fn unknown_source_rejected() {
        assert_eq!(
            plan_from_metrics(&[], "ghost", 1.0, &PlannerConfig::default()),
            Err(PlanError::UnknownSource("ghost".to_string()))
        );
    }

    #[test]
    fn empty_profile_rejected() {
        let metrics = vec![snapshot("spout", 0, 0)];
        assert_eq!(
            plan_from_metrics(&metrics, "spout", 1.0, &PlannerConfig::default()),
            Err(PlanError::EmptyProfile)
        );
    }
}
