//! Data tuples flowing through a topology.
//!
//! A [`Tuple`] is a named list of [`Value`]s. The field names live in a
//! shared [`Schema`] so that cloning a tuple (which happens on every fan-out
//! edge) never copies the field-name strings.
//!
//! Tuples are carried in *batch arenas*: the emit path accumulates the
//! values of consecutive tuples bound for the same consumer task in one
//! [`BatchShared`] buffer, and every tuple of the batch is a `(start, len)`
//! window into it plus its own anchor set. One `Arc` bump materializes a
//! tuple out of a batch; the per-tuple schema/stream/source handles of the
//! old layout (four `Arc` clones and a fresh `Arc<[Value]>` per tuple) are
//! shared batch-wide instead.

use std::fmt;
use std::sync::Arc;

/// A dynamically typed value carried inside a [`Tuple`].
///
/// Strings are reference counted so that cloning a tuple along a broadcast
/// edge is cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 64-bit integer (ids).
    U64(u64),
    /// 64-bit float (weights, scores).
    F64(f64),
    /// Shared immutable string.
    Str(Arc<str>),
}

impl Value {
    /// Returns the value as `u64` if it is an integer of either sign that
    /// fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Returns the value as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Feeds the value into `h` for grouping purposes. `F64` is hashed by
    /// bit pattern; `I64`/`U64` hash identically when they represent the
    /// same non-negative number so that mixed-width ids group together.
    pub fn hash_into(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        match self {
            Value::Null => 0u8.hash(h),
            Value::Bool(b) => {
                1u8.hash(h);
                b.hash(h);
            }
            Value::I64(v) => {
                if *v >= 0 {
                    2u8.hash(h);
                    (*v as u64).hash(h);
                } else {
                    3u8.hash(h);
                    v.hash(h);
                }
            }
            Value::U64(v) => {
                2u8.hash(h);
                v.hash(h);
            }
            Value::F64(v) => {
                4u8.hash(h);
                v.to_bits().hash(h);
            }
            Value::Str(s) => {
                5u8.hash(h);
                s.as_bytes().hash(h);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

/// An ordered list of field names shared between all tuples of one output
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[String]>,
}

impl Schema {
    /// Builds a schema from field names.
    pub fn new<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema {
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// Position of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// Field names in declaration order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// A cheap identity token for this schema's shared field table: two
    /// schemas cloned from the same declaration share it. Bolts use it to
    /// cache resolved field indices across tuples (see
    /// `tencentrec`'s `FieldIndex`) without re-scanning names.
    pub fn identity(&self) -> usize {
        Arc::as_ptr(&self.fields) as *const u8 as usize
    }
}

/// Identifies an output stream of a component. Components may emit on
/// multiple named streams; `"default"` is used when none is specified.
pub const DEFAULT_STREAM: &str = "default";

/// Anchor bookkeeping for the XOR ack tracker: the `(root id, edge id)`
/// pairs a tuple is tied to. The overwhelmingly common cases — untracked
/// (zero pairs) and a single tracked root — are stored inline; only
/// multi-root tuples (batch-path unions, fan-in joins) pay an allocation.
#[derive(Debug, Clone, Default)]
pub enum AnchorSet {
    /// Untracked tuple: no ack bookkeeping.
    #[default]
    None,
    /// Tracked under exactly one root (the spout fast path).
    One((u64, u64)),
    /// Tracked under several roots.
    Many(Arc<[(u64, u64)]>),
}

impl AnchorSet {
    /// The anchor pairs as a slice.
    pub fn pairs(&self) -> &[(u64, u64)] {
        match self {
            AnchorSet::None => &[],
            AnchorSet::One(p) => std::slice::from_ref(p),
            AnchorSet::Many(ps) => ps,
        }
    }

    /// Builds the smallest representation of `pairs`.
    pub fn from_pairs(pairs: Vec<(u64, u64)>) -> Self {
        match pairs.len() {
            0 => AnchorSet::None,
            1 => AnchorSet::One(pairs[0]),
            _ => AnchorSet::Many(pairs.into()),
        }
    }

    /// Number of anchor pairs.
    pub fn len(&self) -> usize {
        self.pairs().len()
    }

    /// True when the tuple is untracked.
    pub fn is_empty(&self) -> bool {
        matches!(self, AnchorSet::None)
    }
}

impl FromIterator<(u64, u64)> for AnchorSet {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut it = iter.into_iter();
        let Some(first) = it.next() else {
            return AnchorSet::None;
        };
        let Some(second) = it.next() else {
            return AnchorSet::One(first);
        };
        let mut pairs = vec![first, second];
        pairs.extend(it);
        AnchorSet::Many(pairs.into())
    }
}

/// The parts of a tuple batch shared by every tuple in it: one value arena
/// plus the schema/stream/source handles that used to be cloned per tuple.
#[derive(Debug)]
pub(crate) struct BatchShared {
    /// Concatenated field values of every tuple in the batch.
    pub(crate) values: Box<[Value]>,
    /// Schema of the stream the batch was emitted on.
    pub(crate) schema: Schema,
    /// Stream id.
    pub(crate) stream: Arc<str>,
    /// Emitting component.
    pub(crate) src_component: Arc<str>,
    /// Emitting task index.
    pub(crate) src_task: usize,
}

/// A unit of data flowing along a stream: a window into its batch's value
/// arena plus its own anchors. Cloning bumps one `Arc`.
#[derive(Clone)]
pub struct Tuple {
    pub(crate) shared: Arc<BatchShared>,
    pub(crate) start: u32,
    pub(crate) len: u32,
    pub(crate) anchors: AnchorSet,
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuple")
            .field("values", &self.values())
            .field("stream", &self.stream())
            .field("src_component", &self.src_component())
            .field("src_task", &self.src_task())
            .field("anchors", &self.anchors)
            .finish()
    }
}

impl Tuple {
    /// Builds a standalone single-tuple batch. This is the slow
    /// constructor (one arena allocation per tuple) used by tests;
    /// runtime tuples go through the collector's arenas.
    #[cfg(test)]
    pub(crate) fn new(
        values: Vec<Value>,
        schema: Schema,
        stream: Arc<str>,
        src_component: Arc<str>,
        src_task: usize,
        anchors: AnchorSet,
    ) -> Self {
        debug_assert_eq!(
            values.len(),
            schema.len(),
            "tuple arity must match stream schema"
        );
        let len = values.len() as u32;
        Tuple {
            shared: Arc::new(BatchShared {
                values: values.into_boxed_slice(),
                schema,
                stream,
                src_component,
                src_task,
            }),
            start: 0,
            len,
            anchors,
        }
    }

    /// Builds a standalone, unanchored single-tuple batch — the slow
    /// constructor (one arena allocation per tuple) for unit-testing
    /// bolts outside the runtime. Runtime tuples go through the
    /// collector's shared arenas.
    pub fn standalone(
        stream: &str,
        schema: Schema,
        src_component: &str,
        src_task: usize,
        values: Vec<Value>,
    ) -> Self {
        debug_assert_eq!(
            values.len(),
            schema.len(),
            "tuple arity must match stream schema"
        );
        let len = values.len() as u32;
        Tuple {
            shared: Arc::new(BatchShared {
                values: values.into_boxed_slice(),
                schema,
                stream: stream.into(),
                src_component: src_component.into(),
                src_task,
            }),
            start: 0,
            len,
            anchors: AnchorSet::None,
        }
    }

    /// Materializes the window `[start, start + len)` of a shared batch.
    #[inline]
    pub(crate) fn from_batch(
        shared: &Arc<BatchShared>,
        start: u32,
        len: u32,
        anchors: AnchorSet,
    ) -> Self {
        debug_assert!((start + len) as usize <= shared.values.len());
        Tuple {
            shared: Arc::clone(shared),
            start,
            len,
            anchors,
        }
    }

    /// Value at position `idx`. Panics when out of range.
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values()[idx]
    }

    /// Value of the field called `name`, if the schema declares it.
    pub fn get_by_name(&self, name: &str) -> Option<&Value> {
        self.shared.schema.index_of(name).map(|i| &self.values()[i])
    }

    /// Convenience: required `u64` field.
    pub fn u64(&self, name: &str) -> u64 {
        self.get_by_name(name)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("tuple field `{name}` missing or not a u64: {self:?}"))
    }

    /// Convenience: required `f64` field.
    pub fn f64(&self, name: &str) -> f64 {
        self.get_by_name(name)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("tuple field `{name}` missing or not an f64: {self:?}"))
    }

    /// Convenience: required string field.
    pub fn str(&self, name: &str) -> &str {
        self.get_by_name(name)
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("tuple field `{name}` missing or not a string: {self:?}"))
    }

    /// Required `u64` field by position — the no-scan accessor for bolts
    /// that cache resolved field indices (see [`Schema::identity`]).
    #[inline]
    pub fn u64_at(&self, idx: usize) -> u64 {
        self.values()[idx]
            .as_u64()
            .unwrap_or_else(|| panic!("tuple field #{idx} not a u64: {self:?}"))
    }

    /// Required `f64` field by position (integers widen).
    #[inline]
    pub fn f64_at(&self, idx: usize) -> f64 {
        self.values()[idx]
            .as_f64()
            .unwrap_or_else(|| panic!("tuple field #{idx} not an f64: {self:?}"))
    }

    /// All values in order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.shared.values[self.start as usize..(self.start + self.len) as usize]
    }

    /// The stream this tuple was emitted on.
    pub fn stream(&self) -> &str {
        &self.shared.stream
    }

    /// The component that emitted this tuple.
    pub fn src_component(&self) -> &str {
        &self.shared.src_component
    }

    /// The task index (within the source component) that emitted this tuple.
    pub fn src_task(&self) -> usize {
        self.shared.src_task
    }

    /// The tuple's schema.
    pub fn schema(&self) -> &Schema {
        &self.shared.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;

    fn hash_value(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash_into(&mut h);
        h.finish()
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u64).as_u64(), Some(3));
        assert_eq!(Value::from(-3i64).as_u64(), None);
        assert_eq!(Value::from(3i64).as_u64(), Some(3));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from(7u64).as_f64(), Some(7.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_u64(), None);
    }

    #[test]
    fn mixed_width_ids_hash_identically() {
        assert_eq!(hash_value(&Value::I64(42)), hash_value(&Value::U64(42)));
        assert_ne!(hash_value(&Value::I64(-42)), hash_value(&Value::U64(42)));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(["user", "item", "action"]);
        assert_eq!(s.index_of("item"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn schema_identity_shared_by_clones() {
        let s = Schema::new(["a", "b"]);
        let t = s.clone();
        assert_eq!(s.identity(), t.identity());
        let other = Schema::new(["a", "b"]);
        assert_ne!(
            s.identity(),
            other.identity(),
            "independent declarations get distinct identities"
        );
    }

    #[test]
    fn anchor_set_representations() {
        assert_eq!(AnchorSet::None.pairs(), &[]);
        assert!(AnchorSet::None.is_empty());
        let one = AnchorSet::One((1, 2));
        assert_eq!(one.pairs(), &[(1, 2)]);
        assert_eq!(one.len(), 1);
        let many = AnchorSet::from_pairs(vec![(1, 2), (3, 4)]);
        assert_eq!(many.pairs(), &[(1, 2), (3, 4)]);
        assert!(matches!(
            AnchorSet::from_pairs(vec![(9, 9)]),
            AnchorSet::One((9, 9))
        ));
        assert!(matches!(AnchorSet::from_pairs(Vec::new()), AnchorSet::None));
        let collected: AnchorSet = [(5u64, 6u64)].into_iter().collect();
        assert!(matches!(collected, AnchorSet::One((5, 6))));
    }

    #[test]
    fn tuple_field_access() {
        let schema = Schema::new(["user", "weight", "kind"]);
        let t = Tuple::new(
            vec![Value::U64(9), Value::F64(1.5), Value::from("click")],
            schema,
            Arc::from(DEFAULT_STREAM),
            Arc::from("spout"),
            0,
            AnchorSet::None,
        );
        assert_eq!(t.u64("user"), 9);
        assert_eq!(t.f64("weight"), 1.5);
        assert_eq!(t.str("kind"), "click");
        assert_eq!(t.u64_at(0), 9);
        assert_eq!(t.f64_at(1), 1.5);
        assert_eq!(t.stream(), DEFAULT_STREAM);
        assert_eq!(t.src_component(), "spout");
        assert_eq!(t.get(0), &Value::U64(9));
        assert!(t.get_by_name("nope").is_none());
    }

    #[test]
    fn batch_windows_share_one_arena() {
        let shared = Arc::new(BatchShared {
            values: vec![Value::U64(1), Value::U64(10), Value::U64(2), Value::U64(20)]
                .into_boxed_slice(),
            schema: Schema::new(["k", "v"]),
            stream: Arc::from(DEFAULT_STREAM),
            src_component: Arc::from("spout"),
            src_task: 3,
        });
        let a = Tuple::from_batch(&shared, 0, 2, AnchorSet::One((7, 8)));
        let b = Tuple::from_batch(&shared, 2, 2, AnchorSet::None);
        assert_eq!(a.u64("k"), 1);
        assert_eq!(b.u64("v"), 20);
        assert_eq!(a.src_task(), 3);
        assert_eq!(a.anchors.pairs(), &[(7, 8)]);
        assert_eq!(Arc::strong_count(&shared), 3);
    }

    #[test]
    #[should_panic(expected = "missing or not a u64")]
    fn tuple_typed_access_panics_on_wrong_type() {
        let t = Tuple::new(
            vec![Value::from("x")],
            Schema::new(["user"]),
            Arc::from(DEFAULT_STREAM),
            Arc::from("spout"),
            0,
            AnchorSet::None,
        );
        t.u64("user");
    }
}
