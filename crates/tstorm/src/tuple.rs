//! Data tuples flowing through a topology.
//!
//! A [`Tuple`] is a named list of [`Value`]s. The field names live in a
//! shared [`Schema`] so that cloning a tuple (which happens on every fan-out
//! edge) never copies the field-name strings.

use std::fmt;
use std::sync::Arc;

/// A dynamically typed value carried inside a [`Tuple`].
///
/// Strings are reference counted so that cloning a tuple along a broadcast
/// edge is cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 64-bit integer (ids).
    U64(u64),
    /// 64-bit float (weights, scores).
    F64(f64),
    /// Shared immutable string.
    Str(Arc<str>),
}

impl Value {
    /// Returns the value as `u64` if it is an integer of either sign that
    /// fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Returns the value as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Feeds the value into `h` for grouping purposes. `F64` is hashed by
    /// bit pattern; `I64`/`U64` hash identically when they represent the
    /// same non-negative number so that mixed-width ids group together.
    pub fn hash_into(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        match self {
            Value::Null => 0u8.hash(h),
            Value::Bool(b) => {
                1u8.hash(h);
                b.hash(h);
            }
            Value::I64(v) => {
                if *v >= 0 {
                    2u8.hash(h);
                    (*v as u64).hash(h);
                } else {
                    3u8.hash(h);
                    v.hash(h);
                }
            }
            Value::U64(v) => {
                2u8.hash(h);
                v.hash(h);
            }
            Value::F64(v) => {
                4u8.hash(h);
                v.to_bits().hash(h);
            }
            Value::Str(s) => {
                5u8.hash(h);
                s.as_bytes().hash(h);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

/// An ordered list of field names shared between all tuples of one output
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[String]>,
}

impl Schema {
    /// Builds a schema from field names.
    pub fn new<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema {
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// Position of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f == name)
    }

    /// Field names in declaration order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// Identifies an output stream of a component. Components may emit on
/// multiple named streams; `"default"` is used when none is specified.
pub const DEFAULT_STREAM: &str = "default";

/// Anchor bookkeeping for the XOR ack tracker: `(root id, edge id)` pairs
/// this tuple is tied to.
pub type Anchors = Arc<[(u64, u64)]>;

/// A unit of data flowing along a stream.
#[derive(Debug, Clone)]
pub struct Tuple {
    values: Arc<[Value]>,
    schema: Schema,
    stream: Arc<str>,
    src_component: Arc<str>,
    src_task: usize,
    pub(crate) anchors: Anchors,
}

impl Tuple {
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(
        values: Vec<Value>,
        schema: Schema,
        stream: Arc<str>,
        src_component: Arc<str>,
        src_task: usize,
        anchors: Anchors,
    ) -> Self {
        debug_assert_eq!(
            values.len(),
            schema.len(),
            "tuple arity must match stream schema"
        );
        Tuple {
            values: values.into(),
            schema,
            stream,
            src_component,
            src_task,
            anchors,
        }
    }

    /// Constructor sharing an already-built value slice (the emit fast
    /// path: fan-out deliveries share one `Arc<[Value]>`).
    pub(crate) fn from_parts(
        values: Arc<[Value]>,
        schema: Schema,
        stream: Arc<str>,
        src_component: Arc<str>,
        src_task: usize,
        anchors: Anchors,
    ) -> Self {
        debug_assert_eq!(values.len(), schema.len());
        Tuple {
            values,
            schema,
            stream,
            src_component,
            src_task,
            anchors,
        }
    }

    /// Value at position `idx`. Panics when out of range.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Value of the field called `name`, if the schema declares it.
    pub fn get_by_name(&self, name: &str) -> Option<&Value> {
        self.schema.index_of(name).map(|i| &self.values[i])
    }

    /// Convenience: required `u64` field.
    pub fn u64(&self, name: &str) -> u64 {
        self.get_by_name(name)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("tuple field `{name}` missing or not a u64: {self:?}"))
    }

    /// Convenience: required `f64` field.
    pub fn f64(&self, name: &str) -> f64 {
        self.get_by_name(name)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("tuple field `{name}` missing or not an f64: {self:?}"))
    }

    /// Convenience: required string field.
    pub fn str(&self, name: &str) -> &str {
        self.get_by_name(name)
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("tuple field `{name}` missing or not a string: {self:?}"))
    }

    /// All values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The stream this tuple was emitted on.
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// The component that emitted this tuple.
    pub fn src_component(&self) -> &str {
        &self.src_component
    }

    /// The task index (within the source component) that emitted this tuple.
    pub fn src_task(&self) -> usize {
        self.src_task
    }

    /// The tuple's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;

    fn hash_value(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash_into(&mut h);
        h.finish()
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u64).as_u64(), Some(3));
        assert_eq!(Value::from(-3i64).as_u64(), None);
        assert_eq!(Value::from(3i64).as_u64(), Some(3));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from(7u64).as_f64(), Some(7.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_u64(), None);
    }

    #[test]
    fn mixed_width_ids_hash_identically() {
        assert_eq!(hash_value(&Value::I64(42)), hash_value(&Value::U64(42)));
        assert_ne!(hash_value(&Value::I64(-42)), hash_value(&Value::U64(42)));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(["user", "item", "action"]);
        assert_eq!(s.index_of("item"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn tuple_field_access() {
        let schema = Schema::new(["user", "weight", "kind"]);
        let t = Tuple::new(
            vec![Value::U64(9), Value::F64(1.5), Value::from("click")],
            schema,
            Arc::from(DEFAULT_STREAM),
            Arc::from("spout"),
            0,
            Arc::from(Vec::new()),
        );
        assert_eq!(t.u64("user"), 9);
        assert_eq!(t.f64("weight"), 1.5);
        assert_eq!(t.str("kind"), "click");
        assert_eq!(t.stream(), DEFAULT_STREAM);
        assert_eq!(t.src_component(), "spout");
        assert_eq!(t.get(0), &Value::U64(9));
        assert!(t.get_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "missing or not a u64")]
    fn tuple_typed_access_panics_on_wrong_type() {
        let t = Tuple::new(
            vec![Value::from("x")],
            Schema::new(["user"]),
            Arc::from(DEFAULT_STREAM),
            Arc::from("spout"),
            0,
            Arc::from(Vec::new()),
        );
        t.u64("user");
    }
}
