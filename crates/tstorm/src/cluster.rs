//! Simulated cluster model: Nimbus, Supervisors and worker slots (the
//! paper's Fig. 1).
//!
//! The executor in this crate runs everything in one process, but the
//! placement and failure-recovery *logic* of a Storm cluster is modelled
//! here so it can be tested: Nimbus assigns tasks to supervisor slots,
//! keeps all state in a coordination store ("zookeeper"), and is fail-fast —
//! killing and restarting Nimbus loses nothing, and supervisor failures
//! trigger reassignment of only the affected tasks.

use std::collections::BTreeMap;

/// Identifier of a supervisor node.
pub type SupervisorId = u32;

/// A logical task: `(component, task_index)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// Component name in the topology.
    pub component: String,
    /// Task index within the component.
    pub index: usize,
}

/// A supervisor with a fixed number of worker slots.
#[derive(Debug, Clone)]
pub struct Supervisor {
    /// Node identifier.
    pub id: SupervisorId,
    /// Worker slots this node offers.
    pub slots: usize,
    /// Whether the node is currently up.
    pub alive: bool,
}

/// The replicated coordination state ("zookeeper"): survives Nimbus
/// restarts by construction.
#[derive(Debug, Clone, Default)]
pub struct CoordinationStore {
    /// Registered supervisors.
    pub supervisors: BTreeMap<SupervisorId, Supervisor>,
    /// Current task → supervisor assignment.
    pub assignments: BTreeMap<TaskId, SupervisorId>,
    /// Declared topology: component name → parallelism.
    pub topology: BTreeMap<String, usize>,
}

/// Errors from cluster scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Total alive slots are fewer than total tasks.
    InsufficientCapacity {
        /// Tasks that need placement.
        tasks: usize,
        /// Alive worker slots available.
        slots: usize,
    },
    /// The supervisor id is not registered.
    UnknownSupervisor(SupervisorId),
}

/// The master scheduler. Nimbus itself is stateless: all decisions are
/// written to (and on restart recovered from) the [`CoordinationStore`].
pub struct Nimbus {
    store: CoordinationStore,
}

impl Nimbus {
    /// Fresh cluster with no supervisors.
    pub fn new() -> Self {
        Nimbus {
            store: CoordinationStore::default(),
        }
    }

    /// "Restarts" Nimbus from coordination state — the fail-fast property:
    /// a recovered Nimbus is indistinguishable from the original.
    pub fn recover(store: CoordinationStore) -> Self {
        Nimbus { store }
    }

    /// Read access to the coordination state.
    pub fn store(&self) -> &CoordinationStore {
        &self.store
    }

    /// Registers a supervisor with `slots` worker slots.
    pub fn add_supervisor(&mut self, id: SupervisorId, slots: usize) {
        self.store.supervisors.insert(
            id,
            Supervisor {
                id,
                slots,
                alive: true,
            },
        );
    }

    /// Declares (or replaces) the topology and assigns every task.
    pub fn submit_topology(
        &mut self,
        components: impl IntoIterator<Item = (String, usize)>,
    ) -> Result<(), ClusterError> {
        self.store.topology = components.into_iter().collect();
        self.store.assignments.clear();
        self.schedule_unassigned()
    }

    fn all_tasks(&self) -> Vec<TaskId> {
        self.store
            .topology
            .iter()
            .flat_map(|(c, &p)| {
                (0..p).map(move |i| TaskId {
                    component: c.clone(),
                    index: i,
                })
            })
            .collect()
    }

    fn capacity(&self) -> usize {
        self.store
            .supervisors
            .values()
            .filter(|s| s.alive)
            .map(|s| s.slots)
            .sum()
    }

    fn load(&self, id: SupervisorId) -> usize {
        self.store
            .assignments
            .values()
            .filter(|&&s| s == id)
            .count()
    }

    /// Assigns every currently unassigned task to the least-loaded alive
    /// supervisor with free slots.
    fn schedule_unassigned(&mut self) -> Result<(), ClusterError> {
        let tasks = self.all_tasks();
        let unassigned: Vec<TaskId> = tasks
            .into_iter()
            .filter(|t| !self.store.assignments.contains_key(t))
            .collect();
        let assigned = self.store.assignments.len();
        if assigned + unassigned.len() > self.capacity() {
            return Err(ClusterError::InsufficientCapacity {
                tasks: assigned + unassigned.len(),
                slots: self.capacity(),
            });
        }
        for task in unassigned {
            let target = self
                .store
                .supervisors
                .values()
                .filter(|s| s.alive && self.load(s.id) < s.slots)
                .min_by_key(|s| (self.load(s.id), s.id))
                .expect("capacity checked above")
                .id;
            self.store.assignments.insert(task, target);
        }
        Ok(())
    }

    /// Marks a supervisor dead and reassigns only its tasks.
    /// Returns the reassigned tasks.
    pub fn fail_supervisor(&mut self, id: SupervisorId) -> Result<Vec<TaskId>, ClusterError> {
        let sup = self
            .store
            .supervisors
            .get_mut(&id)
            .ok_or(ClusterError::UnknownSupervisor(id))?;
        sup.alive = false;
        let orphaned: Vec<TaskId> = self
            .store
            .assignments
            .iter()
            .filter(|(_, &s)| s == id)
            .map(|(t, _)| t.clone())
            .collect();
        for t in &orphaned {
            self.store.assignments.remove(t);
        }
        self.schedule_unassigned()?;
        Ok(orphaned)
    }

    /// Brings a supervisor back (its old tasks stay where they were moved).
    pub fn revive_supervisor(&mut self, id: SupervisorId) -> Result<(), ClusterError> {
        let sup = self
            .store
            .supervisors
            .get_mut(&id)
            .ok_or(ClusterError::UnknownSupervisor(id))?;
        sup.alive = true;
        Ok(())
    }

    /// Full rebalance: clears assignments and reschedules everything so
    /// load is spread over all alive supervisors.
    pub fn rebalance(&mut self) -> Result<(), ClusterError> {
        self.store.assignments.clear();
        self.schedule_unassigned()
    }

    /// Checks scheduling invariants: every task assigned exactly once, no
    /// dead supervisor holds tasks, no supervisor exceeds its slots, and
    /// load imbalance between alive supervisors is at most their slot
    /// difference + 1.
    pub fn check_invariants(&self) -> Result<(), String> {
        let tasks = self.all_tasks();
        for t in &tasks {
            match self.store.assignments.get(t) {
                None => return Err(format!("task {t:?} unassigned")),
                Some(s) => {
                    let sup = self
                        .store
                        .supervisors
                        .get(s)
                        .ok_or(format!("task {t:?} on unknown supervisor {s}"))?;
                    if !sup.alive {
                        return Err(format!("task {t:?} on dead supervisor {s}"));
                    }
                }
            }
        }
        if self.store.assignments.len() != tasks.len() {
            return Err("stale assignments for removed tasks".to_string());
        }
        for sup in self.store.supervisors.values() {
            let load = self.load(sup.id);
            if load > sup.slots {
                return Err(format!(
                    "supervisor {} over capacity: {load}/{}",
                    sup.id, sup.slots
                ));
            }
        }
        Ok(())
    }
}

impl Default for Nimbus {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(slots: &[usize]) -> Nimbus {
        let mut n = Nimbus::new();
        for (i, &s) in slots.iter().enumerate() {
            n.add_supervisor(i as SupervisorId, s);
        }
        n
    }

    fn topo() -> Vec<(String, usize)> {
        vec![
            ("spout".to_string(), 2),
            ("cf".to_string(), 4),
            ("store".to_string(), 2),
        ]
    }

    #[test]
    fn submit_assigns_all_tasks() {
        let mut n = cluster(&[4, 4, 4]);
        n.submit_topology(topo()).unwrap();
        n.check_invariants().unwrap();
        assert_eq!(n.store().assignments.len(), 8);
    }

    #[test]
    fn balanced_assignment() {
        let mut n = cluster(&[8, 8]);
        n.submit_topology(topo()).unwrap();
        let l0 = n.load(0);
        let l1 = n.load(1);
        assert!((l0 as i64 - l1 as i64).abs() <= 1, "{l0} vs {l1}");
    }

    #[test]
    fn insufficient_capacity_rejected() {
        let mut n = cluster(&[3, 3]);
        let err = n.submit_topology(topo()).unwrap_err();
        assert_eq!(
            err,
            ClusterError::InsufficientCapacity { tasks: 8, slots: 6 }
        );
    }

    #[test]
    fn supervisor_failure_reassigns_only_orphans() {
        let mut n = cluster(&[4, 4, 4]);
        n.submit_topology(topo()).unwrap();
        let before = n.store().assignments.clone();
        let orphans = n.fail_supervisor(1).unwrap();
        n.check_invariants().unwrap();
        for (task, sup) in &n.store().assignments {
            if !orphans.contains(task) {
                assert_eq!(before[task], *sup, "non-orphan task moved: {task:?}");
            } else {
                assert_ne!(*sup, 1);
            }
        }
    }

    #[test]
    fn failure_without_spare_capacity_errors() {
        let mut n = cluster(&[4, 4]);
        n.submit_topology(topo()).unwrap();
        assert!(matches!(
            n.fail_supervisor(0),
            Err(ClusterError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn nimbus_restart_recovers_state() {
        let mut n = cluster(&[4, 4, 4]);
        n.submit_topology(topo()).unwrap();
        let snapshot = n.store().clone();
        // Nimbus "dies"; a new one recovers from coordination state.
        let recovered = Nimbus::recover(snapshot);
        recovered.check_invariants().unwrap();
        assert_eq!(recovered.store().assignments, n.store().assignments);
    }

    #[test]
    fn revive_and_rebalance_uses_new_capacity() {
        let mut n = cluster(&[8, 8]);
        n.submit_topology(topo()).unwrap();
        n.fail_supervisor(0).unwrap();
        assert_eq!(n.load(1), 8);
        n.revive_supervisor(0).unwrap();
        n.rebalance().unwrap();
        n.check_invariants().unwrap();
        assert!(n.load(0) >= 3, "rebalance should move tasks back");
    }

    #[test]
    fn unknown_supervisor_errors() {
        let mut n = cluster(&[4]);
        assert_eq!(
            n.fail_supervisor(9),
            Err(ClusterError::UnknownSupervisor(9))
        );
        assert_eq!(
            n.revive_supervisor(9),
            Err(ClusterError::UnknownSupervisor(9))
        );
    }
}
