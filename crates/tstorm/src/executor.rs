//! The runtime: turns a validated [`Topology`] into running threads.
//!
//! Each task (one unit of a component's parallelism) is a thread with a
//! bounded input queue. Producers block when a consumer queue is full, which
//! gives end-to-end backpressure. One extra thread runs the XOR acker.
//!
//! Transport is batched end to end: bolt queues are batch channels drained
//! up to `batch_size` messages per lock, consecutive tuples execute as one
//! *run* (a single `execute_batch` call for bolts that opt in, a per-tuple
//! `execute` loop otherwise), emits coalesce in the collector's scatter
//! buffers, and each run ships one pre-folded `XorBatch` to the acker.

use crate::ack::{run_acker, AckerMsg, SpoutMsg};
use crate::channel::{
    batch_channel_with_stats, BatchReceiver, BatchSender, ChannelStats, RecvBatch, Weigh,
};
use crate::collector::{
    BoltCollector, BoltMsg, ConsumerEdge, EmitterCore, OutputMap, SpoutCollector, StreamOutputs,
    TupleBatch, TupleMeta,
};
use crate::component::{Bolt, Spout, TaskContext};
use crate::grouping::RoutingRule;
use crate::metrics::{
    ComponentMetrics, LatencyHistogram, LatencySnapshot, MetricsRegistry, MetricsSnapshot,
};
use crate::remote::{SliceSpec, WireTuple};
use crate::topology::{BoltFactory, Topology};
use crate::tuple::{AnchorSet, BatchShared, Schema, Value};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Floor of the spout idle backoff: the first wait after going idle.
const IDLE_BACKOFF_MIN: Duration = Duration::from_millis(1);
/// Ceiling of the spout idle backoff. Control messages (acks, fails,
/// shutdown) wake the spout immediately regardless; this only bounds how
/// stale a *data* arrival can find the poll loop.
const IDLE_BACKOFF_MAX: Duration = Duration::from_millis(20);

impl Topology {
    /// Starts every task thread and the acker; returns a handle for
    /// monitoring and shutdown.
    pub fn launch(self) -> TopologyHandle {
        self.launch_inner(None)
    }

    /// Starts only the slice of the topology named in `spec.local`, for a
    /// cluster worker process. Remote components get no task threads;
    /// tuples routed to them leave through `spec.egress` (and arrive from
    /// elsewhere via [`TopologyHandle::inject`]). No acker thread runs —
    /// acker traffic drains into `spec.acker` for the supervisor-hosted
    /// global acker, whose notifications re-enter through
    /// [`TopologyHandle::spout_notify`].
    pub fn launch_slice(self, spec: SliceSpec) -> TopologyHandle {
        self.launch_inner(Some(spec))
    }

    fn launch_inner(self, spec: Option<SliceSpec>) -> TopologyHandle {
        let is_local = |name: &str| match &spec {
            None => true,
            Some(s) => s.local.contains(name),
        };
        let mut metrics = MetricsRegistry::default();
        let obs = self.config.registry.clone();
        let inflight = Arc::new(AtomicI64::new(0));
        let acker_pending = Arc::new(AtomicI64::new(0));
        let emitted_roots = Arc::new(AtomicU64::new(0));
        // Topology-wide gauges mirror the runtime's existing atomics at
        // render time; the histogram collects spout-emit -> tree-complete
        // latency recorded by the acker.
        {
            let inflight = Arc::clone(&inflight);
            obs.register_gauge_fn(
                "tstorm_inflight_tuples",
                &[],
                "Tuples currently queued, buffered or executing.",
                move || inflight.load(Ordering::Relaxed) as f64,
            );
            let pending = Arc::clone(&acker_pending);
            obs.register_gauge_fn(
                "tstorm_acker_pending_trees",
                &[],
                "Incomplete tracked tuple trees in the acker.",
                move || pending.load(Ordering::Relaxed) as f64,
            );
        }
        let pipeline = obs.histogram_nanos(
            "tstorm_pipeline_latency_seconds",
            &[],
            "Whole-pipeline latency from spout emit to tuple-tree completion.",
        );
        let batch_size = self.config.batch_size.max(1);
        let flush_interval = self.config.flush_interval;
        // In a slice only local spout tasks exist here; the slot map
        // translates their local positions to global acker slots.
        let total_spout_tasks: usize = self
            .spouts
            .iter()
            .filter(|s| is_local(&s.name))
            .map(|s| s.parallelism)
            .sum();
        let slot_map: Vec<usize> = match &spec {
            None => (0..total_spout_tasks).collect(),
            Some(s) => {
                assert_eq!(
                    s.slot_map.len(),
                    total_spout_tasks,
                    "slot map must cover every local spout task"
                );
                s.slot_map.clone()
            }
        };
        // One flag per spout task: true once its most recent poll found
        // nothing to emit (or it was deactivated). `wait_idle` requires all
        // flags set, so it cannot return before a slow-starting spout has
        // even been polled.
        let spout_idle: Arc<Vec<std::sync::atomic::AtomicBool>> = Arc::new(
            (0..total_spout_tasks)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
        );

        // Input queues for every bolt task.
        let mut bolt_txs: HashMap<&str, Vec<BatchSender<BoltMsg>>> = HashMap::new();
        let mut bolt_rxs: HashMap<&str, Vec<BatchReceiver<BoltMsg>>> = HashMap::new();
        for b in &self.bolts {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..b.parallelism)
                .map(|i| {
                    let task = i.to_string();
                    let labels: &[(&str, &str)] = &[("component", &b.name), ("task", &task)];
                    let stats = ChannelStats {
                        depth: obs.gauge(
                            "tstorm_queue_depth",
                            labels,
                            "Tuples currently queued in this task's input queue.",
                        ),
                        stalls: obs.counter(
                            "tstorm_backpressure_stalls_total",
                            labels,
                            "Blocking sends that found this queue full (backpressure).",
                        ),
                    };
                    batch_channel_with_stats(self.config.queue_capacity, Some(stats))
                })
                .unzip();
            bolt_txs.insert(&b.name, txs);
            bolt_rxs.insert(&b.name, rxs);
        }

        // Spout control channels + acker slot table. A slice has no acker
        // of its own: emitters send into the spec's channel, which the
        // cluster layer forwards to the supervisor's global acker.
        let (acker_tx, acker_rx) = match &spec {
            None => {
                let (tx, rx) = unbounded::<AckerMsg>();
                (tx, Some(rx))
            }
            Some(s) => (s.acker.clone(), None),
        };
        let mut spout_ctl_txs: Vec<Sender<SpoutMsg>> = Vec::new();
        let mut spout_ctl_rxs: Vec<Receiver<SpoutMsg>> = Vec::new();
        for s in &self.spouts {
            if !is_local(&s.name) {
                continue;
            }
            for _ in 0..s.parallelism {
                let (tx, rx) = unbounded();
                spout_ctl_txs.push(tx);
                spout_ctl_rxs.push(rx);
            }
        }

        // Output maps: component -> stream -> consumers.
        let mut output_maps: HashMap<&str, Arc<OutputMap>> = HashMap::new();
        let all_outputs: Vec<(&str, &[crate::component::StreamDef])> = self
            .spouts
            .iter()
            .map(|s| (s.name.as_str(), s.outputs.as_slice()))
            .chain(
                self.bolts
                    .iter()
                    .map(|b| (b.name.as_str(), b.outputs.as_slice())),
            )
            .collect();
        for &(name, outputs) in &all_outputs {
            let mut map = OutputMap::default();
            for def in outputs {
                let mut consumers = Vec::new();
                for b in &self.bolts {
                    for sub in &b.subscriptions {
                        if sub.src == name && sub.stream == def.id {
                            let rule =
                                RoutingRule::new(sub.grouping.clone(), |f| def.schema.index_of(f))
                                    .expect("grouping validated at build time");
                            consumers.push(ConsumerEdge {
                                rule: Arc::new(rule),
                                senders: bolt_txs[b.name.as_str()].clone(),
                            });
                        }
                    }
                }
                map.push(StreamOutputs {
                    stream: Arc::from(def.id.as_str()),
                    schema: def.schema.clone(),
                    consumers,
                });
            }
            output_maps.insert(name, Arc::new(map));
        }

        // Schema table for re-hydrating tuples that crossed a process
        // boundary: (source component, stream) -> declared schema.
        let schemas: HashMap<(String, String), Schema> = all_outputs
            .iter()
            .flat_map(|&(name, outputs)| {
                outputs
                    .iter()
                    .map(move |def| ((name.to_string(), def.id.clone()), def.schema.clone()))
            })
            .collect();

        // Acker thread (single-process mode only; a slice forwards).
        let acker_handle = acker_rx.map(|acker_rx| {
            let spouts = spout_ctl_txs.clone();
            let timeout = self.config.message_timeout;
            let gauge = Arc::clone(&acker_pending);
            let clock = self.config.clock.clone();
            let pipeline = Arc::clone(&pipeline);
            std::thread::Builder::new()
                .name("tstorm-acker".into())
                .spawn(move || run_acker(acker_rx, spouts, timeout, gauge, clock, pipeline))
                .expect("spawn acker")
        });

        let mut threads: Vec<JoinHandle<()>> = Vec::new();

        // Remote bolts: their input queues exist (emitters route into them
        // exactly as if they were local) but are drained by egress pumps
        // that flatten each batch and hand it to the cluster transport.
        for b in &self.bolts {
            if is_local(&b.name) {
                continue;
            }
            let egress = Arc::clone(&spec.as_ref().expect("remote bolt implies slice").egress);
            let mut rxs = bolt_rxs.remove(b.name.as_str()).expect("rx registered");
            for task_index in (0..b.parallelism).rev() {
                let rx = rxs.pop().expect("one rx per task");
                let egress = Arc::clone(&egress);
                let inflight = Arc::clone(&inflight);
                let name = b.name.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("tstorm-egress-{name}-{task_index}"))
                        .spawn(move || {
                            let mut inbox: Vec<BoltMsg> = Vec::with_capacity(batch_size);
                            loop {
                                match rx.recv_batch(&mut inbox, batch_size, None) {
                                    RecvBatch::Msgs(_) => {}
                                    RecvBatch::TimedOut => continue,
                                    RecvBatch::Disconnected => break,
                                }
                                let mut shutdown = false;
                                let mut scratch: Vec<Tuple> = Vec::new();
                                let mut tuples: Vec<WireTuple> = Vec::with_capacity(inbox.len());
                                for msg in inbox.drain(..) {
                                    match msg {
                                        BoltMsg::Tuple(t) => tuples.push(WireTuple::from_tuple(&t)),
                                        BoltMsg::Batch(b) => {
                                            b.extend_into(&mut scratch);
                                            tuples.extend(
                                                scratch
                                                    .drain(..)
                                                    .map(|t| WireTuple::from_tuple(&t)),
                                            );
                                        }
                                        BoltMsg::Tick => {}
                                        BoltMsg::Shutdown => shutdown = true,
                                    }
                                }
                                if !tuples.is_empty() {
                                    // The tuples leave this process: local
                                    // in-flight accounting ends at the
                                    // handoff, the destination re-adds them
                                    // on inject.
                                    inflight.fetch_sub(tuples.len() as i64, Ordering::Relaxed);
                                    egress(&name, task_index, tuples);
                                }
                                if shutdown {
                                    break;
                                }
                            }
                        })
                        .expect("spawn egress pump"),
                );
            }
        }

        // Bolt tasks.
        for b in &self.bolts {
            if !is_local(&b.name) {
                continue;
            }
            let comp_metrics = metrics.register(&b.name, &obs);
            let batch_hist = obs.histogram_values(
                "tstorm_batch_size",
                &[("component", &b.name)],
                "Messages drained per receive into this bolt's execute loop.",
            );
            let mut rxs = bolt_rxs.remove(b.name.as_str()).expect("rx registered");
            for task_index in (0..b.parallelism).rev() {
                let rx = rxs.pop().expect("one rx per task");
                let factory = Arc::clone(&b.factory);
                let mut bolt = factory();
                let ctx = TaskContext {
                    component: b.name.clone(),
                    task_index,
                    n_tasks: b.parallelism,
                };
                let mut collector = BoltCollector {
                    core: EmitterCore::new(
                        Arc::from(b.name.as_str()),
                        task_index,
                        Arc::clone(&output_maps[b.name.as_str()]),
                        acker_tx.clone(),
                        Arc::clone(&inflight),
                        Arc::clone(&comp_metrics),
                        self.config.fault_plan.clone(),
                        batch_size,
                    ),
                    current_anchors: AnchorSet::None,
                    tuple_pending: Vec::new(),
                    run_pending: Vec::new(),
                };
                let tick = b.tick;
                let fault_plan = self.config.fault_plan.clone();
                let metrics = Arc::clone(&comp_metrics);
                let batch_hist = Arc::clone(&batch_hist);
                let inflight = Arc::clone(&inflight);
                let name = b.name.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("tstorm-{name}-{task_index}"))
                        .spawn(move || {
                            bolt.prepare(&ctx);
                            let mut next_tick = tick.map(|d| Instant::now() + d);
                            let mut inbox: Vec<BoltMsg> = Vec::with_capacity(batch_size);
                            let mut run: Vec<Tuple> = Vec::with_capacity(batch_size);
                            'main: loop {
                                match rx.recv_batch(&mut inbox, batch_size, next_tick) {
                                    RecvBatch::Msgs(n) => {
                                        debug_assert_eq!(n, inbox.len());
                                        // Depth of the drain in *tuples*, not
                                        // transport messages: a whole-arena
                                        // batch message counts its payload.
                                        let tuples: usize = inbox.iter().map(Weigh::weight).sum();
                                        batch_hist.record_nanos(tuples as u64);
                                    }
                                    RecvBatch::TimedOut => {
                                        do_tick(&mut bolt, &mut collector);
                                        next_tick =
                                            Some(Instant::now() + tick.expect("tick interval set"));
                                        continue;
                                    }
                                    RecvBatch::Disconnected => break,
                                }
                                for msg in inbox.drain(..) {
                                    match msg {
                                        BoltMsg::Tuple(t) => run.push(t),
                                        BoltMsg::Batch(b) => b.extend_into(&mut run),
                                        BoltMsg::Tick => {
                                            // Flush the pending run first so
                                            // the tick observes every tuple
                                            // queued before it.
                                            execute_run(
                                                &mut run,
                                                &mut bolt,
                                                &mut collector,
                                                &metrics,
                                                &inflight,
                                                &fault_plan,
                                                &factory,
                                                &ctx,
                                            );
                                            do_tick(&mut bolt, &mut collector);
                                        }
                                        BoltMsg::Shutdown => {
                                            execute_run(
                                                &mut run,
                                                &mut bolt,
                                                &mut collector,
                                                &metrics,
                                                &inflight,
                                                &fault_plan,
                                                &factory,
                                                &ctx,
                                            );
                                            bolt.cleanup();
                                            break 'main;
                                        }
                                    }
                                }
                                execute_run(
                                    &mut run,
                                    &mut bolt,
                                    &mut collector,
                                    &metrics,
                                    &inflight,
                                    &fault_plan,
                                    &factory,
                                    &ctx,
                                );
                                if let Some(deadline) = next_tick {
                                    // A long run can overshoot the tick
                                    // deadline; catch up before blocking.
                                    if Instant::now() >= deadline {
                                        do_tick(&mut bolt, &mut collector);
                                        next_tick =
                                            Some(Instant::now() + tick.expect("tick interval set"));
                                    }
                                }
                            }
                        })
                        .expect("spawn bolt task"),
                );
            }
        }

        // Spout tasks. `slot` counts local spout tasks; the collector is
        // handed the *global* acker slot so Init entries name the right
        // notification row wherever the acker runs.
        let mut slot = 0usize;
        let mut spout_threads: Vec<JoinHandle<()>> = Vec::new();
        for s in &self.spouts {
            if !is_local(&s.name) {
                continue;
            }
            let comp_metrics = metrics.register(&s.name, &obs);
            for task_index in 0..s.parallelism {
                let rx = spout_ctl_rxs[slot].clone();
                let mut spout = (s.factory)();
                let ctx = TaskContext {
                    component: s.name.clone(),
                    task_index,
                    n_tasks: s.parallelism,
                };
                let mut collector = SpoutCollector {
                    core: EmitterCore::new(
                        Arc::from(s.name.as_str()),
                        task_index,
                        Arc::clone(&output_maps[s.name.as_str()]),
                        acker_tx.clone(),
                        Arc::clone(&inflight),
                        Arc::clone(&comp_metrics),
                        self.config.fault_plan.clone(),
                        batch_size,
                    ),
                    slot: slot_map[slot],
                    emitted_roots: Arc::clone(&emitted_roots),
                    pending_inits: Vec::new(),
                    now_ms: self.config.clock.now_ms(),
                    clock: self.config.clock.clone(),
                };
                let metrics = Arc::clone(&comp_metrics);
                let name = s.name.clone();
                let idle_flags = Arc::clone(&spout_idle);
                let my_slot = slot;
                spout_threads.push(
                    std::thread::Builder::new()
                        .name(format!("tstorm-{name}-{task_index}"))
                        .spawn(move || {
                            spout.open(&ctx);
                            let mut active = true;
                            let mut idle_wait = IDLE_BACKOFF_MIN;
                            let mut last_flush = Instant::now();
                            loop {
                                // Drain control messages without blocking.
                                while let Ok(msg) = rx.try_recv() {
                                    if let Ctl::Shutdown =
                                        handle_ctl(msg, &mut spout, &metrics, &mut active)
                                    {
                                        return;
                                    }
                                }
                                // Poll the source in bursts of up to
                                // `batch_size` between control drains,
                                // metering the whole burst once: a second
                                // `Instant` pair plus a control-queue check
                                // per poll would dominate a cheap source at
                                // millions of tuples per second. The burst
                                // also ends at the flush deadline so a slow
                                // source (paced, I/O-bound) keeps the
                                // pre-batching flush cadence instead of
                                // stranding emits for `batch_size` polls.
                                let mut polled = 0u64;
                                if active {
                                    let start = Instant::now();
                                    let deadline = start + flush_interval;
                                    while (polled as usize) < batch_size
                                        && spout.next_tuple(&mut collector)
                                    {
                                        polled += 1;
                                        if Instant::now() >= deadline {
                                            break;
                                        }
                                    }
                                    if polled > 0 {
                                        metrics.record_exec_batch(
                                            start.elapsed().as_nanos() as u64,
                                            polled,
                                            true,
                                        );
                                    }
                                }
                                let emitted = polled > 0;
                                // Emit buffers flush on the interval while
                                // producing, and always before going idle —
                                // batching may not strand tuples locally.
                                if !emitted || last_flush.elapsed() >= flush_interval {
                                    collector.flush();
                                    last_flush = Instant::now();
                                }
                                idle_flags[my_slot].store(!emitted, Ordering::Release);
                                if emitted {
                                    idle_wait = IDLE_BACKOFF_MIN;
                                } else {
                                    // Idle or deactivated: block on control
                                    // traffic with exponential backoff. Acks,
                                    // fails and shutdown land on this channel,
                                    // so they interrupt the wait immediately;
                                    // only a silent source pays the full
                                    // backoff before its next poll.
                                    match rx.recv_timeout(idle_wait) {
                                        Ok(msg) => {
                                            idle_wait = IDLE_BACKOFF_MIN;
                                            if let Ctl::Shutdown =
                                                handle_ctl(msg, &mut spout, &metrics, &mut active)
                                            {
                                                return;
                                            }
                                        }
                                        Err(RecvTimeoutError::Timeout) => {
                                            idle_wait = (idle_wait * 2).min(IDLE_BACKOFF_MAX);
                                        }
                                        Err(RecvTimeoutError::Disconnected) => {}
                                    }
                                }
                            }
                        })
                        .expect("spawn spout task"),
                );
                slot += 1;
            }
        }

        TopologyHandle {
            metrics,
            registry: obs,
            pipeline,
            inflight,
            acker_pending,
            emitted_roots,
            spout_idle,
            spout_ctl_txs,
            bolt_txs: bolt_txs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            acker_tx,
            slot_map,
            schemas,
            threads,
            spout_threads,
            acker_handle,
        }
    }
}

use crate::tuple::Tuple;

enum Ctl {
    Continue,
    Shutdown,
}

fn handle_ctl(
    msg: SpoutMsg,
    spout: &mut Box<dyn Spout>,
    metrics: &ComponentMetrics,
    active: &mut bool,
) -> Ctl {
    match msg {
        SpoutMsg::Ack(id) => {
            metrics.acked.inc();
            spout.ack(id);
        }
        SpoutMsg::AckBatch(ids) => {
            metrics.acked.add(ids.len() as u64);
            for id in ids {
                spout.ack(id);
            }
        }
        SpoutMsg::Fail(id) => {
            metrics.failed.inc();
            spout.fail(id);
        }
        SpoutMsg::Deactivate => *active = false,
        SpoutMsg::Activate => *active = true,
        SpoutMsg::Shutdown => {
            spout.close();
            return Ctl::Shutdown;
        }
    }
    Ctl::Continue
}

fn do_tick(bolt: &mut Box<dyn Bolt>, collector: &mut BoltCollector) {
    collector.current_anchors = AnchorSet::None;
    bolt.tick(collector);
    collector.flush_run();
}

/// Executes one run of consecutive tuples and completes it: per-tuple
/// `execute` with per-tuple ack/fail by default, or a single
/// `execute_batch` with all-or-nothing completion for bolts that opt in.
/// Either way the run ends with one emit flush and one `XorBatch`.
///
/// Storm's supervisor restarts crashed workers; here a panicking execute
/// fails the affected tuple tree(s) (the spout will replay them) and the
/// bolt is rebuilt from its factory — safe because bolts keep durable
/// state in TDStore, not in themselves.
#[allow(clippy::too_many_arguments)]
fn execute_run(
    run: &mut Vec<Tuple>,
    bolt: &mut Box<dyn Bolt>,
    collector: &mut BoltCollector,
    metrics: &ComponentMetrics,
    inflight: &AtomicI64,
    fault_plan: &tchaos::FaultPlan,
    factory: &BoltFactory,
    ctx: &TaskContext,
) {
    if run.is_empty() {
        return;
    }
    let n = run.len();
    if bolt.supports_batch() {
        // Conservative pre-anchor: emits from a batch override that does
        // not call `anchor_to` attach to every root in the run.
        collector.current_anchors = run
            .iter()
            .flat_map(|t| t.anchors.pairs().iter().copied())
            .collect();
        let start = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Injected before execute so a faulted run has had no effect
            // on durable state: the replay re-runs it from scratch.
            if fault_plan.should_fault(tchaos::FaultSite::ExecutorPanic) {
                panic!("tchaos: injected executor panic");
            }
            bolt.execute_batch(run, collector)
        }));
        let nanos = start.elapsed().as_nanos() as u64;
        match result {
            Ok(Ok(())) => {
                for t in run.iter() {
                    collector.current_anchors = t.anchors.clone();
                    collector.complete_ok();
                }
                metrics.record_exec_batch(nanos, n as u64, true);
            }
            Ok(Err(_reason)) => {
                collector.fail_run(run);
                metrics.record_exec_batch(nanos, n as u64, false);
            }
            Err(_panic) => {
                collector.fail_run(run);
                metrics.record_exec_batch(nanos, n as u64, false);
                *bolt = factory();
                bolt.prepare(ctx);
            }
        }
    } else {
        for t in run.iter() {
            collector.current_anchors = t.anchors.clone();
            let start = Instant::now();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if fault_plan.should_fault(tchaos::FaultSite::ExecutorPanic) {
                    panic!("tchaos: injected executor panic");
                }
                bolt.execute(t, collector)
            }));
            let nanos = start.elapsed().as_nanos() as u64;
            match result {
                Ok(Ok(())) => {
                    collector.complete_ok();
                    metrics.record_exec(nanos, true);
                }
                Ok(Err(_reason)) => {
                    collector.complete_err();
                    metrics.record_exec(nanos, false);
                }
                Err(_panic) => {
                    collector.complete_err();
                    metrics.record_exec(nanos, false);
                    *bolt = factory();
                    bolt.prepare(ctx);
                }
            }
        }
    }
    collector.flush_run();
    inflight.fetch_sub(n as i64, Ordering::Relaxed);
    run.clear();
}

/// Handle to a running topology.
pub struct TopologyHandle {
    metrics: MetricsRegistry,
    registry: obs::Registry,
    pipeline: Arc<LatencyHistogram>,
    inflight: Arc<AtomicI64>,
    acker_pending: Arc<AtomicI64>,
    emitted_roots: Arc<AtomicU64>,
    spout_idle: Arc<Vec<std::sync::atomic::AtomicBool>>,
    spout_ctl_txs: Vec<Sender<SpoutMsg>>,
    bolt_txs: HashMap<String, Vec<BatchSender<BoltMsg>>>,
    acker_tx: Sender<AckerMsg>,
    /// Local spout task position -> global acker slot (identity in
    /// single-process mode).
    slot_map: Vec<usize>,
    /// (source component, stream) -> declared schema, for re-hydrating
    /// injected wire tuples.
    schemas: HashMap<(String, String), Schema>,
    threads: Vec<JoinHandle<()>>,
    spout_threads: Vec<JoinHandle<()>>,
    acker_handle: Option<JoinHandle<()>>,
}

impl TopologyHandle {
    /// Metrics snapshots of all components.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        self.metrics.snapshot()
    }

    /// Metrics snapshot of one component.
    pub fn metrics_for(&self, component: &str) -> Option<MetricsSnapshot> {
        self.metrics.component(component)
    }

    /// The exposition registry every runtime metric of this topology is
    /// attached to (a clone shares the underlying entries). Render it with
    /// [`obs::Registry::render`] or combine several registries with
    /// [`obs::render_registries`].
    pub fn registry(&self) -> obs::Registry {
        self.registry.clone()
    }

    /// Snapshot of whole-pipeline latency (spout emit to tuple-tree
    /// completion, millisecond precision), recorded by the acker for every
    /// tracked tuple.
    pub fn pipeline_latency(&self) -> LatencySnapshot {
        self.pipeline.snapshot()
    }

    /// Number of tuples currently queued, buffered or executing.
    pub fn inflight(&self) -> i64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Number of incomplete tracked tuple trees.
    pub fn pending_trees(&self) -> i64 {
        self.acker_pending.load(Ordering::Relaxed)
    }

    /// Total roots emitted by local spout tasks so far (tracked and
    /// untracked).
    pub fn emitted_roots(&self) -> u64 {
        self.emitted_roots.load(Ordering::Relaxed)
    }

    /// True when every local spout task's most recent poll found nothing
    /// to emit.
    pub fn spouts_idle(&self) -> bool {
        self.spout_idle.iter().all(|f| f.load(Ordering::Acquire))
    }

    /// Delivers tuples that crossed a process boundary into `component`'s
    /// task queue, re-hydrating each against the schema declared for its
    /// (source component, stream) pair. Blocks when the destination queue
    /// is full, so transport-level backpressure reaches the sender.
    ///
    /// Panics on an unknown destination or stream: every process builds
    /// the same topology, so a mismatch is a protocol bug, not an
    /// operational condition.
    pub fn inject(&self, component: &str, task: usize, tuples: Vec<WireTuple>) {
        if tuples.is_empty() {
            return;
        }
        let txs = self
            .bolt_txs
            .get(component)
            .unwrap_or_else(|| panic!("inject: unknown component `{component}`"));
        let tx = &txs[task];
        self.inflight
            .fetch_add(tuples.len() as i64, Ordering::Relaxed);
        // Regroup per (source, stream) so the whole injected batch
        // re-enters the in-process representation it left: one shared
        // value arena + one schema/stream/source handle per group instead
        // of a standalone tuple per wire record.
        struct Group {
            schema: Schema,
            stream: Arc<str>,
            src: Arc<str>,
            src_task: usize,
            values: Vec<Value>,
            metas: Vec<TupleMeta>,
        }
        let mut groups: HashMap<(String, String, usize), Group> = HashMap::new();
        for wt in tuples {
            let key = (wt.src_component, wt.stream, wt.src_task);
            let g = groups.entry(key).or_insert_with_key(|k| {
                let schema = self
                    .schemas
                    .get(&(k.0.clone(), k.1.clone()))
                    .unwrap_or_else(|| panic!("inject: unknown stream `{}:{}`", k.0, k.1))
                    .clone();
                Group {
                    schema,
                    stream: Arc::from(k.1.as_str()),
                    src: Arc::from(k.0.as_str()),
                    src_task: k.2,
                    values: Vec::new(),
                    metas: Vec::new(),
                }
            });
            g.metas.push(TupleMeta {
                len: wt.values.len() as u32,
                anchors: AnchorSet::from_pairs(wt.anchors),
            });
            g.values.extend(wt.values);
        }
        let msgs: Vec<BoltMsg> = groups
            .into_values()
            .map(|mut g| {
                let shared = Arc::new(BatchShared {
                    values: g.values.into_boxed_slice(),
                    schema: g.schema,
                    stream: g.stream,
                    src_component: g.src,
                    src_task: g.src_task,
                });
                if g.metas.len() == 1 {
                    let meta = g.metas.pop().expect("len checked");
                    BoltMsg::Tuple(crate::tuple::Tuple::from_batch(
                        &shared,
                        0,
                        meta.len,
                        meta.anchors,
                    ))
                } else {
                    BoltMsg::Batch(TupleBatch {
                        shared,
                        metas: g.metas,
                    })
                }
            })
            .collect();
        if let Err(e) = tx.send_batch(msgs) {
            // `undelivered` is in weight units, i.e. tuples.
            self.inflight
                .fetch_sub(e.undelivered as i64, Ordering::Relaxed);
        }
    }

    /// Routes a spout notification from a remote (supervisor-hosted)
    /// acker to the local task owning `global_slot`. Notifications for
    /// slots not hosted here are dropped — after a reassignment the
    /// supervisor can briefly hold stale routes, and a lost ack/fail only
    /// delays the tree until the timeout sweep replays it.
    pub fn spout_notify(&self, global_slot: usize, msg: SpoutMsg) {
        if let Some(local) = self.slot_map.iter().position(|&g| g == global_slot) {
            let _ = self.spout_ctl_txs[local].send(msg);
        }
    }

    /// Stops spouts from emitting new tuples; in-flight tuples continue to
    /// be processed.
    pub fn deactivate(&self) {
        for tx in &self.spout_ctl_txs {
            let _ = tx.send(SpoutMsg::Deactivate);
        }
    }

    /// Resumes spout emission after a [`TopologyHandle::deactivate`] (the
    /// tail of a checkpoint barrier: drain, seal, resume).
    pub fn activate(&self) {
        for tx in &self.spout_ctl_txs {
            let _ = tx.send(SpoutMsg::Activate);
        }
    }

    /// Runs `seal` inside a drain/seal barrier: deactivates the spouts,
    /// waits for every in-flight tuple tree to complete, invokes `seal` on
    /// the quiesced topology, then reactivates the spouts. With the
    /// pipeline drained, everything the spouts have emitted is fully
    /// reflected in bolt state and the replay trackers' committed offsets
    /// — exactly the consistency a checkpoint needs.
    ///
    /// Returns `None` (without calling `seal`) if the pipeline fails to
    /// drain within `timeout`. The spouts are reactivated either way.
    pub fn with_barrier<T>(&self, timeout: Duration, seal: impl FnOnce() -> T) -> Option<T> {
        self.deactivate();
        let drained = self.wait_idle(timeout);
        let out = if drained { Some(seal()) } else { None };
        self.activate();
        out
    }

    /// Blocks until no tuples are in flight and no tuple trees are pending,
    /// with the spouts quiescent across two consecutive checks. Returns
    /// `false` on timeout.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last_roots = u64::MAX;
        let mut was_quiet = false;
        loop {
            let spouts_idle = self.spout_idle.iter().all(|f| f.load(Ordering::Acquire));
            let quiet = spouts_idle
                && self.inflight.load(Ordering::Relaxed) == 0
                && self.acker_pending.load(Ordering::Relaxed) == 0;
            let roots = self.emitted_roots.load(Ordering::Relaxed);
            // Two consecutive quiet observations with a stable root count
            // bridge the gap between a spout's emit and the acker seeing
            // its Init message.
            if quiet && was_quiet && roots == last_roots {
                return true;
            }
            was_quiet = quiet;
            last_roots = roots;
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Deactivates spouts then waits for the pipeline to drain.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.deactivate();
        self.wait_idle(timeout)
    }

    /// Manually injects a tick to every task of `component` (mostly for
    /// tests; production ticks come from `tick_interval`).
    pub fn tick(&self, component: &str) {
        if let Some(txs) = self.bolt_txs.get(component) {
            for tx in txs {
                let _ = tx.send(BoltMsg::Tick);
            }
        }
    }

    /// Abrupt teardown: stops every task **without** draining. Queued and
    /// in-flight tuple trees are abandoned mid-flight, their offsets never
    /// commit, and whatever partial writes already landed stay as they
    /// are — the in-process analogue of a worker being SIGKILLed. Used by
    /// the process-kill recovery tests; production restarts should prefer
    /// [`TopologyHandle::shutdown`].
    pub fn kill(mut self) {
        for tx in &self.spout_ctl_txs {
            let _ = tx.send(SpoutMsg::Shutdown);
        }
        for txs in self.bolt_txs.values() {
            for tx in txs {
                let _ = tx.send(BoltMsg::Shutdown);
            }
        }
        let _ = self.acker_tx.send(AckerMsg::Shutdown);
        for t in self.spout_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(h) = self.acker_handle.take() {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: drain (bounded by `timeout`), then stop all tasks
    /// and join every thread. Returns final metrics.
    pub fn shutdown(mut self, timeout: Duration) -> Vec<MetricsSnapshot> {
        self.drain(timeout);
        for tx in &self.spout_ctl_txs {
            let _ = tx.send(SpoutMsg::Shutdown);
        }
        for t in self.spout_threads.drain(..) {
            let _ = t.join();
        }
        for txs in self.bolt_txs.values() {
            for tx in txs {
                let _ = tx.send(BoltMsg::Shutdown);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = self.acker_tx.send(AckerMsg::Shutdown);
        if let Some(h) = self.acker_handle.take() {
            let _ = h.join();
        }
        self.metrics.snapshot()
    }
}
