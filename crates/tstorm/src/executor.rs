//! The runtime: turns a validated [`Topology`] into running threads.
//!
//! Each task (one unit of a component's parallelism) is a thread with a
//! bounded input queue. Producers block when a consumer queue is full, which
//! gives end-to-end backpressure. One extra thread runs the XOR acker.

use crate::ack::{run_acker, AckerMsg, SpoutMsg};
use crate::collector::{
    BoltCollector, BoltMsg, ConsumerEdge, EmitterCore, OutputMap, SpoutCollector, StreamOutputs,
};
use crate::component::TaskContext;
use crate::grouping::RoutingRule;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::topology::Topology;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

impl Topology {
    /// Starts every task thread and the acker; returns a handle for
    /// monitoring and shutdown.
    pub fn launch(self) -> TopologyHandle {
        let mut metrics = MetricsRegistry::default();
        let inflight = Arc::new(AtomicI64::new(0));
        let acker_pending = Arc::new(AtomicI64::new(0));
        let emitted_roots = Arc::new(AtomicU64::new(0));
        let total_spout_tasks: usize = self.spouts.iter().map(|s| s.parallelism).sum();
        // One flag per spout task: true once its most recent poll found
        // nothing to emit (or it was deactivated). `wait_idle` requires all
        // flags set, so it cannot return before a slow-starting spout has
        // even been polled.
        let spout_idle: Arc<Vec<std::sync::atomic::AtomicBool>> = Arc::new(
            (0..total_spout_tasks)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
        );

        // Input queues for every bolt task.
        let mut bolt_txs: HashMap<&str, Vec<Sender<BoltMsg>>> = HashMap::new();
        let mut bolt_rxs: HashMap<&str, Vec<Receiver<BoltMsg>>> = HashMap::new();
        for b in &self.bolts {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..b.parallelism)
                .map(|_| bounded(self.config.queue_capacity))
                .unzip();
            bolt_txs.insert(&b.name, txs);
            bolt_rxs.insert(&b.name, rxs);
        }

        // Spout control channels + acker slot table.
        let (acker_tx, acker_rx) = unbounded::<AckerMsg>();
        let mut spout_ctl_txs: Vec<Sender<SpoutMsg>> = Vec::new();
        let mut spout_ctl_rxs: Vec<Receiver<SpoutMsg>> = Vec::new();
        for s in &self.spouts {
            for _ in 0..s.parallelism {
                let (tx, rx) = unbounded();
                spout_ctl_txs.push(tx);
                spout_ctl_rxs.push(rx);
            }
        }

        // Output maps: component -> stream -> consumers.
        let mut output_maps: HashMap<&str, Arc<OutputMap>> = HashMap::new();
        let all_outputs: Vec<(&str, &[crate::component::StreamDef])> = self
            .spouts
            .iter()
            .map(|s| (s.name.as_str(), s.outputs.as_slice()))
            .chain(
                self.bolts
                    .iter()
                    .map(|b| (b.name.as_str(), b.outputs.as_slice())),
            )
            .collect();
        for &(name, outputs) in &all_outputs {
            let mut map = OutputMap::new();
            for def in outputs {
                let mut consumers = Vec::new();
                for b in &self.bolts {
                    for sub in &b.subscriptions {
                        if sub.src == name && sub.stream == def.id {
                            let rule =
                                RoutingRule::new(sub.grouping.clone(), |f| def.schema.index_of(f))
                                    .expect("grouping validated at build time");
                            consumers.push(ConsumerEdge {
                                rule: Arc::new(rule),
                                senders: bolt_txs[b.name.as_str()].clone(),
                            });
                        }
                    }
                }
                map.insert(
                    def.id.clone(),
                    StreamOutputs {
                        stream: Arc::from(def.id.as_str()),
                        schema: def.schema.clone(),
                        consumers,
                    },
                );
            }
            output_maps.insert(name, Arc::new(map));
        }

        // Acker thread.
        let acker_handle = {
            let spouts = spout_ctl_txs.clone();
            let timeout = self.config.message_timeout;
            let gauge = Arc::clone(&acker_pending);
            let clock = self.config.clock.clone();
            std::thread::Builder::new()
                .name("tstorm-acker".into())
                .spawn(move || run_acker(acker_rx, spouts, timeout, gauge, clock))
                .expect("spawn acker")
        };

        let mut threads: Vec<JoinHandle<()>> = Vec::new();

        // Bolt tasks.
        for b in &self.bolts {
            let comp_metrics = metrics.register(&b.name);
            let mut rxs = bolt_rxs.remove(b.name.as_str()).expect("rx registered");
            for task_index in (0..b.parallelism).rev() {
                let rx = rxs.pop().expect("one rx per task");
                let factory = Arc::clone(&b.factory);
                let mut bolt = factory();
                let ctx = TaskContext {
                    component: b.name.clone(),
                    task_index,
                    n_tasks: b.parallelism,
                };
                let mut collector = BoltCollector {
                    core: EmitterCore::new(
                        Arc::from(b.name.as_str()),
                        task_index,
                        Arc::clone(&output_maps[b.name.as_str()]),
                        acker_tx.clone(),
                        Arc::clone(&inflight),
                        Arc::clone(&comp_metrics),
                        self.config.fault_plan.clone(),
                    ),
                    current_anchors: Arc::from(Vec::new()),
                    pending: Vec::new(),
                };
                let tick = b.tick;
                let fault_plan = self.config.fault_plan.clone();
                let metrics = Arc::clone(&comp_metrics);
                let inflight = Arc::clone(&inflight);
                let name = b.name.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("tstorm-{name}-{task_index}"))
                        .spawn(move || {
                            bolt.prepare(&ctx);
                            let mut next_tick = tick.map(|d| Instant::now() + d);
                            loop {
                                let msg = match next_tick {
                                    Some(deadline) => {
                                        match rx.recv_timeout(
                                            deadline.saturating_duration_since(Instant::now()),
                                        ) {
                                            Ok(m) => m,
                                            Err(RecvTimeoutError::Timeout) => {
                                                collector.current_anchors = Arc::from(Vec::new());
                                                bolt.tick(&mut collector);
                                                next_tick = Some(
                                                    Instant::now()
                                                        + tick.expect("tick interval set"),
                                                );
                                                continue;
                                            }
                                            Err(RecvTimeoutError::Disconnected) => break,
                                        }
                                    }
                                    None => match rx.recv() {
                                        Ok(m) => m,
                                        Err(_) => break,
                                    },
                                };
                                match msg {
                                    BoltMsg::Tuple(t) => {
                                        collector.current_anchors = Arc::clone(&t.anchors);
                                        let start = Instant::now();
                                        // Storm's supervisor restarts crashed
                                        // workers; here a panicking execute
                                        // fails the tuple tree (the spout
                                        // will replay it) and the bolt is
                                        // rebuilt from its factory — safe
                                        // because bolts keep durable state in
                                        // TDStore, not in themselves.
                                        let result = std::panic::catch_unwind(
                                            std::panic::AssertUnwindSafe(|| {
                                                // Injected before execute so
                                                // a faulted tuple has had no
                                                // effect on durable state:
                                                // the replay re-runs it from
                                                // scratch, never half-way.
                                                if fault_plan
                                                    .should_fault(tchaos::FaultSite::ExecutorPanic)
                                                {
                                                    panic!("tchaos: injected executor panic");
                                                }
                                                bolt.execute(&t, &mut collector)
                                            }),
                                        );
                                        let nanos = start.elapsed().as_nanos() as u64;
                                        match result {
                                            Ok(Ok(())) => {
                                                collector.complete_ok();
                                                metrics.record_exec(nanos, true);
                                            }
                                            Ok(Err(_reason)) => {
                                                collector.complete_err();
                                                metrics.record_exec(nanos, false);
                                            }
                                            Err(_panic) => {
                                                collector.complete_err();
                                                metrics.record_exec(nanos, false);
                                                bolt = factory();
                                                bolt.prepare(&ctx);
                                            }
                                        }
                                        inflight.fetch_sub(1, Ordering::Relaxed);
                                    }
                                    BoltMsg::Tick => {
                                        collector.current_anchors = Arc::from(Vec::new());
                                        bolt.tick(&mut collector);
                                    }
                                    BoltMsg::Shutdown => {
                                        bolt.cleanup();
                                        break;
                                    }
                                }
                            }
                        })
                        .expect("spawn bolt task"),
                );
            }
        }

        // Spout tasks.
        let mut slot = 0usize;
        let mut spout_threads: Vec<JoinHandle<()>> = Vec::new();
        for s in &self.spouts {
            let comp_metrics = metrics.register(&s.name);
            for task_index in 0..s.parallelism {
                let rx = spout_ctl_rxs[slot].clone();
                let mut spout = (s.factory)();
                let ctx = TaskContext {
                    component: s.name.clone(),
                    task_index,
                    n_tasks: s.parallelism,
                };
                let mut collector = SpoutCollector {
                    core: EmitterCore::new(
                        Arc::from(s.name.as_str()),
                        task_index,
                        Arc::clone(&output_maps[s.name.as_str()]),
                        acker_tx.clone(),
                        Arc::clone(&inflight),
                        Arc::clone(&comp_metrics),
                        self.config.fault_plan.clone(),
                    ),
                    slot,
                    emitted_roots: Arc::clone(&emitted_roots),
                };
                let metrics = Arc::clone(&comp_metrics);
                let name = s.name.clone();
                let idle_flags = Arc::clone(&spout_idle);
                let my_slot = slot;
                spout_threads.push(
                    std::thread::Builder::new()
                        .name(format!("tstorm-{name}-{task_index}"))
                        .spawn(move || {
                            spout.open(&ctx);
                            let mut active = true;
                            loop {
                                // Drain control messages without blocking.
                                loop {
                                    match rx.try_recv() {
                                        Ok(SpoutMsg::Ack(id)) => {
                                            metrics.acked.fetch_add(1, Ordering::Relaxed);
                                            spout.ack(id);
                                        }
                                        Ok(SpoutMsg::Fail(id)) => {
                                            metrics.failed.fetch_add(1, Ordering::Relaxed);
                                            spout.fail(id);
                                        }
                                        Ok(SpoutMsg::Deactivate) => active = false,
                                        Ok(SpoutMsg::Shutdown) => {
                                            spout.close();
                                            return;
                                        }
                                        Err(_) => break,
                                    }
                                }
                                let emitted = if active {
                                    let start = Instant::now();
                                    let emitted = spout.next_tuple(&mut collector);
                                    if emitted {
                                        metrics
                                            .record_exec(start.elapsed().as_nanos() as u64, true);
                                    }
                                    emitted
                                } else {
                                    false
                                };
                                idle_flags[my_slot].store(!emitted, Ordering::Release);
                                if !emitted {
                                    // Idle or deactivated: block briefly on
                                    // control traffic instead of spinning.
                                    match rx.recv_timeout(Duration::from_millis(1)) {
                                        Ok(SpoutMsg::Ack(id)) => {
                                            metrics.acked.fetch_add(1, Ordering::Relaxed);
                                            spout.ack(id);
                                        }
                                        Ok(SpoutMsg::Fail(id)) => {
                                            metrics.failed.fetch_add(1, Ordering::Relaxed);
                                            spout.fail(id);
                                        }
                                        Ok(SpoutMsg::Deactivate) => active = false,
                                        Ok(SpoutMsg::Shutdown) => {
                                            spout.close();
                                            return;
                                        }
                                        Err(_) => {}
                                    }
                                }
                            }
                        })
                        .expect("spawn spout task"),
                );
                slot += 1;
            }
        }

        TopologyHandle {
            metrics,
            inflight,
            acker_pending,
            emitted_roots,
            spout_idle,
            spout_ctl_txs,
            bolt_txs: bolt_txs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            acker_tx,
            threads,
            spout_threads,
            acker_handle: Some(acker_handle),
        }
    }
}

/// Handle to a running topology.
pub struct TopologyHandle {
    metrics: MetricsRegistry,
    inflight: Arc<AtomicI64>,
    acker_pending: Arc<AtomicI64>,
    emitted_roots: Arc<AtomicU64>,
    spout_idle: Arc<Vec<std::sync::atomic::AtomicBool>>,
    spout_ctl_txs: Vec<Sender<SpoutMsg>>,
    bolt_txs: HashMap<String, Vec<Sender<BoltMsg>>>,
    acker_tx: Sender<AckerMsg>,
    threads: Vec<JoinHandle<()>>,
    spout_threads: Vec<JoinHandle<()>>,
    acker_handle: Option<JoinHandle<()>>,
}

impl TopologyHandle {
    /// Metrics snapshots of all components.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        self.metrics.snapshot()
    }

    /// Metrics snapshot of one component.
    pub fn metrics_for(&self, component: &str) -> Option<MetricsSnapshot> {
        self.metrics.component(component)
    }

    /// Number of tuples currently queued or executing.
    pub fn inflight(&self) -> i64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Number of incomplete tracked tuple trees.
    pub fn pending_trees(&self) -> i64 {
        self.acker_pending.load(Ordering::Relaxed)
    }

    /// Stops spouts from emitting new tuples; in-flight tuples continue to
    /// be processed.
    pub fn deactivate(&self) {
        for tx in &self.spout_ctl_txs {
            let _ = tx.send(SpoutMsg::Deactivate);
        }
    }

    /// Blocks until no tuples are in flight and no tuple trees are pending,
    /// with the spouts quiescent across two consecutive checks. Returns
    /// `false` on timeout.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last_roots = u64::MAX;
        let mut was_quiet = false;
        loop {
            let spouts_idle = self.spout_idle.iter().all(|f| f.load(Ordering::Acquire));
            let quiet = spouts_idle
                && self.inflight.load(Ordering::Relaxed) == 0
                && self.acker_pending.load(Ordering::Relaxed) == 0;
            let roots = self.emitted_roots.load(Ordering::Relaxed);
            // Two consecutive quiet observations with a stable root count
            // bridge the gap between a spout's emit and the acker seeing
            // its Init message.
            if quiet && was_quiet && roots == last_roots {
                return true;
            }
            was_quiet = quiet;
            last_roots = roots;
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Deactivates spouts then waits for the pipeline to drain.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.deactivate();
        self.wait_idle(timeout)
    }

    /// Manually injects a tick to every task of `component` (mostly for
    /// tests; production ticks come from `tick_interval`).
    pub fn tick(&self, component: &str) {
        if let Some(txs) = self.bolt_txs.get(component) {
            for tx in txs {
                let _ = tx.send(BoltMsg::Tick);
            }
        }
    }

    /// Graceful shutdown: drain (bounded by `timeout`), then stop all tasks
    /// and join every thread. Returns final metrics.
    pub fn shutdown(mut self, timeout: Duration) -> Vec<MetricsSnapshot> {
        self.drain(timeout);
        for tx in &self.spout_ctl_txs {
            let _ = tx.send(SpoutMsg::Shutdown);
        }
        for t in self.spout_threads.drain(..) {
            let _ = t.join();
        }
        for txs in self.bolt_txs.values() {
            for tx in txs {
                let _ = tx.send(BoltMsg::Shutdown);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = self.acker_tx.send(AckerMsg::Shutdown);
        if let Some(h) = self.acker_handle.take() {
            let _ = h.join();
        }
        self.metrics.snapshot()
    }
}
