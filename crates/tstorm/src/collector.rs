//! Output collectors: the emit path shared by spouts and bolts, including
//! routing, anchoring and in-flight accounting.

use crate::ack::AckerMsg;
use crate::grouping::{Route, RoutingRule};
use crate::metrics::ComponentMetrics;
use crate::tuple::{Anchors, Schema, Tuple, Value, DEFAULT_STREAM};
use crossbeam::channel::Sender;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Messages delivered to bolt task queues.
#[derive(Debug)]
pub(crate) enum BoltMsg {
    Tuple(Tuple),
    Tick,
    Shutdown,
}

/// One subscription edge from a producer stream to a consumer component.
pub(crate) struct ConsumerEdge {
    pub(crate) rule: Arc<RoutingRule>,
    pub(crate) senders: Vec<Sender<BoltMsg>>,
}

/// Per-producer-stream output spec: interned stream name, schema, consumers.
pub(crate) struct StreamOutputs {
    pub(crate) stream: Arc<str>,
    pub(crate) schema: Schema,
    pub(crate) consumers: Vec<ConsumerEdge>,
}

/// All output streams of one component, keyed by stream id.
pub(crate) type OutputMap = HashMap<String, StreamOutputs>;

/// State shared by both collector kinds.
pub(crate) struct EmitterCore {
    pub(crate) component: Arc<str>,
    pub(crate) task_index: usize,
    pub(crate) outputs: Arc<OutputMap>,
    pub(crate) acker: Sender<AckerMsg>,
    pub(crate) inflight: Arc<AtomicI64>,
    pub(crate) metrics: Arc<ComponentMetrics>,
    pub(crate) rng: SmallRng,
    pub(crate) fault_plan: tchaos::FaultPlan,
}

impl EmitterCore {
    pub(crate) fn new(
        component: Arc<str>,
        task_index: usize,
        outputs: Arc<OutputMap>,
        acker: Sender<AckerMsg>,
        inflight: Arc<AtomicI64>,
        metrics: Arc<ComponentMetrics>,
        fault_plan: tchaos::FaultPlan,
    ) -> Self {
        EmitterCore {
            component,
            task_index,
            outputs,
            acker,
            inflight,
            metrics,
            rng: SmallRng::from_entropy(),
            fault_plan,
        }
    }

    /// Routes `values` on `stream` to every subscribed consumer task.
    /// `make_anchors` produces the per-delivery anchor list and lets the
    /// caller observe the generated edge ids.
    fn dispatch(
        &mut self,
        stream: &str,
        values: Vec<Value>,
        mut make_anchors: impl FnMut(&mut SmallRng) -> Anchors,
    ) -> usize {
        let out = self.outputs.get(stream).unwrap_or_else(|| {
            panic!(
                "component `{}` emitted on undeclared stream `{stream}`",
                self.component
            )
        });
        assert_eq!(
            values.len(),
            out.schema.len(),
            "component `{}` emitted {} values on stream `{stream}` which declares {} fields",
            self.component,
            values.len(),
            out.schema.len()
        );
        let values: Arc<[Value]> = values.into();
        let mut deliveries = 0usize;
        // Split borrows: `outputs` is behind an Arc we must not hold mutably
        // while calling `send_one`, so clone the cheap Arc first.
        let outputs = Arc::clone(&self.outputs);
        let out = outputs.get(stream).expect("checked above");
        for edge in &out.consumers {
            match edge.rule.route(&values, edge.senders.len()) {
                Route::One(i) => {
                    deliveries += self.send_one(edge, i, &values, out, &mut make_anchors);
                }
                Route::All => {
                    for i in 0..edge.senders.len() {
                        deliveries += self.send_one(edge, i, &values, out, &mut make_anchors);
                    }
                }
            }
        }
        self.metrics.emitted.fetch_add(1, Ordering::Relaxed);
        deliveries
    }

    fn send_one(
        &mut self,
        edge: &ConsumerEdge,
        task: usize,
        values: &Arc<[Value]>,
        out: &StreamOutputs,
        make_anchors: &mut impl FnMut(&mut SmallRng) -> Anchors,
    ) -> usize {
        let anchors = make_anchors(&mut self.rng);
        // Fault injection sits after `make_anchors` so the edge id is already
        // folded into the tree: a dropped delivery can never be acked, the
        // tree times out, and the spout replays — exactly a lost message.
        if self.fault_plan.should_fault(tchaos::FaultSite::TupleDrop) {
            return 0;
        }
        if self.fault_plan.should_fault(tchaos::FaultSite::TupleDelay) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let tuple = Tuple::from_parts(
            Arc::clone(values),
            out.schema.clone(),
            Arc::clone(&out.stream),
            Arc::clone(&self.component),
            self.task_index,
            anchors,
        );
        self.inflight.fetch_add(1, Ordering::Relaxed);
        if edge.senders[task].send(BoltMsg::Tuple(tuple)).is_err() {
            // Consumer already shut down; drop silently (only happens during
            // teardown).
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            0
        } else {
            1
        }
    }
}

/// Collector handed to [`crate::component::Spout::next_tuple`].
pub struct SpoutCollector {
    pub(crate) core: EmitterCore,
    /// Global slot of this spout task within the acker's notification table.
    pub(crate) slot: usize,
    pub(crate) emitted_roots: Arc<AtomicU64>,
}

impl SpoutCollector {
    /// Emits on the default stream. With `Some(msg_id)` the tuple tree is
    /// tracked and `ack`/`fail` will eventually be called with `msg_id`.
    pub fn emit(&mut self, values: Vec<Value>, msg_id: Option<u64>) {
        self.emit_on(DEFAULT_STREAM, values, msg_id);
    }

    /// Emits on a named stream.
    pub fn emit_on(&mut self, stream: &str, values: Vec<Value>, msg_id: Option<u64>) {
        self.emitted_roots.fetch_add(1, Ordering::Relaxed);
        match msg_id {
            None => {
                self.core
                    .dispatch(stream, values, |_| Arc::from(Vec::new()));
            }
            Some(id) => {
                let root: u64 = self.core.rng.gen();
                let mut xor = 0u64;
                self.core.dispatch(stream, values, |rng| {
                    let edge: u64 = rng.gen();
                    xor ^= edge;
                    Arc::from(vec![(root, edge)])
                });
                // Sent after the deliveries; the acker tolerates Xor-before-
                // Init, and a zero-delivery emit acks immediately.
                let _ = self.core.acker.send(AckerMsg::Init {
                    root,
                    xor,
                    slot: self.slot,
                    msg_id: id,
                });
            }
        }
    }
}

/// Collector handed to [`crate::component::Bolt::execute`] and `tick`.
pub struct BoltCollector {
    pub(crate) core: EmitterCore,
    /// Anchors of the tuple currently being executed (empty inside `tick`).
    pub(crate) current_anchors: Anchors,
    /// Accumulated XOR per root for the current execute call.
    pub(crate) pending: Vec<(u64, u64)>,
}

impl BoltCollector {
    /// Emits on the default stream, anchored to the input tuple.
    pub fn emit(&mut self, values: Vec<Value>) {
        self.emit_on(DEFAULT_STREAM, values);
    }

    /// Emits on a named stream, anchored to the input tuple.
    pub fn emit_on(&mut self, stream: &str, values: Vec<Value>) {
        let anchors = Arc::clone(&self.current_anchors);
        let mut new_edges: Vec<(u64, u64)> = Vec::new();
        self.core.dispatch(stream, values, |rng| {
            let pairs: Vec<(u64, u64)> = anchors
                .iter()
                .map(|&(root, _)| {
                    let edge: u64 = rng.gen();
                    new_edges.push((root, edge));
                    (root, edge)
                })
                .collect();
            Arc::from(pairs)
        });
        for (root, edge) in new_edges {
            self.xor(root, edge);
        }
    }

    /// Emits without anchoring (the tuple is not tracked; use for derived
    /// data whose loss is acceptable).
    pub fn emit_unanchored(&mut self, stream: &str, values: Vec<Value>) {
        self.core
            .dispatch(stream, values, |_| Arc::from(Vec::new()));
    }

    fn xor(&mut self, root: u64, edge: u64) {
        if let Some(slot) = self.pending.iter_mut().find(|(r, _)| *r == root) {
            slot.1 ^= edge;
        } else {
            self.pending.push((root, edge));
        }
    }

    /// Called by the runtime after `execute` returns `Ok`: folds the input
    /// edges and flushes the per-root XOR deltas to the acker.
    pub(crate) fn complete_ok(&mut self) {
        let anchors = Arc::clone(&self.current_anchors);
        for &(root, edge) in anchors.iter() {
            self.xor(root, edge);
        }
        for (root, xor) in self.pending.drain(..) {
            let _ = self.core.acker.send(AckerMsg::Xor { root, xor });
        }
    }

    /// Called by the runtime after `execute` returns `Err`: fails every root
    /// this input belongs to.
    pub(crate) fn complete_err(&mut self) {
        self.pending.clear();
        for &(root, _) in self.current_anchors.iter() {
            let _ = self.core.acker.send(AckerMsg::Fail { root });
        }
    }
}
