//! Output collectors: the emit path shared by spouts and bolts, including
//! routing, anchoring, in-flight accounting and batch coalescing.
//!
//! Emits do not go straight to the downstream queue. Each emitter keeps one
//! *value arena* per (stream, consumer edge, task): `dispatch` routes every
//! tuple individually (keyed placement never depends on batching) but only
//! copies its values into the target's arena and records a `(len, anchors)`
//! meta entry. Arenas flush — one shared [`BatchShared`] allocation, one
//! `send`, one wake for the whole batch — when they reach `batch_size`, and
//! are force-flushed at the end of every bolt execute run, on ticks, and
//! whenever a spout goes idle or its flush interval elapses. In-flight
//! accounting happens at arena-append time, so `wait_idle` counts buffered
//! tuples as in flight.
//!
//! The allocation budget per tuple on this path is ~zero amortized: values
//! are copied into a reused `Vec`, anchors are inline for the 0/1-root
//! cases ([`AnchorSet`]), and the per-flush cost (one arena, one meta list,
//! one `Arc`) is shared by up to `batch_size` tuples.

use crate::ack::{AckerMsg, InitEntry};
use crate::channel::{BatchSender, Weigh};
use crate::grouping::{Route, RoutingRule};
use crate::metrics::ComponentMetrics;
use crate::tuple::{AnchorSet, BatchShared, Schema, Tuple, Value, DEFAULT_STREAM};
use crossbeam::channel::Sender;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Per-tuple metadata inside a batch message: the tuple's width in the
/// shared value arena and its anchor set.
#[derive(Debug)]
pub(crate) struct TupleMeta {
    pub(crate) len: u32,
    pub(crate) anchors: AnchorSet,
}

/// A batch of tuples sharing one value arena, shipped as a single channel
/// message. The receiver materializes [`Tuple`] windows out of it (one
/// `Arc` bump each).
#[derive(Debug)]
pub(crate) struct TupleBatch {
    pub(crate) shared: Arc<BatchShared>,
    pub(crate) metas: Vec<TupleMeta>,
}

impl TupleBatch {
    /// Materializes every tuple of the batch into `run`.
    pub(crate) fn extend_into(self, run: &mut Vec<Tuple>) {
        let mut start = 0u32;
        for meta in self.metas {
            run.push(Tuple::from_batch(
                &self.shared,
                start,
                meta.len,
                meta.anchors,
            ));
            start += meta.len;
        }
    }
}

/// Messages delivered to bolt task queues.
#[derive(Debug)]
pub(crate) enum BoltMsg {
    Tuple(Tuple),
    Batch(TupleBatch),
    Tick,
    Shutdown,
}

impl Weigh for BoltMsg {
    /// Channel capacity and drain budgets are counted in tuples, so a
    /// batch message weighs as many slots as it carries.
    fn weight(&self) -> usize {
        match self {
            BoltMsg::Batch(b) => b.metas.len().max(1),
            _ => 1,
        }
    }
}

/// One subscription edge from a producer stream to a consumer component.
pub(crate) struct ConsumerEdge {
    pub(crate) rule: Arc<RoutingRule>,
    pub(crate) senders: Vec<BatchSender<BoltMsg>>,
}

/// Per-producer-stream output spec: interned stream name, schema, consumers.
pub(crate) struct StreamOutputs {
    pub(crate) stream: Arc<str>,
    pub(crate) schema: Schema,
    pub(crate) consumers: Vec<ConsumerEdge>,
}

/// All output streams of one component. Streams are index-aligned and
/// resolved by a short linear name scan (components declare a handful of
/// streams at most), replacing the per-emit `HashMap` + SipHash lookup of
/// the name-keyed layout.
#[derive(Default)]
pub(crate) struct OutputMap {
    pub(crate) streams: Vec<StreamOutputs>,
}

impl OutputMap {
    /// Adds a stream; emit-time indices follow insertion order.
    pub(crate) fn push(&mut self, out: StreamOutputs) {
        self.streams.push(out);
    }

    /// Resolves a stream id to its index + spec.
    #[inline]
    pub(crate) fn get(&self, name: &str) -> Option<(usize, &StreamOutputs)> {
        self.streams
            .iter()
            .position(|s| &*s.stream == name)
            .map(|i| (i, &self.streams[i]))
    }
}

/// Pending-value arena for one consumer task: tuples appended since the
/// last flush, as concatenated values plus per-tuple metas.
#[derive(Default)]
struct ValueBuf {
    values: Vec<Value>,
    metas: Vec<TupleMeta>,
}

/// Scatter state for one consumer edge: the shuffle stickiness for the
/// current batch epoch and one value arena per consumer task.
struct EdgeBuffers {
    sticky: Option<usize>,
    bufs: Vec<ValueBuf>,
}

/// State shared by both collector kinds.
pub(crate) struct EmitterCore {
    pub(crate) component: Arc<str>,
    pub(crate) task_index: usize,
    pub(crate) outputs: Arc<OutputMap>,
    pub(crate) acker: Sender<AckerMsg>,
    pub(crate) inflight: Arc<AtomicI64>,
    pub(crate) metrics: Arc<ComponentMetrics>,
    pub(crate) rng: SmallRng,
    pub(crate) fault_plan: tchaos::FaultPlan,
    batch_size: usize,
    /// Index-aligned with `outputs.streams`: per-edge scatter arenas.
    scatter: Vec<Vec<EdgeBuffers>>,
    /// Emits since the last flush, folded into the `emitted` counter at
    /// flush time (one atomic add per batch instead of one per tuple).
    emitted_pending: u64,
}

impl EmitterCore {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        component: Arc<str>,
        task_index: usize,
        outputs: Arc<OutputMap>,
        acker: Sender<AckerMsg>,
        inflight: Arc<AtomicI64>,
        metrics: Arc<ComponentMetrics>,
        fault_plan: tchaos::FaultPlan,
        batch_size: usize,
    ) -> Self {
        let scatter = outputs
            .streams
            .iter()
            .map(|out| {
                out.consumers
                    .iter()
                    .map(|edge| EdgeBuffers {
                        sticky: None,
                        bufs: (0..edge.senders.len())
                            .map(|_| ValueBuf::default())
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        EmitterCore {
            component,
            task_index,
            outputs,
            acker,
            inflight,
            metrics,
            rng: SmallRng::from_entropy(),
            fault_plan,
            batch_size: batch_size.max(1),
            scatter,
            emitted_pending: 0,
        }
    }

    /// Routes `values` on `stream` into the scatter arena of every
    /// subscribed consumer task, flushing any arena that reaches the batch
    /// size. `make_anchors` produces the per-delivery anchor set and lets
    /// the caller observe the generated edge ids.
    fn dispatch(
        &mut self,
        stream: &str,
        values: &[Value],
        mut make_anchors: impl FnMut(&mut SmallRng) -> AnchorSet,
    ) {
        // Split borrows: `outputs` is behind an Arc we must not hold while
        // mutating the scatter buffers, so clone the cheap Arc first.
        let outputs = Arc::clone(&self.outputs);
        let (stream_idx, out) = outputs.get(stream).unwrap_or_else(|| {
            panic!(
                "component `{}` emitted on undeclared stream `{stream}`",
                self.component
            )
        });
        assert_eq!(
            values.len(),
            out.schema.len(),
            "component `{}` emitted {} values on stream `{stream}` which declares {} fields",
            self.component,
            values.len(),
            out.schema.len()
        );
        let scatter = &mut self.scatter[stream_idx];
        for (edge, ebuf) in out.consumers.iter().zip(scatter.iter_mut()) {
            let n_tasks = edge.senders.len();
            if n_tasks == 0 {
                continue;
            }
            match edge.rule.route_buffered(values, n_tasks, &mut ebuf.sticky) {
                Route::One(task) => buffer_one(
                    &mut self.rng,
                    &self.fault_plan,
                    &self.inflight,
                    &self.component,
                    self.task_index,
                    out,
                    values,
                    &mut make_anchors,
                    self.batch_size,
                    edge,
                    ebuf,
                    task,
                ),
                Route::All => {
                    for task in 0..n_tasks {
                        buffer_one(
                            &mut self.rng,
                            &self.fault_plan,
                            &self.inflight,
                            &self.component,
                            self.task_index,
                            out,
                            values,
                            &mut make_anchors,
                            self.batch_size,
                            edge,
                            ebuf,
                            task,
                        );
                    }
                }
            }
        }
        self.emitted_pending += 1;
    }

    /// Flushes every non-empty scatter arena and resets shuffle
    /// stickiness, advancing the round-robin by whole batches.
    pub(crate) fn flush(&mut self) {
        if self.emitted_pending > 0 {
            self.metrics.emitted.add(self.emitted_pending);
            self.emitted_pending = 0;
        }
        let outputs = Arc::clone(&self.outputs);
        for (out, ebufs) in outputs.streams.iter().zip(self.scatter.iter_mut()) {
            for (edge, ebuf) in out.consumers.iter().zip(ebufs.iter_mut()) {
                for (task, buf) in ebuf.bufs.iter_mut().enumerate() {
                    flush_buffer(
                        &self.fault_plan,
                        &self.inflight,
                        &self.component,
                        self.task_index,
                        out,
                        &edge.senders[task],
                        buf,
                    );
                }
                ebuf.sticky = None;
            }
        }
    }
}

/// Anchors and appends one delivery to its scatter arena, flushing the
/// arena if it reached the batch size. (A free function so `dispatch` can
/// borrow `rng` and the scatter buffers simultaneously.)
#[allow(clippy::too_many_arguments)]
fn buffer_one(
    rng: &mut SmallRng,
    fault_plan: &tchaos::FaultPlan,
    inflight: &AtomicI64,
    component: &Arc<str>,
    task_index: usize,
    out: &StreamOutputs,
    values: &[Value],
    make_anchors: &mut impl FnMut(&mut SmallRng) -> AnchorSet,
    batch_size: usize,
    edge: &ConsumerEdge,
    ebuf: &mut EdgeBuffers,
    task: usize,
) {
    let anchors = make_anchors(rng);
    // Fault injection sits after `make_anchors` so the edge id is already
    // folded into the tree: a dropped delivery can never be acked, the
    // tree times out, and the spout replays — exactly a lost message.
    if fault_plan.should_fault(tchaos::FaultSite::TupleDrop) {
        return;
    }
    if fault_plan.should_fault(tchaos::FaultSite::TupleDelay) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let buf = &mut ebuf.bufs[task];
    buf.values.extend_from_slice(values);
    buf.metas.push(TupleMeta {
        len: values.len() as u32,
        anchors,
    });
    if buf.metas.len() >= batch_size {
        flush_buffer(
            fault_plan,
            inflight,
            component,
            task_index,
            out,
            &edge.senders[task],
            buf,
        );
        ebuf.sticky = None;
    }
}

/// Ships one scatter arena downstream as a single batch message (or a
/// single-tuple message for the trickle case). The arena `Vec`s keep their
/// capacity across flushes; the batch itself is one exact-size value slab
/// plus one meta list shared by every tuple in it.
#[allow(clippy::too_many_arguments)]
fn flush_buffer(
    fault_plan: &tchaos::FaultPlan,
    inflight: &AtomicI64,
    component: &Arc<str>,
    task_index: usize,
    out: &StreamOutputs,
    sender: &BatchSender<BoltMsg>,
    buf: &mut ValueBuf,
) {
    if buf.metas.is_empty() {
        return;
    }
    // The whole in-flight batch vanishes at the transport boundary: every
    // tree in it can no longer complete, times out, and replays from the
    // spout — the batched analogue of TupleDrop. The batch was never
    // counted in flight (accounting happens just before the send below).
    if fault_plan.should_fault(tchaos::FaultSite::BatchDrop) {
        buf.values.clear();
        buf.metas.clear();
        return;
    }
    // Count the whole batch in flight in one add, *before* the send: the
    // consumer's matching subtract (after its execute run) must never be
    // observable first, or `wait_idle` could see a spuriously idle window.
    inflight.fetch_add(buf.metas.len() as i64, Ordering::Relaxed);
    let shared = Arc::new(BatchShared {
        values: buf.values.as_slice().into(),
        schema: out.schema.clone(),
        stream: Arc::clone(&out.stream),
        src_component: Arc::clone(component),
        src_task: task_index,
    });
    buf.values.clear();
    let msg = if buf.metas.len() == 1 {
        let meta = buf.metas.pop().expect("len checked");
        BoltMsg::Tuple(Tuple::from_batch(&shared, 0, meta.len, meta.anchors))
    } else {
        let cap = buf.metas.len();
        let metas = std::mem::replace(&mut buf.metas, Vec::with_capacity(cap));
        BoltMsg::Batch(TupleBatch { shared, metas })
    };
    let weight = msg.weight();
    if sender.send(msg).is_err() {
        // Consumer already shut down; drop silently (only happens during
        // teardown).
        inflight.fetch_sub(weight as i64, Ordering::Relaxed);
    }
}

/// Folds `edge` into the per-root XOR accumulator `pending`.
fn fold_xor(pending: &mut Vec<(u64, u64)>, root: u64, edge: u64) {
    if let Some(slot) = pending.iter_mut().find(|(r, _)| *r == root) {
        slot.1 ^= edge;
    } else {
        pending.push((root, edge));
    }
}

/// Collector handed to [`crate::component::Spout::next_tuple`].
pub struct SpoutCollector {
    pub(crate) core: EmitterCore,
    /// Global slot of this spout task within the acker's notification table.
    pub(crate) slot: usize,
    pub(crate) emitted_roots: Arc<AtomicU64>,
    /// Root registrations accumulated since the last flush; shipped to the
    /// acker as one `InitBatch` alongside the flushed deliveries.
    pub(crate) pending_inits: Vec<InitEntry>,
    /// Stamps `emit_ms` on every tracked root so the acker can measure
    /// whole-pipeline latency (same clock as the timeout sweep).
    pub(crate) clock: tchaos::Clock,
    /// Cached `clock.now_ms()`, refreshed on every flush: reading the
    /// clock costs an `Instant::now` and emit batches span well under the
    /// 1 ms flush interval, so per-emit reads buy no extra precision.
    pub(crate) now_ms: u64,
}

impl SpoutCollector {
    /// Emits on the default stream. With `Some(msg_id)` the tuple tree is
    /// tracked and `ack`/`fail` will eventually be called with `msg_id`.
    pub fn emit(&mut self, values: Vec<Value>, msg_id: Option<u64>) {
        self.emit_values_on(DEFAULT_STREAM, &values, msg_id);
    }

    /// Emits on a named stream.
    pub fn emit_on(&mut self, stream: &str, values: Vec<Value>, msg_id: Option<u64>) {
        self.emit_values_on(stream, &values, msg_id);
    }

    /// Emits on the default stream from a borrowed slice — the
    /// allocation-free fast path (values are copied into the batch arena;
    /// build them in a stack array or a reused buffer).
    pub fn emit_values(&mut self, values: &[Value], msg_id: Option<u64>) {
        self.emit_values_on(DEFAULT_STREAM, values, msg_id);
    }

    /// Emits on a named stream from a borrowed slice.
    pub fn emit_values_on(&mut self, stream: &str, values: &[Value], msg_id: Option<u64>) {
        self.emitted_roots.fetch_add(1, Ordering::Relaxed);
        match msg_id {
            None => {
                self.core.dispatch(stream, values, |_| AnchorSet::None);
            }
            Some(id) => {
                let root: u64 = self.core.rng.gen();
                let mut xor = 0u64;
                self.core.dispatch(stream, values, |rng| {
                    let edge: u64 = rng.gen();
                    xor ^= edge;
                    AnchorSet::One((root, edge))
                });
                // The Init is buffered and rides the next flush rather
                // than paying one acker send per emit. Deliveries can
                // therefore be executed (even XOR-acked) before their Init
                // arrives; that is safe for the same reason Xor-before-Init
                // is: the entry only completes once Init has named the
                // owning spout, and a batch lost before delivery leaves
                // its XOR non-zero until the timeout sweep fails it back
                // to the spout.
                self.pending_inits.push(InitEntry {
                    root,
                    xor,
                    slot: self.slot,
                    msg_id: id,
                    emit_ms: self.now_ms,
                });
            }
        }
    }

    /// Flushes buffered emits downstream and the root registrations
    /// accumulated since the last flush to the acker (runtime-driven: on
    /// idle and on the configured flush interval).
    pub(crate) fn flush(&mut self) {
        self.now_ms = self.clock.now_ms();
        self.core.flush();
        match self.pending_inits.len() {
            0 => {}
            1 => {
                // Singleton flush (idle trickle) skips the Vec message.
                let InitEntry {
                    root,
                    xor,
                    slot,
                    msg_id,
                    emit_ms,
                } = self.pending_inits.pop().expect("len checked");
                let _ = self.core.acker.send(AckerMsg::Init {
                    root,
                    xor,
                    slot,
                    msg_id,
                    emit_ms,
                });
            }
            _ => {
                let batch = std::mem::take(&mut self.pending_inits);
                let _ = self.core.acker.send(AckerMsg::InitBatch(batch));
            }
        }
    }
}

/// Collector handed to [`crate::component::Bolt::execute`] and `tick`.
pub struct BoltCollector {
    pub(crate) core: EmitterCore,
    /// Anchors of the tuple currently being executed (empty inside `tick`;
    /// the union of the run's anchors inside `execute_batch`).
    pub(crate) current_anchors: AnchorSet,
    /// XOR accumulated by emits of the tuple currently executing. Folded
    /// into `run_pending` when the tuple completes, discarded when it
    /// fails (its deliveries become orphans, exactly as unbatched).
    pub(crate) tuple_pending: Vec<(u64, u64)>,
    /// XOR deltas accumulated across the whole execute run; folded per
    /// root and shipped to the acker as one `XorBatch` when the run ends.
    pub(crate) run_pending: Vec<(u64, u64)>,
}

impl BoltCollector {
    /// Emits on the default stream, anchored to the input tuple.
    pub fn emit(&mut self, values: Vec<Value>) {
        self.emit_values_on(DEFAULT_STREAM, &values);
    }

    /// Emits on a named stream, anchored to the input tuple.
    pub fn emit_on(&mut self, stream: &str, values: Vec<Value>) {
        self.emit_values_on(stream, &values);
    }

    /// Emits on the default stream from a borrowed slice — the
    /// allocation-free fast path.
    pub fn emit_values(&mut self, values: &[Value]) {
        self.emit_values_on(DEFAULT_STREAM, values);
    }

    /// Emits on a named stream from a borrowed slice, anchored to the
    /// input tuple.
    pub fn emit_values_on(&mut self, stream: &str, values: &[Value]) {
        let anchors = self.current_anchors.clone();
        let tuple_pending = &mut self.tuple_pending;
        self.core.dispatch(stream, values, |rng| match &anchors {
            AnchorSet::None => AnchorSet::None,
            AnchorSet::One((root, _)) => {
                let edge: u64 = rng.gen();
                fold_xor(tuple_pending, *root, edge);
                AnchorSet::One((*root, edge))
            }
            AnchorSet::Many(pairs) => {
                let new: Vec<(u64, u64)> = pairs
                    .iter()
                    .map(|&(root, _)| {
                        let edge: u64 = rng.gen();
                        fold_xor(tuple_pending, root, edge);
                        (root, edge)
                    })
                    .collect();
                AnchorSet::Many(new.into())
            }
        });
    }

    /// Emits without anchoring (the tuple is not tracked; use for derived
    /// data whose loss is acceptable).
    pub fn emit_unanchored(&mut self, stream: &str, values: Vec<Value>) {
        self.core.dispatch(stream, &values, |_| AnchorSet::None);
    }

    /// Re-anchors subsequent emits to `tuple`. Only needed inside a custom
    /// [`crate::component::Bolt::execute_batch`] that emits per input
    /// tuple; the runtime anchors `execute` calls automatically.
    pub fn anchor_to(&mut self, tuple: &Tuple) {
        self.current_anchors = tuple.anchors.clone();
    }

    /// Called by the runtime when the current tuple completes: appends its
    /// input edges and its emitted edges to the run accumulator. Deltas are
    /// not folded per root here — a linear scan per tuple is quadratic in
    /// the run length — but sorted and coalesced once in `flush_run`.
    pub(crate) fn complete_ok(&mut self) {
        let BoltCollector {
            current_anchors,
            tuple_pending,
            run_pending,
            ..
        } = self;
        run_pending.extend_from_slice(current_anchors.pairs());
        run_pending.append(tuple_pending);
    }

    /// Called by the runtime when the current tuple fails: fails every
    /// root this input belongs to. Its emitted edges are discarded (any
    /// already-buffered children deliver as orphans, as unbatched).
    pub(crate) fn complete_err(&mut self) {
        self.tuple_pending.clear();
        for &(root, _) in self.current_anchors.pairs() {
            let _ = self.core.acker.send(AckerMsg::Fail { root });
        }
    }

    /// Called by the runtime when a whole `execute_batch` run fails:
    /// fails each distinct root across the run. Roots are deduplicated —
    /// double-failing one root would re-create a vacant acker entry that
    /// lingers (gauged as pending) until the timeout sweep.
    pub(crate) fn fail_run(&mut self, tuples: &[Tuple]) {
        self.tuple_pending.clear();
        let mut roots: Vec<u64> = tuples
            .iter()
            .flat_map(|t| t.anchors.pairs().iter().map(|&(root, _)| root))
            .collect();
        roots.sort_unstable();
        roots.dedup();
        for root in roots {
            let _ = self.core.acker.send(AckerMsg::Fail { root });
        }
    }

    /// Ends an execute run: flushes buffered emits downstream, folds the
    /// run's XOR deltas per root (one sort + merge of adjacent entries —
    /// XOR is order-independent, so reordering is free) and ships them to
    /// the acker as a single message.
    pub(crate) fn flush_run(&mut self) {
        self.core.flush();
        if self.run_pending.len() == 1 {
            // Singleton runs (batch size 1, idle trickle) skip the Vec.
            let (root, xor) = self.run_pending.pop().expect("len checked");
            let _ = self.core.acker.send(AckerMsg::Xor { root, xor });
        } else if !self.run_pending.is_empty() {
            self.run_pending.sort_unstable_by_key(|&(root, _)| root);
            self.run_pending.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 ^= a.1;
                    true
                } else {
                    false
                }
            });
            let batch = std::mem::take(&mut self.run_pending);
            let _ = self.core.acker.send(AckerMsg::XorBatch(batch));
        }
    }
}
