//! A minimal XML parser, sufficient for the topology configuration files of
//! the paper's Fig. 7 (elements, attributes, text, comments, self-closing
//! tags). Not a general-purpose XML implementation: no namespaces, DTDs or
//! CDATA.

use std::fmt;

/// Parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element (trimmed).
    pub text: String,
}

impl XmlNode {
    /// First attribute with the given name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child with the given tag name.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name).map(|c| c.text.as_str())
    }
}

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

/// Parses a document and returns its single root element.
pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, XML declarations and processing
    /// instructions between top-level constructs.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(i) => self.pos += i + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        debug_assert!(self.starts_with("<!--"));
        match self.input[self.pos + 4..]
            .windows(3)
            .position(|w| w == b"-->")
        {
            Some(i) => {
                self.pos += 4 + i + 3;
                Ok(())
            }
            None => Err(self.err("unterminated comment")),
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(XmlNode {
                        name,
                        attrs,
                        children: Vec::new(),
                        text: String::new(),
                    });
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected `=` in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    attrs.push((key, unescape(&raw)));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected `</{name}>`, found `</{close}>`"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>` in close tag"));
                }
                self.pos += 1;
                return Ok(XmlNode {
                    name,
                    attrs,
                    children,
                    text: text.trim().to_string(),
                });
            } else if self.peek() == Some(b'<') {
                children.push(self.parse_element()?);
            } else if self.peek().is_some() {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                text.push_str(&unescape(&String::from_utf8_lossy(
                    &self.input[start..self.pos],
                )));
            } else {
                return Err(self.err(&format!("unexpected end of input inside `<{name}>`")));
            }
        }
    }
}

fn escape(s: &str) -> String {
    if !s.contains(['&', '<', '>', '"', '\'']) {
        return s.to_string();
    }
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

impl fmt::Display for XmlNode {
    /// Serialises the element (text content is emitted before child
    /// elements; mixed-content interleaving is not preserved).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.name)?;
        for (k, v) in &self.attrs {
            write!(f, " {k}=\"{}\"", escape(v))?;
        }
        if self.children.is_empty() && self.text.is_empty() {
            return write!(f, "/>");
        }
        write!(f, ">")?;
        write!(f, "{}", escape(&self.text))?;
        for child in &self.children {
            write!(f, "{child}")?;
        }
        write!(f, "</{}>", self.name)
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse(r#"<topology name="cf-test"><spout name="s"/></topology>"#).unwrap();
        assert_eq!(doc.name, "topology");
        assert_eq!(doc.attr("name"), Some("cf-test"));
        assert_eq!(doc.children.len(), 1);
        assert_eq!(doc.children[0].name, "spout");
        assert_eq!(doc.children[0].attr("name"), Some("s"));
    }

    #[test]
    fn parses_text_content() {
        let doc = parse("<fields>  user, item, action  </fields>").unwrap();
        assert_eq!(doc.text, "user, item, action");
    }

    #[test]
    fn parses_nested_with_mixed_children() {
        let doc = parse(
            r#"<bolt name="pre">
                 <grouping type="field">
                   <fields>user</fields>
                   <stream_id>user_action</stream_id>
                 </grouping>
               </bolt>"#,
        )
        .unwrap();
        let g = doc.child("grouping").unwrap();
        assert_eq!(g.attr("type"), Some("field"));
        assert_eq!(g.child_text("fields"), Some("user"));
        assert_eq!(g.child_text("stream_id"), Some("user_action"));
    }

    #[test]
    fn skips_comments_and_declaration() {
        let doc =
            parse("<?xml version=\"1.0\"?>\n<!-- topology -->\n<a><!-- inner --><b/></a>").unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.children.len(), 1);
    }

    #[test]
    fn unescapes_entities() {
        let doc = parse(r#"<a v="&lt;x&gt; &amp; &quot;y&quot;">&apos;t&apos;</a>"#).unwrap();
        assert_eq!(doc.attr("v"), Some(r#"<x> & "y""#));
        assert_eq!(doc.text, "'t'");
    }

    #[test]
    fn rejects_mismatched_close() {
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a foo=>").is_err());
        assert!(parse("<a foo=\"x>").is_err());
        assert!(parse("<!-- never closed").is_err());
    }

    #[test]
    fn single_quotes_ok() {
        let doc = parse("<a v='1'/>").unwrap();
        assert_eq!(doc.attr("v"), Some("1"));
    }

    #[test]
    fn children_named_iterates_all() {
        let doc = parse("<a><b i='1'/><c/><b i='2'/></a>").unwrap();
        let ids: Vec<_> = doc
            .children_named("b")
            .map(|n| n.attr("i").unwrap())
            .collect();
        assert_eq!(ids, vec!["1", "2"]);
    }
}
