//! Integration of the three operational pieces: profile a running
//! topology, derive a parallelism plan (§7 future work), and check the
//! plan schedules onto a simulated cluster (Fig. 1).

use std::time::Duration;
use tstorm::cluster::Nimbus;
use tstorm::planner::{plan_from_metrics, PlannerConfig};
use tstorm::prelude::*;

struct CountSpout(u64);

impl Spout for CountSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        if self.0 == 0 {
            return false;
        }
        self.0 -= 1;
        collector.emit(vec![Value::U64(self.0)], Some(self.0));
        true
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

struct PassBolt;

impl Bolt for PassBolt {
    fn execute(&mut self, t: &Tuple, c: &mut BoltCollector) -> Result<(), String> {
        c.emit(t.values().to_vec());
        Ok(())
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

#[test]
fn profile_plan_schedule() {
    // 1. Profile a small run.
    let mut builder = TopologyBuilder::new();
    builder.set_spout("spout", || CountSpout(5_000), 1);
    builder
        .set_bolt("stage1", || PassBolt, 2)
        .shuffle_grouping("spout");
    builder
        .set_bolt("sink", || |_t: &Tuple, _c: &mut BoltCollector| Ok(()), 2)
        .fields_grouping("stage1", ["key"]);
    let handle = builder.build().unwrap().launch();
    assert!(handle.wait_idle(Duration::from_secs(30)));
    let metrics = handle.shutdown(Duration::from_secs(5));

    // 2. Plan for a production rate.
    let plan = plan_from_metrics(
        &metrics,
        "spout",
        250_000.0,
        &PlannerConfig {
            headroom: 1.5,
            min_tasks: 1,
            max_tasks: 32,
        },
    )
    .expect("plan");
    assert!(plan.total_tasks() >= 3, "at least one task per component");

    // 3. Schedule the plan on a simulated cluster with enough slots.
    let mut nimbus = Nimbus::new();
    let slots_needed = plan.total_tasks();
    let per_supervisor = slots_needed.div_ceil(3).max(1);
    for id in 0..3 {
        nimbus.add_supervisor(id, per_supervisor);
    }
    nimbus
        .submit_topology(
            plan.components
                .iter()
                .map(|c| (c.component.clone(), c.tasks)),
        )
        .expect("cluster has capacity");
    nimbus.check_invariants().expect("valid schedule");

    // 4. A supervisor failure keeps the plan running when capacity allows.
    nimbus.add_supervisor(99, per_supervisor);
    nimbus.fail_supervisor(0).expect("failover");
    nimbus.check_invariants().expect("valid after failover");
}
