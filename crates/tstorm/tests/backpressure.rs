//! Backpressure: bounded task queues block fast producers instead of
//! dropping tuples, so a slow consumer still sees everything.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tstorm::prelude::*;
use tstorm::topology::TopologyConfig;

struct BurstSpout {
    left: u64,
}

impl Spout for BurstSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        collector.emit(vec![Value::U64(self.left)], Some(self.left));
        true
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

struct FanBolt;

impl Bolt for FanBolt {
    fn execute(&mut self, t: &Tuple, c: &mut BoltCollector) -> Result<(), String> {
        for _ in 0..3 {
            c.emit(t.values().to_vec());
        }
        Ok(())
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

struct SlowBolt {
    processed: Arc<AtomicU64>,
}

impl Bolt for SlowBolt {
    fn execute(&mut self, _t: &Tuple, _c: &mut BoltCollector) -> Result<(), String> {
        std::thread::sleep(Duration::from_micros(300));
        self.processed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[test]
fn tiny_queue_slow_consumer_loses_nothing() {
    const N: u64 = 2_000;
    let processed = Arc::new(AtomicU64::new(0));
    let mut builder = TopologyBuilder::new().with_config(TopologyConfig {
        queue_capacity: 4, // aggressive: producers must block constantly
        message_timeout: Duration::from_secs(60),
        ..Default::default()
    });
    builder.set_spout("burst", || BurstSpout { left: N }, 1);
    {
        let processed = Arc::clone(&processed);
        builder
            .set_bolt(
                "slow",
                move || SlowBolt {
                    processed: Arc::clone(&processed),
                },
                2,
            )
            .shuffle_grouping("burst");
    }
    let handle = builder.build().unwrap().launch();
    assert!(handle.wait_idle(Duration::from_secs(60)), "must drain");
    let metrics = handle.shutdown(Duration::from_secs(5));
    assert_eq!(processed.load(Ordering::Relaxed), N);
    let slow = metrics.iter().find(|m| m.component == "slow").unwrap();
    assert_eq!(slow.executed, N);
    assert_eq!(slow.failed, 0);
}

#[test]
fn deep_pipeline_with_fanout_drains_under_backpressure() {
    // Three stages, middle stage fans out 3×, queues of 8.
    const N: u64 = 500;
    let sink_count = Arc::new(AtomicU64::new(0));
    let mut builder = TopologyBuilder::new().with_config(TopologyConfig {
        queue_capacity: 8,
        message_timeout: Duration::from_secs(60),
        ..Default::default()
    });
    builder.set_spout("burst", || BurstSpout { left: N }, 1);
    builder
        .set_bolt("fan", || FanBolt, 2)
        .shuffle_grouping("burst");
    {
        let sink_count = Arc::clone(&sink_count);
        builder
            .set_bolt(
                "sink",
                move || {
                    let sink_count = Arc::clone(&sink_count);
                    move |_t: &Tuple, _c: &mut BoltCollector| {
                        sink_count.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                },
                2,
            )
            .fields_grouping("fan", ["key"]);
    }
    let handle = builder.build().unwrap().launch();
    assert!(handle.wait_idle(Duration::from_secs(60)));
    handle.shutdown(Duration::from_secs(5));
    assert_eq!(sink_count.load(Ordering::Relaxed), N * 3);
}
