//! Temporary probe: measures process CPU while a topology sits idle.
//! Run with: cargo test -p tstorm --release --test idle_cpu_probe -- --nocapture --ignored

use std::time::Duration;
use tstorm::prelude::*;

struct IdleSpout;
impl Spout for IdleSpout {
    fn next_tuple(&mut self, _c: &mut SpoutCollector) -> bool {
        false
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["v"])]
    }
}

fn cpu_jiffies() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap();
    // utime is field 14, stime field 15 (1-indexed); fields after comm (in parens).
    let after = stat.rsplit(')').next().unwrap();
    let f: Vec<&str> = after.split_whitespace().collect();
    f[11].parse::<u64>().unwrap() + f[12].parse::<u64>().unwrap()
}

#[test]
#[ignore]
fn idle_cpu() {
    let mut b = TopologyBuilder::new();
    b.set_spout("s", || IdleSpout, 4);
    b.set_bolt("b", || |_t: &Tuple, _c: &mut BoltCollector| Ok(()), 4)
        .shuffle_grouping("s");
    let handle = b.build().unwrap().launch();
    std::thread::sleep(Duration::from_millis(300)); // settle
    let t0 = std::time::Instant::now();
    let j0 = cpu_jiffies();
    std::thread::sleep(Duration::from_secs(4));
    let j1 = cpu_jiffies();
    let wall = t0.elapsed().as_secs_f64();
    let hz = 100.0; // USER_HZ
    let cpu_pct = (j1 - j0) as f64 / hz / wall * 100.0;
    println!("IDLE_CPU_PCT {cpu_pct:.2}");
    handle.shutdown(Duration::from_secs(2));
}
