//! Fault-tolerance tests: panicking bolts are rebuilt from their factory,
//! failed tuple trees are reported to the spout, and a replaying spout
//! achieves at-least-once processing — the Storm behaviour TencentRec's
//! state-free bolts rely on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tstorm::prelude::*;

/// Spout that re-enqueues failed message ids (at-least-once source).
struct ReplaySpout {
    queue: Arc<Mutex<VecDeque<u64>>>,
    acked: Arc<AtomicU64>,
}

impl Spout for ReplaySpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        let next = self.queue.lock().unwrap().pop_front();
        match next {
            Some(v) => {
                collector.emit(vec![Value::U64(v)], Some(v));
                true
            }
            None => false,
        }
    }
    fn ack(&mut self, _id: u64) {
        self.acked.fetch_add(1, Ordering::Relaxed);
    }
    fn fail(&mut self, id: u64) {
        self.queue.lock().unwrap().push_back(id); // replay
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

/// Bolt that panics the first time it sees each key, then succeeds.
struct FlakyBolt {
    seen: Arc<Mutex<std::collections::HashSet<u64>>>,
    processed: Arc<AtomicU64>,
}

impl Bolt for FlakyBolt {
    fn execute(&mut self, tuple: &Tuple, _c: &mut BoltCollector) -> Result<(), String> {
        let key = tuple.u64("key");
        let first_time = self.seen.lock().unwrap().insert(key);
        if first_time {
            panic!("simulated worker crash on key {key}");
        }
        self.processed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[test]
fn panicking_bolt_is_rebuilt_and_tuples_replay() {
    const N: u64 = 20;
    let queue = Arc::new(Mutex::new((0..N).collect::<VecDeque<u64>>()));
    let acked = Arc::new(AtomicU64::new(0));
    let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
    let processed = Arc::new(AtomicU64::new(0));
    let generation = Arc::new(AtomicU64::new(0));

    // Quiet the default panic hook: the simulated crashes are expected.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut builder = TopologyBuilder::new();
    {
        let queue = Arc::clone(&queue);
        let acked = Arc::clone(&acked);
        builder.set_spout(
            "spout",
            move || ReplaySpout {
                queue: Arc::clone(&queue),
                acked: Arc::clone(&acked),
            },
            1,
        );
    }
    {
        let seen = Arc::clone(&seen);
        let processed = Arc::clone(&processed);
        let generation = Arc::clone(&generation);
        builder
            .set_bolt(
                "flaky",
                move || {
                    // Generation counter: bumped every time the factory
                    // runs (initial tasks, the probe, and every rebuild).
                    generation.fetch_add(1, Ordering::Relaxed);
                    FlakyBolt {
                        seen: Arc::clone(&seen),
                        processed: Arc::clone(&processed),
                    }
                },
                2,
            )
            .fields_grouping("spout", ["key"]);
    }
    let handle = builder.build().unwrap().launch();

    // Every key panics once and is replayed once; eventually all N acks
    // arrive.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while acked.load(Ordering::Relaxed) < N && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown(Duration::from_secs(5));
    std::panic::set_hook(prev_hook);

    assert_eq!(acked.load(Ordering::Relaxed), N, "all trees complete");
    assert_eq!(
        processed.load(Ordering::Relaxed),
        N,
        "every tuple processed on its retry"
    );
    // Factory ran once per initial task (+1 probe at registration) plus
    // once per crash.
    let generations = generation.load(Ordering::Relaxed);
    assert!(
        generations >= 2 + N,
        "bolt should have been rebuilt after each crash: {generations}"
    );
}
