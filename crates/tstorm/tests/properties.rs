//! Property tests for the stream framework: XML round-trips, grouping
//! partition laws, and at-least-once completion under the ack protocol.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tstorm::prelude::*;
use tstorm::xml::{parse, XmlNode};

// ---------------------------------------------------------------------
// XML round-trip
// ---------------------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,8}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Arbitrary printable text including characters that need escaping;
    // leading/trailing whitespace is trimmed by the parser, so exclude it.
    "[a-zA-Z0-9<>&\"' .,:_-]{0,16}".prop_map(|s| s.trim().to_string())
}

fn arb_node() -> impl Strategy<Value = XmlNode> {
    let leaf = (
        arb_name(),
        prop::collection::vec((arb_name(), arb_text()), 0..3),
        arb_text(),
    )
        .prop_map(|(name, attrs, text)| XmlNode {
            name,
            attrs,
            children: Vec::new(),
            text,
        });
    leaf.prop_recursive(3, 16, 4, |inner| {
        (
            arb_name(),
            prop::collection::vec((arb_name(), arb_text()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| XmlNode {
                name,
                attrs,
                // Mixed content ordering is not preserved by Display, so
                // nodes with children carry no text in this generator.
                children,
                text: String::new(),
            })
    })
}

/// Attribute names must be unique for the round-trip comparison (the
/// parser keeps both but `attr()` returns the first).
fn dedup_attrs(node: &mut XmlNode) {
    node.attrs.sort_by(|a, b| a.0.cmp(&b.0));
    node.attrs.dedup_by(|a, b| a.0 == b.0);
    for child in &mut node.children {
        dedup_attrs(child);
    }
}

proptest! {
    #[test]
    fn xml_display_parse_round_trip(mut node in arb_node()) {
        dedup_attrs(&mut node);
        let serialized = node.to_string();
        let reparsed = parse(&serialized)
            .unwrap_or_else(|e| panic!("serialised XML must parse: {e}\n{serialized}"));
        prop_assert_eq!(reparsed, node);
    }
}

// ---------------------------------------------------------------------
// Grouping partition laws (via a live topology)
// ---------------------------------------------------------------------

struct VecSpout {
    values: Vec<u64>,
}

impl Spout for VecSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        match self.values.pop() {
            Some(v) => {
                collector.emit(vec![Value::U64(v)], Some(v));
                true
            }
            None => false,
        }
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

#[derive(Clone, Default)]
struct Seen {
    /// (key, task) observations.
    log: Arc<Mutex<Vec<(u64, usize)>>>,
    count: Arc<AtomicU64>,
}

struct RecordBolt {
    seen: Seen,
    task: usize,
}

impl Bolt for RecordBolt {
    fn prepare(&mut self, ctx: &TaskContext) {
        self.task = ctx.task_index;
    }
    fn execute(&mut self, tuple: &Tuple, _c: &mut BoltCollector) -> Result<(), String> {
        self.seen.count.fetch_add(1, Ordering::Relaxed);
        self.seen
            .log
            .lock()
            .unwrap()
            .push((tuple.u64("key"), self.task));
        Ok(())
    }
}

fn run_grouped(keys: Vec<u64>, grouping: Grouping, tasks: usize) -> Vec<(u64, usize)> {
    let seen = Seen::default();
    let mut builder = TopologyBuilder::new();
    {
        let keys = keys.clone();
        builder.set_spout(
            "spout",
            move || VecSpout {
                values: keys.clone(),
            },
            1,
        );
    }
    {
        let seen = seen.clone();
        builder
            .set_bolt(
                "record",
                move || RecordBolt {
                    seen: seen.clone(),
                    task: 0,
                },
                tasks,
            )
            .grouping_on("spout", DEFAULT_STREAM, grouping);
    }
    let handle = builder.build().unwrap().launch();
    assert!(handle.wait_idle(Duration::from_secs(20)));
    handle.shutdown(Duration::from_secs(5));
    Arc::try_unwrap(seen.log).unwrap().into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fields grouping: every tuple delivered exactly once, and all tuples
    /// with equal keys land on the same task.
    #[test]
    fn fields_grouping_partitions_by_key(
        keys in prop::collection::vec(0u64..32, 1..60),
        tasks in 1usize..6,
    ) {
        let log = run_grouped(keys.clone(), Grouping::fields(["key"]), tasks);
        prop_assert_eq!(log.len(), keys.len(), "exactly-once delivery");
        let mut assignment: std::collections::HashMap<u64, usize> = Default::default();
        for (key, task) in log {
            if let Some(&existing) = assignment.get(&key) {
                prop_assert_eq!(existing, task, "key {} split across tasks", key);
            } else {
                assignment.insert(key, task);
            }
        }
    }

    /// All grouping: every task receives every tuple.
    #[test]
    fn all_grouping_broadcasts(
        keys in prop::collection::vec(0u64..32, 1..40),
        tasks in 1usize..5,
    ) {
        let log = run_grouped(keys.clone(), Grouping::All, tasks);
        prop_assert_eq!(log.len(), keys.len() * tasks);
        for t in 0..tasks {
            let per_task = log.iter().filter(|&&(_, task)| task == t).count();
            prop_assert_eq!(per_task, keys.len(), "task {} missed tuples", t);
        }
    }

    /// Global grouping: only task 0 receives tuples.
    #[test]
    fn global_grouping_single_task(
        keys in prop::collection::vec(0u64..32, 1..40),
        tasks in 1usize..5,
    ) {
        let log = run_grouped(keys.clone(), Grouping::Global, tasks);
        prop_assert_eq!(log.len(), keys.len());
        prop_assert!(log.iter().all(|&(_, task)| task == 0));
    }
}

// ---------------------------------------------------------------------
// Ack protocol: every tracked root completes through arbitrary fan-out.
// ---------------------------------------------------------------------

struct FanoutBolt {
    copies: usize,
}

impl Bolt for FanoutBolt {
    fn execute(&mut self, tuple: &Tuple, collector: &mut BoltCollector) -> Result<(), String> {
        for _ in 0..self.copies {
            collector.emit(tuple.values().to_vec());
        }
        Ok(())
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

struct TrackingSpout {
    values: Vec<u64>,
    acked: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
}

impl Spout for TrackingSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        match self.values.pop() {
            Some(v) => {
                collector.emit(vec![Value::U64(v)], Some(v));
                true
            }
            None => false,
        }
    }
    fn ack(&mut self, _id: u64) {
        self.acked.fetch_add(1, Ordering::Relaxed);
    }
    fn fail(&mut self, _id: u64) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key"])]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every tracked tuple tree is acked exactly once regardless of
    /// fan-out depth and width.
    #[test]
    fn tuple_trees_complete(
        n_roots in 1u64..40,
        copies in 1usize..4,
        tasks in 1usize..4,
    ) {
        let acked = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));
        let mut builder = TopologyBuilder::new();
        {
            let acked = Arc::clone(&acked);
            let failed = Arc::clone(&failed);
            builder.set_spout("spout", move || TrackingSpout {
                values: (0..n_roots).collect(),
                acked: Arc::clone(&acked),
                failed: Arc::clone(&failed),
            }, 1);
        }
        builder
            .set_bolt("fan1", move || FanoutBolt { copies }, tasks)
            .shuffle_grouping("spout");
        builder
            .set_bolt("sink", || |_t: &Tuple, _c: &mut BoltCollector| Ok(()), tasks)
            .shuffle_grouping("fan1");
        let handle = builder.build().unwrap().launch();
        prop_assert!(handle.wait_idle(Duration::from_secs(30)));
        // Acks are delivered to the spout asynchronously after the tree
        // completes; poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while acked.load(Ordering::Relaxed) + failed.load(Ordering::Relaxed) < n_roots
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.shutdown(Duration::from_secs(5));
        prop_assert_eq!(acked.load(Ordering::Relaxed), n_roots);
        prop_assert_eq!(failed.load(Ordering::Relaxed), 0);
    }
}
