//! Batched-transport equivalence: whatever the batch size, flush interval,
//! or tick cadence, fields grouping must deliver every tuple exactly once
//! and keep per-key order identical to unbatched execution. Batching is a
//! transport optimisation — it must be invisible to the dataflow.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tstorm::prelude::*;

/// Emits `(key, seq)` pairs in a fixed global order.
struct SeqSpout {
    pending: Vec<(u64, u64)>,
}

impl Spout for SeqSpout {
    fn next_tuple(&mut self, collector: &mut SpoutCollector) -> bool {
        match self.pending.pop() {
            Some((key, seq)) => {
                collector.emit(vec![Value::U64(key), Value::U64(seq)], Some(seq));
                true
            }
            None => false,
        }
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key", "seq"])]
    }
}

#[derive(Clone, Default)]
struct Deliveries {
    /// (key, seq, task) in arrival order at each task.
    log: Arc<Mutex<Vec<(u64, u64, usize)>>>,
    count: Arc<AtomicU64>,
}

struct RecordBolt {
    seen: Deliveries,
    task: usize,
}

impl Bolt for RecordBolt {
    fn prepare(&mut self, ctx: &TaskContext) {
        self.task = ctx.task_index;
    }
    fn execute(&mut self, tuple: &Tuple, _c: &mut BoltCollector) -> Result<(), String> {
        self.seen.count.fetch_add(1, Ordering::Relaxed);
        self.seen
            .log
            .lock()
            .unwrap()
            .push((tuple.u64("key"), tuple.u64("seq"), self.task));
        Ok(())
    }
}

/// A middle bolt so the fields-grouped hop crosses a batched edge fed by
/// another bolt's scatter buffers, not just the spout's.
struct ForwardBolt;

impl Bolt for ForwardBolt {
    fn execute(&mut self, tuple: &Tuple, collector: &mut BoltCollector) -> Result<(), String> {
        collector.emit(tuple.values().to_vec());
        Ok(())
    }
    fn declare_outputs(&self) -> Vec<StreamDef> {
        vec![StreamDef::new(DEFAULT_STREAM, ["key", "seq"])]
    }
}

fn run_batched(
    stream: &[(u64, u64)],
    batch_size: usize,
    flush_interval: Duration,
    tick: Option<Duration>,
    tasks: usize,
) -> Vec<(u64, u64, usize)> {
    let seen = Deliveries::default();
    let config = TopologyConfig {
        batch_size,
        flush_interval,
        ..Default::default()
    };
    let mut builder = TopologyBuilder::new().with_config(config);
    {
        // The spout pops from the back; reverse so emission order matches
        // `stream` order.
        let mut pending: Vec<(u64, u64)> = stream.to_vec();
        pending.reverse();
        builder.set_spout(
            "actions",
            move || SeqSpout {
                pending: pending.clone(),
            },
            1,
        );
    }
    {
        let mut decl = builder.set_bolt("forward", || ForwardBolt, 1);
        decl.shuffle_grouping("actions");
        if let Some(t) = tick {
            decl.tick_interval(t);
        }
    }
    {
        let seen = seen.clone();
        let mut decl = builder.set_bolt(
            "record",
            move || RecordBolt {
                seen: seen.clone(),
                task: 0,
            },
            tasks,
        );
        decl.fields_grouping("forward", ["key"]);
        if let Some(t) = tick {
            decl.tick_interval(t);
        }
    }
    let handle = builder.build().unwrap().launch();
    assert!(
        handle.wait_idle(Duration::from_secs(30)),
        "topology must drain"
    );
    handle.shutdown(Duration::from_secs(5));
    Arc::try_unwrap(seen.log).unwrap().into_inner().unwrap()
}

/// Per-key sequence lists from a delivery log, plus the key→task map.
fn per_key(log: &[(u64, u64, usize)]) -> std::collections::BTreeMap<u64, Vec<u64>> {
    let mut out: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for &(key, seq, _) in log {
        out.entry(key).or_default().push(seq);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched and unbatched runs of the same stream deliver the same
    /// multiset of tuples with identical per-key order — across flush-size
    /// boundaries (batch sizes that don't divide the stream), tick
    /// boundaries, and sub-batch flush intervals.
    #[test]
    fn per_key_order_survives_batching(
        keys in prop::collection::vec(0u64..8, 1..80),
        tasks in 1usize..4,
    ) {
        let stream: Vec<(u64, u64)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let baseline = run_batched(
            &stream, 1, Duration::from_millis(1), None, tasks);
        let base_keys = per_key(&baseline);

        for (batch, tick) in [
            (3, None),
            (64, None),
            (64, Some(Duration::from_millis(2))),
        ] {
            let log = run_batched(
                &stream, batch, Duration::from_millis(1), tick, tasks);
            prop_assert_eq!(log.len(), stream.len(), "exactly-once delivery");
            prop_assert_eq!(
                &per_key(&log), &base_keys,
                "per-key order diverged at batch={} tick={:?}", batch, tick
            );
            // Fields grouping still pins each key to one task.
            let mut assignment: std::collections::HashMap<u64, usize> = Default::default();
            for (key, _, task) in log {
                let t = *assignment.entry(key).or_insert(task);
                prop_assert_eq!(t, task, "key {} split across tasks", key);
            }
        }
    }
}

/// Deterministic spot-check: a stream shorter than one batch still flushes
/// promptly (end-of-execute + interval flush), and a batch size far larger
/// than the queue capacity cannot wedge the pipeline.
#[test]
fn short_streams_and_oversized_batches_drain() {
    let stream: Vec<(u64, u64)> = (0..5u64).map(|i| (i % 2, i)).collect();
    let log = run_batched(&stream, 4096, Duration::from_millis(1), None, 2);
    assert_eq!(log.len(), 5);
    assert_eq!(per_key(&log)[&0], vec![0, 2, 4]);
    assert_eq!(per_key(&log)[&1], vec![1, 3]);
}
