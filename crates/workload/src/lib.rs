#![warn(missing_docs)]
//! # workload — synthetic traffic and closed-loop evaluation
//!
//! The paper evaluates TencentRec on production traffic from Tencent News,
//! Tencent Videos, YiXun and QQ — data that is proprietary. This crate
//! substitutes a *generative* world model that preserves the property the
//! paper's experiments measure: **user interest has a fast-moving
//! component**, so a recommender that reacts to the last few minutes of
//! behaviour earns a higher click-through rate than one rebuilt hourly or
//! daily.
//!
//! * [`world`] — users (with demographics and drifting genre interests),
//!   items (with genre, tags, price, lifetime), and organic behaviour
//!   generation with Zipf popularity and session structure.
//! * [`click`] — the ground-truth click model: long-term affinity +
//!   session boost + freshness + position bias.
//! * [`sim`] — the closed loop: stream actions into a recommender, query
//!   it at recommendation positions, score the list with the click model,
//!   feed clicks back, and tally per-day CTR and read counts.
//! * [`apps`] — presets mirroring the four evaluated applications (news /
//!   videos / e-commerce / ads) and constructors for the TencentRec and
//!   "Original" arms.
//! * [`driver`] — open-loop (paced arrivals) and closed-loop (fixed
//!   concurrency) load drivers for serving-latency experiments.

pub mod apps;
pub mod click;
pub mod driver;
pub mod metrics;
pub mod sim;
pub mod world;

pub use click::ClickModel;
pub use driver::{closed_loop, open_loop, CallOutcome, LoadReport};
pub use metrics::{improvement_stats, DayMetrics, ImprovementStats};
pub use sim::{run_simulation, Position, SimConfig};
pub use world::{World, WorldConfig};
