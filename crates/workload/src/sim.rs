//! The closed-loop simulation: the A/B experiment of §6.2 in miniature.
//!
//! "Each application provides recommendations to some users by their own
//! original methods and the others using the new TencentRec recommendation
//! approach, and records their performance separately." Here each arm runs
//! against an identically seeded world: organic behaviour is byte-for-byte
//! identical across arms (the click draws use an independent RNG), so CTR
//! differences are attributable to the recommender alone.

use crate::click::ClickModel;
use crate::metrics::DayMetrics;
use crate::world::World;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::engine::StreamRecommender;

/// Which recommendation position is being simulated (the YiXun positions
/// of §6.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Position {
    /// Unconstrained list.
    Plain,
    /// Only items priced within ±`rel` of the item the user is currently
    /// browsing ("the goods with similar prices").
    SimilarPrice {
        /// Relative tolerance (0.3 = ±30%).
        rel: f64,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Days to simulate.
    pub days: usize,
    /// Recommendations shown per query.
    pub list_size: usize,
    /// Whether clicks on recommendations feed back into the recommender.
    pub feedback: bool,
    /// Seed for the click draws (independent of the world seed).
    pub click_seed: u64,
    /// The recommendation position semantics.
    pub position: Position,
    /// Days simulated before measurement starts (both arms warm; the
    /// paper's systems were in steady state when measured).
    pub warmup_days: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            days: 7,
            list_size: 8,
            feedback: true,
            click_seed: 7,
            position: Position::Plain,
            warmup_days: 1,
        }
    }
}

/// Runs one arm: streams `config.days` of organic behaviour from `world`
/// into `rec`, queries it once per session, scores the list with `clicks`,
/// and returns per-day metrics.
pub fn run_simulation(
    world: &mut World,
    rec: &mut dyn StreamRecommender,
    clicks: &ClickModel,
    config: &SimConfig,
) -> Vec<DayMetrics> {
    let mut click_rng = SmallRng::seed_from_u64(config.click_seed);
    // Register demographics and the initial catalog.
    for user in &world.users {
        rec.set_profile(user.id, user.profile);
    }
    for item in &world.items {
        rec.on_new_item(item.id);
    }

    let day_ms = world.config.day_ms;
    let sessions = world.config.sessions_per_user_per_day;
    let users = world.config.users;
    let mut results = Vec::with_capacity(config.days);

    for day in 0..config.warmup_days + config.days {
        for id in world.advance_day(day) {
            rec.on_new_item(id);
        }
        let day_start = day as u64 * day_ms;
        // Retire items that expired during the previous day (the catalog
        // side of the application's FilterBolt).
        for id in world.retired_between(day_start.saturating_sub(day_ms), day_start) {
            rec.on_item_retired(id);
        }
        let measured = day >= config.warmup_days;
        let mut metrics = DayMetrics {
            day: day.saturating_sub(config.warmup_days),
            impressions: 0,
            clicks: 0,
            reads: 0,
            active_users: users as u64,
        };
        for slot in 0..sessions {
            let slot_start = day_start + slot as u64 * (day_ms / sessions as u64);
            for user_idx in 0..users {
                // Spread session starts across the slot.
                let t = slot_start
                    + (user_idx as u64 * librarian_prime()) % (day_ms / sessions as u64 / 2);
                let actions = world.gen_session(user_idx, t);
                if actions.is_empty() {
                    continue;
                }
                let mut browsed_item = None;
                for action in &actions {
                    rec.process(action);
                    browsed_item = Some(action.item);
                    if matches!(action.action, ActionType::Read) {
                        metrics.reads += 1;
                    }
                }
                // Recommendation query at the end of the session.
                let query_t = t + actions.len() as u64 * 1_000;
                let user_id = world.users[user_idx].id;
                let mut recs = rec.recommend(user_id, config.list_size * 4);
                if let Position::SimilarPrice { rel } = config.position {
                    if let Some(anchor) = browsed_item.and_then(|i| world.catalog().price(i)) {
                        recs.retain(|&(item, _)| {
                            world
                                .catalog()
                                .price(item)
                                .is_some_and(|p| (p - anchor).abs() <= rel * anchor)
                        });
                    }
                }
                // The application never shows expired items (FilterBolt).
                recs.retain(|&(item_id, _)| {
                    world
                        .item(item_id)
                        .is_some_and(|i| world.is_alive(i, query_t))
                });
                recs.truncate(config.list_size);
                for (position, &(item_id, _)) in recs.iter().enumerate() {
                    let item = world.item(item_id).expect("filtered above");
                    metrics.impressions += 1;
                    let p = clicks.p_click(world, &world.users[user_idx], item, query_t, position);
                    if click_rng.gen_bool(p) {
                        metrics.clicks += 1;
                        metrics.reads += 1;
                        if config.feedback {
                            rec.process(&UserAction::new(
                                user_id,
                                item_id,
                                ActionType::Click,
                                query_t + position as u64,
                            ));
                        }
                    }
                }
            }
        }
        if measured {
            results.push(metrics);
        }
    }
    results
}

/// A fixed odd stride used to de-correlate users' session offsets without
/// consuming world RNG draws (which must stay arm-independent).
const fn librarian_prime() -> u64 {
    2_654_435_761
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use tencentrec::action::ActionWeights;
    use tencentrec::cf::{CfConfig, ItemCF};
    use tencentrec::db::{DemographicRec, GroupScheme};
    use tencentrec::engine::{Primary, RecommendEngine};

    fn small_world() -> World {
        World::new(WorldConfig {
            users: 60,
            initial_items: 150,
            sessions_per_user_per_day: 2,
            ..Default::default()
        })
    }

    fn engine() -> RecommendEngine {
        RecommendEngine::new(
            Primary::Cf(ItemCF::new(CfConfig {
                pruning_delta: None,
                ..Default::default()
            })),
            DemographicRec::new(GroupScheme::default(), ActionWeights::default(), None),
            0.0,
        )
    }

    #[test]
    fn simulation_produces_metrics() {
        let mut world = small_world();
        let mut rec = engine();
        let config = SimConfig {
            days: 2,
            ..Default::default()
        };
        let days = run_simulation(&mut world, &mut rec, &ClickModel::default(), &config);
        assert_eq!(days.len(), 2);
        for d in &days {
            assert!(d.impressions > 0, "engine should always fill the list");
            assert!(d.ctr() <= 1.0);
        }
    }

    #[test]
    fn identical_arms_get_identical_metrics() {
        let config = SimConfig {
            days: 2,
            ..Default::default()
        };
        let run = || {
            let mut world = small_world();
            let mut rec = engine();
            run_simulation(&mut world, &mut rec, &ClickModel::default(), &config)
        };
        assert_eq!(run(), run(), "same seed + same arm must reproduce exactly");
    }

    #[test]
    fn similar_price_position_restricts_items() {
        let mut world = small_world();
        let mut rec = engine();
        let config = SimConfig {
            days: 2,
            position: Position::SimilarPrice { rel: 0.2 },
            ..Default::default()
        };
        let days = run_simulation(&mut world, &mut rec, &ClickModel::default(), &config);
        // The filter makes the list shorter but must not zero it out
        // entirely across two days.
        let total: u64 = days.iter().map(|d| d.impressions).sum();
        assert!(total > 0);
    }
}
