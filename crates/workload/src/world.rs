//! The synthetic world: users, items, and organic behaviour.
//!
//! Users carry demographics and a long-term genre-interest distribution
//! correlated with their demographic group (so the DB algorithm has
//! signal). Sessions adopt a *session genre* — sometimes a burst interest
//! far from the long-term profile — which is exactly the fast-moving
//! component real-time recommendation exploits. Items have a genre,
//! content tags, category, price, a birth time and a lifetime (short for
//! news), and Zipf-ish popularity.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tencentrec::action::{ActionType, UserAction};
use tencentrec::catalog::{ItemCatalog, ItemMeta};
use tencentrec::db::DemographicProfile;
use tencentrec::types::{ItemId, Timestamp, UserId};

/// World-shape parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed (identical seeds ⇒ identical organic behaviour).
    pub seed: u64,
    /// Number of users.
    pub users: usize,
    /// Number of genres (content clusters).
    pub genres: usize,
    /// Items alive at t = 0.
    pub initial_items: usize,
    /// Fresh items born per simulated day.
    pub new_items_per_day: usize,
    /// Items die this long after birth (`u64::MAX` = immortal).
    pub item_lifetime_ms: u64,
    /// Length of a simulated day in stream ms.
    pub day_ms: u64,
    /// Organic sessions per user per day.
    pub sessions_per_user_per_day: usize,
    /// Organic actions per session.
    pub actions_per_session: usize,
    /// Probability a session adopts a burst genre (uniform random) rather
    /// than sampling the user's long-term interests.
    pub burst_session_prob: f64,
    /// Probability a session *continues* the user's previous demand
    /// instead of starting a new one. Real-time demands ("I'd like to
    /// watch a movie") persist for a while — that persistent fraction is
    /// what a periodically rebuilt model can still catch; the fresh
    /// fraction is what only a real-time system captures.
    pub demand_persistence: f64,
    /// Price range for commerce items.
    pub price_range: (f64, f64),
    /// Fraction of users with unknown demographics.
    pub unknown_demographics: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            users: 400,
            genres: 12,
            initial_items: 600,
            new_items_per_day: 60,
            item_lifetime_ms: u64::MAX,
            day_ms: 86_400_000,
            sessions_per_user_per_day: 2,
            actions_per_session: 5,
            burst_session_prob: 0.35,
            demand_persistence: 0.6,
            price_range: (5.0, 500.0),
            unknown_demographics: 0.1,
        }
    }
}

/// A simulated user.
#[derive(Debug, Clone)]
pub struct SimUser {
    /// User id.
    pub id: UserId,
    /// Demographics (may be unknown).
    pub profile: DemographicProfile,
    /// Long-term genre interests (sums to 1).
    pub long_term: Vec<f64>,
    /// Current session genre and when it started.
    pub session_genre: Option<(usize, Timestamp)>,
}

/// A simulated item.
#[derive(Debug, Clone)]
pub struct SimItem {
    /// Item id.
    pub id: ItemId,
    /// Dominant genre.
    pub genre: usize,
    /// Price.
    pub price: f64,
    /// Intrinsic quality multiplier in [0.5, 1.5].
    pub quality: f64,
    /// Birth time.
    pub born: Timestamp,
    /// Popularity weight (Zipf-ish) for organic sampling.
    pub popularity: f64,
}

/// The world state.
pub struct World {
    /// Configuration.
    pub config: WorldConfig,
    /// All users.
    pub users: Vec<SimUser>,
    /// All items ever born (dead ones retained for id stability).
    pub items: Vec<SimItem>,
    catalog: ItemCatalog,
    rng: SmallRng,
    next_item: ItemId,
    days_advanced: usize,
}

impl World {
    /// Builds the initial world.
    pub fn new(config: WorldConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let users = (0..config.users)
            .map(|i| Self::gen_user(i as UserId, &config, &mut rng))
            .collect();
        let mut world = World {
            users,
            items: Vec::new(),
            catalog: ItemCatalog::new(),
            rng,
            next_item: 1,
            days_advanced: 0,
            config,
        };
        for _ in 0..world.config.initial_items {
            world.spawn_item(0);
        }
        world
    }

    fn gen_user(id: UserId, config: &WorldConfig, rng: &mut SmallRng) -> SimUser {
        let unknown = rng.gen_bool(config.unknown_demographics);
        let profile = if unknown {
            DemographicProfile::unknown()
        } else {
            DemographicProfile {
                gender: rng.gen_range(0..2),
                age: rng.gen_range(15..70),
                region: rng.gen_range(0..8),
            }
        };
        // Demographic groups share 3 "anchor" genres; personal taste mixes
        // the group anchors with individual noise.
        let g = config.genres;
        let group_seed = (profile.gender as u64) << 8 | (profile.age / 10) as u64;
        let mut weights = vec![0.05f64; g];
        for j in 0..3 {
            let anchor = ((group_seed.wrapping_mul(2654435761).wrapping_add(j * 97)) as usize) % g;
            weights[anchor] += 0.6;
        }
        let personal = rng.gen_range(0..g);
        weights[personal] += 0.8;
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        SimUser {
            id,
            profile,
            long_term: weights,
            session_genre: None,
        }
    }

    fn spawn_item(&mut self, now: Timestamp) -> ItemId {
        let id = self.next_item;
        self.next_item += 1;
        let genre = self.rng.gen_range(0..self.config.genres);
        let (lo, hi) = self.config.price_range;
        let rank = self.items.len() as f64 + 1.0;
        let item = SimItem {
            id,
            genre,
            price: self.rng.gen_range(lo..hi),
            quality: self.rng.gen_range(0.5..1.5),
            born: now,
            // Zipf-flavoured: newer ids get a random popularity against a
            // 1/rank^0.6 backdrop so a head of hot items exists.
            popularity: self.rng.gen_range(0.2..1.0) / rank.powf(0.3),
        };
        // Content tags: strong genre tag + two subtags correlated with it.
        let tags = vec![
            (genre as u32, 1.0),
            (
                (self.config.genres + genre * 5 + self.rng.gen_range(0..5usize)) as u32,
                0.5,
            ),
            (
                (self.config.genres + genre * 5 + self.rng.gen_range(0..5usize)) as u32,
                0.3,
            ),
        ];
        self.catalog.upsert(
            id,
            ItemMeta {
                category: genre as u32,
                price: item.price,
                tags,
            },
        );
        self.items.push(item);
        id
    }

    /// Spawns the day's fresh items. Call once per simulated day, with the
    /// day index; returns the new item ids (so a CB arm can register them).
    pub fn advance_day(&mut self, day: usize) -> Vec<ItemId> {
        assert_eq!(day, self.days_advanced, "days must advance sequentially");
        self.days_advanced += 1;
        let now = day as u64 * self.config.day_ms;
        (0..self.config.new_items_per_day)
            .map(|_| self.spawn_item(now))
            .collect()
    }

    /// Whether an item is alive at `now`.
    pub fn is_alive(&self, item: &SimItem, now: Timestamp) -> bool {
        now >= item.born && now.saturating_sub(item.born) < self.config.item_lifetime_ms
    }

    /// Items alive at `now`.
    pub fn live_items(&self, now: Timestamp) -> Vec<&SimItem> {
        self.items
            .iter()
            .filter(|i| self.is_alive(i, now))
            .collect()
    }

    /// Items whose lifetime expired in `(from, to]`.
    pub fn retired_between(&self, from: Timestamp, to: Timestamp) -> Vec<ItemId> {
        if self.config.item_lifetime_ms == u64::MAX {
            return Vec::new();
        }
        self.items
            .iter()
            .filter(|i| {
                let death = i.born.saturating_add(self.config.item_lifetime_ms);
                death > from && death <= to
            })
            .map(|i| i.id)
            .collect()
    }

    /// The shared item catalog.
    pub fn catalog(&self) -> &ItemCatalog {
        &self.catalog
    }

    /// Looks up an item by id (ids are 1-based and dense).
    pub fn item(&self, id: ItemId) -> Option<&SimItem> {
        self.items.get((id - 1) as usize)
    }

    /// Samples an alive item of `genre` by popularity × quality; falls
    /// back to any alive item when the genre has none.
    fn sample_item(&mut self, genre: usize, now: Timestamp) -> Option<ItemId> {
        let candidates: Vec<(ItemId, f64)> = self
            .items
            .iter()
            .filter(|i| self.is_alive(i, now) && i.genre == genre)
            .map(|i| (i.id, i.popularity * i.quality))
            .collect();
        let pool = if candidates.is_empty() {
            self.items
                .iter()
                .filter(|i| self.is_alive(i, now))
                .map(|i| (i.id, i.popularity * i.quality))
                .collect()
        } else {
            candidates
        };
        if pool.is_empty() {
            return None;
        }
        let total: f64 = pool.iter().map(|&(_, w)| w).sum();
        let mut draw = self.rng.gen_range(0.0..total);
        for (id, w) in pool {
            draw -= w;
            if draw <= 0.0 {
                return Some(id);
            }
        }
        None
    }

    /// Generates one organic session for a user at `now`: picks a session
    /// genre (burst or long-term), records it on the user, and produces a
    /// run of actions (browse, click, read, occasionally purchase) on
    /// items of that genre.
    pub fn gen_session(&mut self, user_idx: usize, now: Timestamp) -> Vec<UserAction> {
        let continued = self.users[user_idx]
            .session_genre
            .filter(|_| self.rng.gen_bool(self.config.demand_persistence))
            .map(|(g, _)| g);
        let genre = if let Some(g) = continued {
            g
        } else if self.rng.gen_bool(self.config.burst_session_prob) {
            self.rng.gen_range(0..self.config.genres)
        } else {
            // Sample the long-term distribution.
            let draw: f64 = self.rng.gen();
            let mut acc = 0.0;
            let mut chosen = 0;
            for (g, &w) in self.users[user_idx].long_term.iter().enumerate() {
                acc += w;
                if draw <= acc {
                    chosen = g;
                    break;
                }
            }
            chosen
        };
        self.users[user_idx].session_genre = Some((genre, now));
        let user_id = self.users[user_idx].id;
        let mut actions = Vec::with_capacity(self.config.actions_per_session);
        for step in 0..self.config.actions_per_session {
            let Some(item) = self.sample_item(genre, now) else {
                break;
            };
            let ts = now + step as u64 * 1_000;
            let action = match self.rng.gen_range(0..10) {
                0..=3 => ActionType::Browse,
                4..=6 => ActionType::Click,
                7..=8 => ActionType::Read,
                _ => ActionType::Purchase,
            };
            actions.push(UserAction::new(user_id, item, action, ts));
        }
        actions
    }

    /// Direct RNG access for harness-level draws (kept on the world so
    /// both arms of a comparison use the same deterministic stream when
    /// given identical seeds).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(WorldConfig {
            users: 50,
            initial_items: 100,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = world();
        let mut b = world();
        let sa = a.gen_session(3, 1_000);
        let sb = b.gen_session(3, 1_000);
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = World::new(WorldConfig {
            seed: 1,
            ..Default::default()
        });
        let mut b = World::new(WorldConfig {
            seed: 2,
            ..Default::default()
        });
        let sa: Vec<_> = (0..5).flat_map(|i| a.gen_session(i, 0)).collect();
        let sb: Vec<_> = (0..5).flat_map(|i| b.gen_session(i, 0)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn sessions_stay_in_genre() {
        let mut w = world();
        let actions = w.gen_session(0, 0);
        assert!(!actions.is_empty());
        let (genre, _) = w.users[0].session_genre.unwrap();
        for a in &actions {
            assert_eq!(w.item(a.item).unwrap().genre, genre);
        }
    }

    #[test]
    fn items_die_after_lifetime() {
        let mut w = World::new(WorldConfig {
            item_lifetime_ms: 1_000,
            initial_items: 10,
            new_items_per_day: 5,
            ..Default::default()
        });
        assert_eq!(w.live_items(0).len(), 10);
        assert_eq!(w.live_items(2_000).len(), 0);
        let fresh = w.advance_day(0);
        assert_eq!(fresh.len(), 5);
    }

    #[test]
    fn catalog_tracks_items() {
        let w = world();
        assert_eq!(w.catalog().len(), 100);
        let item = w.item(1).unwrap();
        let meta = w.catalog().get(1).unwrap();
        assert_eq!(meta.category, item.genre as u32);
        assert_eq!(meta.price, item.price);
        assert_eq!(meta.tags[0].0, item.genre as u32);
    }

    #[test]
    fn long_term_interests_normalised() {
        let w = world();
        for u in &w.users {
            let sum: f64 = u.long_term.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(u.long_term.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn demographic_groups_share_anchors() {
        let w = World::new(WorldConfig {
            users: 2_000,
            unknown_demographics: 0.0,
            ..Default::default()
        });
        // Two users in the same (gender, decade) group share anchor
        // genres: their average long-term vectors should correlate more
        // within the group than across groups.
        let group = |u: &SimUser| (u.profile.gender, u.profile.age / 10);
        let users: Vec<&SimUser> = w.users.iter().collect();
        let a = users.iter().find(|u| group(u) == (0, 2)).unwrap();
        let same: Vec<&&SimUser> = users
            .iter()
            .filter(|u| group(u) == (0, 2) && u.id != a.id)
            .collect();
        let diff: Vec<&&SimUser> = users.iter().filter(|u| group(u) == (1, 5)).collect();
        let dot = |x: &SimUser, y: &SimUser| -> f64 {
            x.long_term
                .iter()
                .zip(&y.long_term)
                .map(|(a, b)| a * b)
                .sum()
        };
        let avg_same: f64 = same.iter().map(|u| dot(a, u)).sum::<f64>() / same.len() as f64;
        let avg_diff: f64 = diff.iter().map(|u| dot(a, u)).sum::<f64>() / diff.len() as f64;
        assert!(
            avg_same > avg_diff,
            "within-group affinity {avg_same} should beat cross-group {avg_diff}"
        );
    }
}
