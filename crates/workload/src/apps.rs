//! Application presets mirroring the paper's evaluated deployments
//! (Table 1): Tencent News (CB), Tencent Videos (CF), YiXun e-commerce
//! (CF), and QQ advertising (situational CTR) — plus constructors for the
//! TencentRec arm and the "Original" (periodically rebuilt) arm of each.

use crate::click::ClickModel;
use crate::metrics::DayMetrics;
use crate::sim::{Position, SimConfig};
use crate::world::WorldConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tencentrec::action::ActionWeights;
use tencentrec::baseline::PeriodicRebuild;
use tencentrec::catalog::ItemCatalog;
use tencentrec::cb::{CbConfig, ContentBased};
use tencentrec::cf::{CfConfig, ItemCF, WindowConfig};
use tencentrec::ctr::{CtrConfig, Situation, SituationalCtr};
use tencentrec::db::{DemographicProfile, DemographicRec, GroupScheme};
use tencentrec::engine::{Primary, RecommendEngine};

/// A complete scenario: world shape + click model + sim parameters.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Scenario name.
    pub name: &'static str,
    /// World generator configuration.
    pub world: WorldConfig,
    /// Ground-truth click model.
    pub clicks: ClickModel,
    /// Simulation parameters.
    pub sim: SimConfig,
}

/// Tencent News: items live hours, fresh items stream in continuously,
/// freshness matters, sessions drift fast.
pub fn news_app(seed: u64, days: usize) -> AppSpec {
    AppSpec {
        name: "news",
        world: WorldConfig {
            seed,
            users: 700,
            genres: 12,
            initial_items: 400,
            new_items_per_day: 300,
            item_lifetime_ms: 36 * 60 * 60 * 1000, // ~1.5 days on site
            sessions_per_user_per_day: 3,
            actions_per_session: 4,
            burst_session_prob: 0.45, // news interest is event-driven
            demand_persistence: 0.84, // stories stay interesting for a day
            ..Default::default()
        },
        clicks: ClickModel {
            freshness_half_life_ms: Some(12 * 60 * 60 * 1000),
            session_half_life_ms: 4 * 60 * 60 * 1000,
            ..Default::default()
        },
        sim: SimConfig {
            days,
            list_size: 8,
            ..Default::default()
        },
    }
}

/// Tencent Videos: long-lived catalog, strong co-consumption, CF-friendly.
pub fn video_app(seed: u64, days: usize) -> AppSpec {
    AppSpec {
        name: "videos",
        world: WorldConfig {
            seed,
            users: 800,
            genres: 10,
            initial_items: 500,
            new_items_per_day: 10,
            item_lifetime_ms: u64::MAX,
            sessions_per_user_per_day: 2,
            actions_per_session: 5,
            burst_session_prob: 0.40,
            demand_persistence: 0.78, // binge interest spans sessions
            ..Default::default()
        },
        clicks: ClickModel::default(),
        sim: SimConfig {
            days,
            list_size: 8,
            ..Default::default()
        },
    }
}

/// YiXun e-commerce: stable catalog with prices; `position` selects the
/// similar-price or similar-purchase recommendation slot of §6.4.
pub fn ecommerce_app(seed: u64, days: usize, position: Position) -> AppSpec {
    AppSpec {
        name: "yixun",
        world: WorldConfig {
            seed,
            users: 1200,
            genres: 14,
            initial_items: 700,
            new_items_per_day: 15,
            item_lifetime_ms: u64::MAX,
            sessions_per_user_per_day: 2,
            actions_per_session: 4,
            burst_session_prob: 0.5,  // shopping missions are bursty
            demand_persistence: 0.82, // ...and persist for days
            price_range: (5.0, 500.0),
            ..Default::default()
        },
        clicks: ClickModel::default(),
        sim: SimConfig {
            days,
            list_size: 8,
            position,
            ..Default::default()
        },
    }
}

fn db(window: Option<WindowConfig>) -> DemographicRec {
    DemographicRec::new(GroupScheme::default(), ActionWeights::default(), window)
}

/// Real-time window shared by the TencentRec arms: 1-hour sessions over
/// 7 days (recent enough to track trends, long enough to keep the stable
/// co-occurrence signal).
fn realtime_window() -> Option<WindowConfig> {
    Some(WindowConfig {
        session_ms: 60 * 60 * 1000,
        sessions: 168,
    })
}

/// Weights emphasising purchases over browsing — the signal mix of the
/// similar-purchase position ("based on users' purchase history, where we
/// have relatively explicit preferences about the user").
pub fn purchase_heavy_weights() -> ActionWeights {
    let mut w = ActionWeights::default();
    w.set(tencentrec::action::ActionType::Browse, 0.2)
        .set(tencentrec::action::ActionType::Click, 0.4)
        .set(tencentrec::action::ActionType::Read, 0.5)
        .set(tencentrec::action::ActionType::Purchase, 5.0);
    w
}

/// The TencentRec arm for CF applications (videos, e-commerce):
/// incremental windowed item-CF + real-time personalised filtering + DB
/// complement.
pub fn tencentrec_cf_arm() -> RecommendEngine {
    tencentrec_cf_arm_with(ActionWeights::default())
}

/// [`tencentrec_cf_arm`] with a custom implicit-feedback weight table.
pub fn tencentrec_cf_arm_with(weights: ActionWeights) -> RecommendEngine {
    RecommendEngine::new(
        Primary::Cf(ItemCF::new(CfConfig {
            weights: weights.clone(),
            linked_time_ms: 3 * 24 * 60 * 60 * 1000, // e-commerce linked time
            window: realtime_window(),
            top_k: 20,
            recent_k: 10,
            pruning_delta: Some(1e-3),
            ..Default::default()
        })),
        DemographicRec::new(GroupScheme::default(), weights, realtime_window()),
        0.0,
    )
}

/// The Original arm for CF applications: the same algorithm rebuilt from
/// scratch once per `period_ms` (daily offline computation in the paper).
pub fn original_cf_arm(period_ms: u64) -> PeriodicRebuild<RecommendEngine> {
    original_cf_arm_with(period_ms, ActionWeights::default())
}

/// [`original_cf_arm`] with a custom implicit-feedback weight table.
pub fn original_cf_arm_with(
    period_ms: u64,
    weights: ActionWeights,
) -> PeriodicRebuild<RecommendEngine> {
    PeriodicRebuild::new(period_ms, move || {
        RecommendEngine::new(
            Primary::Cf(ItemCF::new(CfConfig {
                weights: weights.clone(),
                linked_time_ms: 3 * 24 * 60 * 60 * 1000,
                window: None, // offline models don't window
                top_k: 20,
                recent_k: 10,
                pruning_delta: None,
                ..Default::default()
            })),
            DemographicRec::new(GroupScheme::default(), weights.clone(), None),
            0.0,
        )
    })
}

/// The TencentRec arm for news: real-time CB + DB complement.
pub fn tencentrec_news_arm(catalog: ItemCatalog) -> RecommendEngine {
    RecommendEngine::new(
        Primary::Cb(ContentBased::new(CbConfig::default(), catalog)),
        db(realtime_window()),
        0.0,
    )
}

/// The Original news arm: "the CB recommendation model is updated once an
/// hour" — semi-real-time.
pub fn original_news_arm(catalog: ItemCatalog, period_ms: u64) -> PeriodicRebuild<RecommendEngine> {
    PeriodicRebuild::new(period_ms, move || {
        RecommendEngine::new(
            Primary::Cb(ContentBased::new(CbConfig::default(), catalog.clone())),
            db(None),
            0.0,
        )
    })
}

// ---------------------------------------------------------------------
// Advertising (QQ) — situational CTR vs daily global ranking.
// ---------------------------------------------------------------------

/// Ad-scenario parameters.
#[derive(Debug, Clone)]
pub struct AdSimConfig {
    /// Days to simulate.
    pub days: usize,
    /// Number of candidate advertisements.
    pub ads: usize,
    /// Number of user demographic groups.
    pub groups: usize,
    /// Ad requests per day.
    pub requests_per_day: usize,
    /// Exploration rate for both arms.
    pub explore: f64,
    /// Days simulated before measurement starts.
    pub warmup_days: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdSimConfig {
    fn default() -> Self {
        AdSimConfig {
            days: 30,
            ads: 40,
            groups: 12,
            requests_per_day: 6_000,
            explore: 0.1,
            warmup_days: 3,
            seed: 11,
        }
    }
}

/// Ground truth: `ctr(ad, group, day) = base(ad) · affinity(ad, group) ·
/// drift(ad, day)` with a per-day random-walk drift (ad fatigue and flash
/// campaigns — "advertisements usually have very short life cycles").
struct AdWorld {
    base: Vec<f64>,
    affinity: Vec<Vec<f64>>, // ad × group
    drift: Vec<f64>,         // ad (walked daily)
    profiles: Vec<DemographicProfile>,
}

impl AdWorld {
    fn new(config: &AdSimConfig, rng: &mut SmallRng) -> Self {
        let base = (0..config.ads).map(|_| rng.gen_range(0.01..0.08)).collect();
        let affinity = (0..config.ads)
            .map(|_| {
                (0..config.groups)
                    .map(|_| rng.gen_range(0.3..3.0))
                    .collect()
            })
            .collect();
        let drift = vec![1.0; config.ads];
        // One representative profile per group.
        let profiles = (0..config.groups)
            .map(|g| DemographicProfile {
                gender: (g % 2) as u8,
                age: (15 + (g / 2) * 10) as u8,
                region: 0,
            })
            .collect();
        AdWorld {
            base,
            affinity,
            drift,
            profiles,
        }
    }

    fn walk_drift(&mut self, rng: &mut SmallRng) {
        for d in &mut self.drift {
            *d = (*d * rng.gen_range(0.75f64..1.35)).clamp(0.4, 2.5);
        }
    }

    fn true_ctr(&self, ad: usize, group: usize) -> f64 {
        (self.base[ad] * self.affinity[ad][group] * self.drift[ad]).clamp(0.0, 0.9)
    }
}

/// Runs the ad scenario; returns `(tencentrec_days, original_days)`.
///
/// The TencentRec arm serves with the windowed situational-CTR model and
/// re-ranks per request; the Original arm keeps global per-ad counters and
/// refreshes its ranking once per day.
pub fn run_ad_simulation(config: &AdSimConfig) -> (Vec<DayMetrics>, Vec<DayMetrics>) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut world = AdWorld::new(config, &mut rng);
    let candidates: Vec<u64> = (0..config.ads as u64).collect();

    // TencentRec: situational CTR with a sliding window of ~2 days.
    let mut model = SituationalCtr::new(CtrConfig {
        window: Some(WindowConfig {
            session_ms: 6 * 60 * 60 * 1000,
            sessions: 8,
        }),
        smoothing: 30.0,
        prior_ctr: 0.03,
    });
    // Original: the *same* situational learner, but un-windowed and with
    // its per-group decisions only refreshed once a day — isolating the
    // staleness difference, exactly like the paper's semi-real-time
    // comparators.
    let mut orig_model = SituationalCtr::new(CtrConfig {
        window: None,
        smoothing: 30.0,
        prior_ctr: 0.03,
    });
    let mut frozen_best: Vec<usize> = vec![0; config.groups];

    let day_ms = 86_400_000u64;
    let mut ours = Vec::new();
    let mut original = Vec::new();

    for day in 0..config.warmup_days + config.days {
        let measured = day >= config.warmup_days;
        world.walk_drift(&mut rng);
        // Daily refresh of the Original per-group choice (stale within
        // the day).
        for (g, slot) in frozen_best.iter_mut().enumerate() {
            let situation = Situation {
                profile: world.profiles[g],
                position: 0,
            };
            *slot = orig_model.rank(&candidates, &situation, 1)[0].0 as usize;
        }

        let mut ours_day = DayMetrics {
            day: day.saturating_sub(config.warmup_days),
            impressions: 0,
            clicks: 0,
            reads: 0,
            active_users: config.groups as u64,
        };
        let mut orig_day = ours_day;

        for r in 0..config.requests_per_day {
            let group = rng.gen_range(0..config.groups);
            let situation = Situation {
                profile: world.profiles[group],
                position: 0,
            };
            let ts = day as u64 * day_ms + (r as u64 * day_ms / config.requests_per_day as u64);
            let explore = rng.gen_bool(config.explore);
            let random_ad = rng.gen_range(0..config.ads);

            // --- TencentRec arm ---
            let ad = if explore {
                random_ad
            } else {
                model.rank(&candidates, &situation, 1)[0].0 as usize
            };
            let p = world.true_ctr(ad, group);
            let clicked = rng.gen_bool(p);
            model.impression(ad as u64, &situation, ts);
            ours_day.impressions += 1;
            if clicked {
                model.click(ad as u64, &situation, ts);
                ours_day.clicks += 1;
            }

            // --- Original arm (same request, same exploration coin) ---
            let ad = if explore {
                random_ad
            } else {
                frozen_best[group]
            };
            let p = world.true_ctr(ad, group);
            let clicked = rng.gen_bool(p);
            orig_model.impression(ad as u64, &situation, ts);
            orig_day.impressions += 1;
            if clicked {
                orig_model.click(ad as u64, &situation, ts);
                orig_day.clicks += 1;
            }
        }
        if measured {
            ours.push(ours_day);
            original.push(orig_day);
        }
    }
    (ours, original)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ad_simulation_runs_and_tencentrec_wins() {
        let config = AdSimConfig {
            days: 10,
            requests_per_day: 3_000,
            ..Default::default()
        };
        let (ours, orig) = run_ad_simulation(&config);
        assert_eq!(ours.len(), 10);
        let our_ctr: f64 = ours.iter().map(DayMetrics::ctr).sum::<f64>() / ours.len() as f64;
        let orig_ctr: f64 = orig.iter().map(DayMetrics::ctr).sum::<f64>() / orig.len() as f64;
        assert!(
            our_ctr > orig_ctr,
            "situational targeting should beat stale global ranking: {our_ctr} vs {orig_ctr}"
        );
    }

    #[test]
    fn ad_simulation_is_deterministic() {
        let config = AdSimConfig {
            days: 3,
            requests_per_day: 500,
            ..Default::default()
        };
        let (a1, o1) = run_ad_simulation(&config);
        let (a2, o2) = run_ad_simulation(&config);
        assert_eq!(a1, a2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn purchase_weights_emphasise_purchases() {
        use tencentrec::action::ActionType;
        let w = purchase_heavy_weights();
        assert!(w.weight(ActionType::Purchase) > 10.0 * w.weight(ActionType::Browse));
        assert!(w.weight(ActionType::Purchase) >= 5.0);
    }

    #[test]
    fn arms_construct_and_process() {
        use tencentrec::action::{ActionType, UserAction};
        use tencentrec::engine::StreamRecommender;
        let mut ours = tencentrec_cf_arm();
        let mut orig = original_cf_arm(86_400_000);
        for u in 0..10u64 {
            let a = UserAction::new(u, 1, ActionType::Click, u);
            ours.process(&a);
            orig.process(&a);
        }
        // The real-time arm reflects data instantly; the daily one not yet.
        assert_eq!(ours.demographics().group_count(), 0, "no profiles set");
        assert!(orig.recommend(0, 3).len() <= 3);
    }

    #[test]
    fn app_specs_are_sane() {
        let news = news_app(1, 7);
        assert!(news.world.new_items_per_day > 100, "news churns items");
        assert!(news.world.item_lifetime_ms < u64::MAX);
        let videos = video_app(1, 7);
        assert_eq!(videos.world.item_lifetime_ms, u64::MAX);
        let shop = ecommerce_app(1, 7, Position::SimilarPrice { rel: 0.3 });
        assert!(matches!(shop.sim.position, Position::SimilarPrice { .. }));
    }
}
