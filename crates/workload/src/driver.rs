//! Load drivers for serving experiments: open-loop (paced arrivals) and
//! closed-loop (fixed concurrency).
//!
//! The distinction matters for latency experiments. A *closed-loop*
//! driver issues the next request only when the previous one returns, so
//! an overloaded server silently slows the driver down and the measured
//! latency stays flattering. An *open-loop* driver schedules arrivals on
//! a clock regardless of completions — like real users do — so queueing
//! delay shows up in the numbers. Open-loop latency here is measured
//! from the request's *scheduled* arrival time, which also corrects for
//! coordinated omission: if the driver itself falls behind schedule, the
//! wait is charged to the request rather than dropped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tstorm::metrics::{LatencyHistogram, LatencySnapshot};

/// What one request came back as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOutcome {
    /// Served successfully.
    Ok,
    /// Refused by admission control (server said `Overloaded`).
    Shed,
    /// Transport or protocol failure.
    Error,
}

/// Aggregated result of one driver run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests served.
    pub completed: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests that failed outright.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency distribution of *served* requests.
    pub latency: LatencySnapshot,
}

impl LoadReport {
    /// Served requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of issued requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.shed as f64 / self.issued as f64
        }
    }

    /// One-line summary for experiment output.
    pub fn summary(&self) -> String {
        format!(
            "{:.0} req/s served  shed {:>5.1}%  errors {}  {}",
            self.throughput(),
            self.shed_rate() * 100.0,
            self.errors,
            self.latency.format_percentiles(),
        )
    }
}

struct Tally {
    completed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    latency: LatencyHistogram,
}

impl Tally {
    fn new() -> Self {
        Tally {
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    fn record(&self, outcome: CallOutcome, latency: Duration) {
        match outcome {
            CallOutcome::Ok => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.latency.record(latency);
            }
            CallOutcome::Shed => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            CallOutcome::Error => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn report(&self, issued: u64, elapsed: Duration) -> LoadReport {
        LoadReport {
            issued,
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            elapsed,
            latency: self.latency.snapshot(),
        }
    }
}

/// Runs `request` from `workers` threads in a closed loop for
/// `duration`: each worker issues its next request the moment the
/// previous one returns. `request` receives a global request sequence
/// number (usable as a user id or seed).
pub fn closed_loop<F>(workers: usize, duration: Duration, request: F) -> LoadReport
where
    F: Fn(u64) -> CallOutcome + Send + Sync,
{
    assert!(workers > 0, "at least one worker");
    let tally = Tally::new();
    let seq = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while start.elapsed() < duration {
                    let n = seq.fetch_add(1, Ordering::Relaxed);
                    let t0 = Instant::now();
                    let outcome = request(n);
                    tally.record(outcome, t0.elapsed());
                }
            });
        }
    });
    tally.report(seq.load(Ordering::Relaxed), start.elapsed())
}

/// Runs `request` at a fixed offered `rate` (requests per second) for
/// `duration`, issuing from `workers` threads. Arrival `n` is scheduled
/// at `start + n/rate`; a worker claims the next arrival, sleeps until
/// its time, and calls `request`. Latency is charged from the scheduled
/// arrival, so driver lag counts against the server's numbers instead of
/// vanishing (coordinated-omission correction).
pub fn open_loop<F>(rate: f64, workers: usize, duration: Duration, request: F) -> LoadReport
where
    F: Fn(u64) -> CallOutcome + Send + Sync,
{
    assert!(rate > 0.0, "rate must be positive");
    assert!(workers > 0, "at least one worker");
    let planned = (rate * duration.as_secs_f64()).floor() as u64;
    let interval = Duration::from_secs_f64(1.0 / rate);
    let tally = Tally::new();
    let seq = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let n = seq.fetch_add(1, Ordering::Relaxed);
                if n >= planned {
                    break;
                }
                let scheduled = start + interval.mul_f64(n as f64);
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                let outcome = request(n);
                tally.record(outcome, scheduled.elapsed());
            });
        }
    });
    tally.report(planned.min(seq.load(Ordering::Relaxed)), start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_counts_outcomes() {
        let report = closed_loop(2, Duration::from_millis(50), |n| {
            std::thread::sleep(Duration::from_micros(100));
            match n % 3 {
                0 => CallOutcome::Ok,
                1 => CallOutcome::Shed,
                _ => CallOutcome::Error,
            }
        });
        assert!(report.issued > 0);
        assert_eq!(
            report.issued,
            report.completed + report.shed + report.errors
        );
        assert!(report.latency.count() == report.completed);
        assert!(report.shed_rate() > 0.0);
    }

    #[test]
    fn open_loop_respects_offered_rate() {
        // 200 req/s for 0.25 s = 50 requests; a fast handler must not
        // complete them meaningfully faster than the schedule allows.
        let t0 = Instant::now();
        let report = open_loop(200.0, 4, Duration::from_millis(250), |_| CallOutcome::Ok);
        assert_eq!(report.issued, 50);
        assert_eq!(report.completed, 50);
        assert!(
            t0.elapsed() >= Duration::from_millis(200),
            "ran too fast: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn open_loop_charges_driver_lag_to_latency() {
        // One worker, 2 ms handler, 1000 req/s offered: arrivals outpace
        // the worker, so scheduled-time latency must exceed service time.
        let report = open_loop(1000.0, 1, Duration::from_millis(100), |_| {
            std::thread::sleep(Duration::from_millis(2));
            CallOutcome::Ok
        });
        assert!(report.completed > 0);
        assert!(
            report.latency.p99() > Duration::from_millis(4),
            "queueing delay invisible: p99 = {:?}",
            report.latency.p99()
        );
    }
}
