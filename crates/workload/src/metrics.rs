//! Evaluation metrics: per-day CTR / read counts and improvement summaries.

/// Metrics of one simulated day for one arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayMetrics {
    /// Day index (0-based).
    pub day: usize,
    /// Recommendation impressions.
    pub impressions: u64,
    /// Clicks on recommendations.
    pub clicks: u64,
    /// Total reads (organic + recommendation-driven).
    pub reads: u64,
    /// Users active this day.
    pub active_users: u64,
}

impl DayMetrics {
    /// Click-through rate of recommendations.
    pub fn ctr(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.clicks as f64 / self.impressions as f64
        }
    }

    /// Average reads per active user.
    pub fn reads_per_user(&self) -> f64 {
        if self.active_users == 0 {
            0.0
        } else {
            self.reads as f64 / self.active_users as f64
        }
    }
}

/// Relative improvement summary over a series of days (the avg/min/max of
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImprovementStats {
    /// Mean daily improvement in percent.
    pub avg: f64,
    /// Worst daily improvement in percent.
    pub min: f64,
    /// Best daily improvement in percent.
    pub max: f64,
}

/// Per-day percentage improvements of `ours` over `baseline` under
/// `metric`, plus the summary stats.
pub fn improvement_stats(
    ours: &[DayMetrics],
    baseline: &[DayMetrics],
    metric: impl Fn(&DayMetrics) -> f64,
) -> (Vec<f64>, ImprovementStats) {
    assert_eq!(ours.len(), baseline.len(), "arms must cover the same days");
    let daily: Vec<f64> = ours
        .iter()
        .zip(baseline)
        .map(|(a, b)| {
            let base = metric(b);
            if base == 0.0 {
                0.0
            } else {
                (metric(a) - base) / base * 100.0
            }
        })
        .collect();
    let avg = daily.iter().sum::<f64>() / daily.len().max(1) as f64;
    let min = daily.iter().copied().fold(f64::INFINITY, f64::min);
    let max = daily.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (
        daily,
        ImprovementStats {
            avg,
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(day: usize, impressions: u64, clicks: u64) -> DayMetrics {
        DayMetrics {
            day,
            impressions,
            clicks,
            reads: clicks,
            active_users: 10,
        }
    }

    #[test]
    fn ctr_and_reads() {
        let m = day(0, 200, 30);
        assert!((m.ctr() - 0.15).abs() < 1e-12);
        assert_eq!(m.reads_per_user(), 3.0);
        let empty = day(1, 0, 0);
        assert_eq!(empty.ctr(), 0.0);
    }

    #[test]
    fn improvements_computed_per_day() {
        let ours = vec![day(0, 100, 12), day(1, 100, 11)];
        let base = vec![day(0, 100, 10), day(1, 100, 10)];
        let (daily, stats) = improvement_stats(&ours, &base, DayMetrics::ctr);
        assert!((daily[0] - 20.0).abs() < 1e-9);
        assert!((daily[1] - 10.0).abs() < 1e-9);
        assert!((stats.avg - 15.0).abs() < 1e-9);
        assert!((stats.min - 10.0).abs() < 1e-9);
        assert!((stats.max - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_counts_as_no_improvement() {
        let ours = vec![day(0, 100, 5)];
        let base = vec![day(0, 0, 0)];
        let (daily, _) = improvement_stats(&ours, &base, DayMetrics::ctr);
        assert_eq!(daily[0], 0.0);
    }
}
