//! The ground-truth click model.
//!
//! Given a recommended item shown to a user at a list position, the
//! probability of a click combines:
//!
//! * **long-term affinity** — the user's stable interest in the item's
//!   genre;
//! * **session affinity** — a large boost when the item matches the
//!   genre of the user's *current* session, decaying as the session ages
//!   ("users' real-time demands usually fade away as time goes on");
//! * item **quality** and (optionally) **freshness**;
//! * **position bias** — lower slots get fewer looks.
//!
//! The session term is what separates the arms: a recommender that reacts
//! within seconds catches the session genre; an hourly/daily model mostly
//! serves the long-term term.

use crate::world::{SimItem, SimUser, World};
use tencentrec::types::Timestamp;

/// Click-probability parameters.
#[derive(Debug, Clone)]
pub struct ClickModel {
    /// Base click rate scale.
    pub base: f64,
    /// Weight of long-term genre affinity.
    pub long_weight: f64,
    /// Weight of the session-genre match.
    pub session_weight: f64,
    /// Session boost half-life in stream ms.
    pub session_half_life_ms: u64,
    /// Per-position multiplicative decay (slot i gets `decay^i`).
    pub position_decay: f64,
    /// Freshness half-life; `None` disables the freshness term.
    pub freshness_half_life_ms: Option<u64>,
}

impl Default for ClickModel {
    fn default() -> Self {
        ClickModel {
            base: 0.05,
            long_weight: 0.3,
            session_weight: 1.0,
            session_half_life_ms: 30 * 60 * 1000,
            position_decay: 0.92,
            freshness_half_life_ms: None,
        }
    }
}

impl ClickModel {
    /// Probability that `user` clicks `item` at `now` shown in `position`.
    pub fn p_click(
        &self,
        world: &World,
        user: &SimUser,
        item: &SimItem,
        now: Timestamp,
        position: usize,
    ) -> f64 {
        // Long-term affinity relative to a uniform interest (1.0 = avg).
        let genres = world.config.genres as f64;
        let long = user.long_term[item.genre] * genres;
        // Session match, decayed by session age.
        let session = match user.session_genre {
            Some((genre, since)) if genre == item.genre => {
                let age = now.saturating_sub(since) as f64;
                0.5f64.powf(age / self.session_half_life_ms as f64)
            }
            _ => 0.0,
        };
        let freshness = match self.freshness_half_life_ms {
            None => 1.0,
            Some(hl) => {
                let age = now.saturating_sub(item.born) as f64;
                0.5f64.powf(age / hl as f64).max(0.1)
            }
        };
        let pos = self.position_decay.powi(position as i32);
        (self.base
            * item.quality
            * freshness
            * pos
            * (self.long_weight * long + self.session_weight * session))
            .clamp(0.0, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn setup() -> (World, ClickModel) {
        (World::new(WorldConfig::default()), ClickModel::default())
    }

    #[test]
    fn session_match_beats_no_session() {
        // Same user, same item: with the session genre active the click
        // probability must be substantially higher than without.
        let (mut world, model) = setup();
        world.gen_session(0, 1_000);
        let (genre, _) = world.users[0].session_genre.unwrap();
        let item = world
            .items
            .iter()
            .find(|i| i.genre == genre)
            .unwrap()
            .clone();
        let user_in_session = world.users[0].clone();
        let mut user_idle = user_in_session.clone();
        user_idle.session_genre = None;
        let p_match = model.p_click(&world, &user_in_session, &item, 2_000, 0);
        let p_idle = model.p_click(&world, &user_idle, &item, 2_000, 0);
        assert!(
            p_match > 1.3 * p_idle,
            "session boost missing: {p_match} vs {p_idle}"
        );
    }

    #[test]
    fn session_boost_fades() {
        let (mut world, model) = setup();
        world.gen_session(0, 0);
        let (genre, _) = world.users[0].session_genre.unwrap();
        let item = world
            .items
            .iter()
            .find(|i| i.genre == genre)
            .unwrap()
            .clone();
        let user = world.users[0].clone();
        let fresh = model.p_click(&world, &user, &item, 1_000, 0);
        let stale = model.p_click(&world, &user, &item, 6 * 60 * 60 * 1000, 0);
        assert!(fresh > stale, "boost must decay: {fresh} vs {stale}");
    }

    #[test]
    fn position_bias_monotone() {
        let (mut world, model) = setup();
        world.gen_session(0, 0);
        let user = world.users[0].clone();
        let item = world.items[0].clone();
        let p0 = model.p_click(&world, &user, &item, 100, 0);
        let p5 = model.p_click(&world, &user, &item, 100, 5);
        assert!(p0 >= p5);
    }

    #[test]
    fn probabilities_valid() {
        let (mut world, model) = setup();
        for u in 0..10 {
            world.gen_session(u, 0);
        }
        for u in 0..10 {
            let user = world.users[u].clone();
            for item in world.items.iter().take(50) {
                let p = model.p_click(&world, &user, item, 500, 1);
                assert!((0.0..=0.95).contains(&p), "p = {p}");
            }
        }
    }

    #[test]
    fn freshness_prefers_new_items() {
        let (mut world, _) = setup();
        let model = ClickModel {
            freshness_half_life_ms: Some(3_600_000),
            ..Default::default()
        };
        world.gen_session(0, 0);
        let (genre, _) = world.users[0].session_genre.unwrap();
        let mut old = world
            .items
            .iter()
            .find(|i| i.genre == genre)
            .unwrap()
            .clone();
        let mut new = old.clone();
        old.born = 0;
        new.born = 86_000_000;
        let user = world.users[0].clone();
        let now = 86_400_000;
        assert!(
            model.p_click(&world, &user, &new, now, 0) > model.p_click(&world, &user, &old, now, 0)
        );
    }
}
