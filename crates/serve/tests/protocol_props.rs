//! Property tests for the tserve wire protocol.
//!
//! The claims under test: encode→decode is the identity for every
//! well-formed message (bit-exact for scores), pipelined frames decode
//! in order, and the decoder treats arbitrary truncation or corruption
//! as "wait" or a [`ProtocolError`] — never a panic.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;
use proptest::strategy::Union;
use tencentrec::action::{ActionType, UserAction};
use tserve::protocol::{
    decode_request, decode_response, encode_request, encode_response, StatsReport,
};
use tserve::{Request, Response};
use tstorm::metrics::LatencyHistogram;

fn arb_action() -> impl Strategy<Value = UserAction> {
    (0u64..1 << 48, 0u64..1 << 48, 0u8..8, 0u64..1 << 60).prop_map(|(user, item, code, ts)| {
        let kind = ActionType::from_code(code).expect("codes 0..8 are valid");
        UserAction::new(user, item, kind, ts)
    })
}

fn arb_request() -> Union<Request> {
    prop_oneof![
        (0u64..1 << 48, 0u32..10_000, 0u32..100_000).prop_map(|(user, n, deadline_ms)| {
            Request::Recommend {
                user,
                n,
                deadline_ms,
            }
        }),
        arb_action().prop_map(|action| Request::ReportAction { action }),
        Just(Request::Health),
        Just(Request::Stats),
    ]
}

fn arb_stats() -> impl Strategy<Value = StatsReport> {
    (
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..1 << 40,
        prop::collection::vec(1u64..10_000_000_000, 0..60),
    )
        .prop_map(|(served, shed, expired, actions, samples)| {
            let h = LatencyHistogram::new();
            for nanos in samples {
                h.record_nanos(nanos);
            }
            StatsReport {
                served,
                shed,
                expired,
                actions,
                latency: h.snapshot(),
            }
        })
}

/// Responses whose scores are finite, so `PartialEq` equality is the
/// right round-trip check (bit-exactness of arbitrary f64 patterns is
/// covered separately by `score_bits_survive_roundtrip`).
fn arb_response() -> Union<Response> {
    prop_oneof![
        prop::collection::vec((0u64..1 << 48, -1.0e12f64..1.0e12), 0..40)
            .prop_map(|items| Response::Recommendations { items }),
        Just(Response::Ack),
        Just(Response::Overloaded),
        (0u32..1024, 0u32..1 << 20)
            .prop_map(|(shards, queued)| Response::Health { shards, queued }),
        arb_stats().prop_map(Response::Stats),
        prop::collection::vec(32u8..127, 0..80).prop_map(|bytes| Response::Error {
            message: String::from_utf8(bytes).expect("printable ascii"),
        }),
    ]
}

proptest! {
    #[test]
    fn request_encode_decode_identity(id in 0u64..u64::MAX, req in arb_request()) {
        let mut buf = BytesMut::new();
        encode_request(id, &req, &mut buf);
        let frame = decode_request(&mut buf)
            .expect("well-formed frame decodes")
            .expect("complete frame is not a partial");
        prop_assert_eq!(frame.id, id);
        prop_assert_eq!(frame.msg, req);
        prop_assert!(buf.is_empty(), "decode must consume the whole frame");
    }

    #[test]
    fn response_encode_decode_identity(id in 0u64..u64::MAX, resp in arb_response()) {
        let mut buf = BytesMut::new();
        encode_response(id, &resp, &mut buf);
        let frame = decode_response(&mut buf)
            .expect("well-formed frame decodes")
            .expect("complete frame is not a partial");
        prop_assert_eq!(frame.id, id);
        prop_assert_eq!(frame.msg, resp);
        prop_assert!(buf.is_empty(), "decode must consume the whole frame");
    }

    /// Scores travel as raw bits: every `u64` pattern — NaNs, infinities,
    /// negative zero, subnormals — survives encode→decode→encode exactly.
    #[test]
    fn score_bits_survive_roundtrip(bits in prop::collection::vec(0u64..u64::MAX, 1..20)) {
        let resp = Response::Recommendations {
            items: bits.iter().map(|&b| (b, f64::from_bits(b))).collect(),
        };
        let mut buf = BytesMut::new();
        encode_response(1, &resp, &mut buf);
        let first_wire = buf[..].to_vec();
        let frame = decode_response(&mut buf).expect("decodes").expect("complete");
        let Response::Recommendations { items } = frame.msg else {
            panic!("wrong variant");
        };
        for (&b, &(item, score)) in bits.iter().zip(items.iter()) {
            prop_assert_eq!(item, b);
            prop_assert_eq!(score.to_bits(), b, "score bits must be exact");
        }
        let mut again = BytesMut::new();
        encode_response(1, &Response::Recommendations { items }, &mut again);
        prop_assert_eq!(&again[..], &first_wire[..]);
    }

    /// Pipelining: many frames written back-to-back into one buffer
    /// decode in order with their ids intact.
    #[test]
    fn pipelined_frames_decode_in_order(reqs in prop::collection::vec(arb_request(), 1..16)) {
        let mut buf = BytesMut::new();
        for (i, req) in reqs.iter().enumerate() {
            encode_request(i as u64, req, &mut buf);
        }
        for (i, req) in reqs.iter().enumerate() {
            let frame = decode_request(&mut buf).expect("decodes").expect("complete");
            prop_assert_eq!(frame.id, i as u64);
            prop_assert_eq!(&frame.msg, req);
        }
        prop_assert_eq!(decode_request(&mut buf).expect("empty buffer is fine"), None);
    }

    /// Every strict prefix of a valid frame is "wait for more bytes" —
    /// never an error, never a panic — and the untouched prefix decodes
    /// once the rest arrives.
    #[test]
    fn truncation_waits_without_panicking(resp in arb_response()) {
        let mut full = BytesMut::new();
        encode_response(9, &resp, &mut full);
        let wire = full[..].to_vec();
        for cut in 0..wire.len() {
            let mut partial = BytesMut::new();
            partial.put_slice(&wire[..cut]);
            let decoded = decode_response(&mut partial).expect("prefix is not corrupt");
            prop_assert_eq!(decoded, None, "prefix of length {} must wait", cut);
            // Delivering the remainder completes the frame.
            partial.put_slice(&wire[cut..]);
            let frame = decode_response(&mut partial).expect("decodes").expect("complete");
            prop_assert_eq!(frame.msg, resp.clone());
        }
    }

    /// Arbitrary byte-flips anywhere in a frame stream: the decoder may
    /// return frames (flips can cancel out or land in don't-care bits)
    /// or an error, but it never panics and always makes progress.
    #[test]
    fn corruption_never_panics(
        reqs in prop::collection::vec(arb_request(), 1..8),
        flips in prop::collection::vec((0usize..4096, 1u8..=255), 1..10),
    ) {
        let mut clean = BytesMut::new();
        for (i, req) in reqs.iter().enumerate() {
            encode_request(i as u64, req, &mut clean);
        }
        let mut wire = clean[..].to_vec();
        let len = wire.len();
        for &(pos, mask) in &flips {
            wire[pos % len] ^= mask;
        }
        let mut buf = BytesMut::new();
        buf.put_slice(&wire);
        // Drain: each Ok(Some) consumes a frame, Ok(None)/Err ends the
        // stream (a real connection hangs up on the first error).
        let mut decoded = 0usize;
        while let Ok(Some(_)) = decode_request(&mut buf) {
            decoded += 1;
            prop_assert!(decoded <= reqs.len() + flips.len() + 1, "runaway decode loop");
        }
    }

    /// Raw garbage fed straight to the decoder: same guarantee.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..600)) {
        let mut buf = BytesMut::new();
        buf.put_slice(&bytes);
        for _ in 0..bytes.len() + 1 {
            match decode_request(&mut buf) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
        let mut buf = BytesMut::new();
        buf.put_slice(&bytes);
        for _ in 0..bytes.len() + 1 {
            match decode_response(&mut buf) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }
}
